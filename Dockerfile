# Container image for the cohort serving layer.
#
# Two entrypoints ship in one image:
#
#   docker run -p 8765:8765 <image>                    # single serve
#   docker run -p 8780:8780 <image> fleet --shards 3   # supervised fleet
#
# Anything after the image name is passed to `cohort` verbatim, so every
# `cohort serve` / `cohort fleet` flag works unchanged.  State lives
# under /data (result cache, intake journals, oplogs) — mount a volume
# there to keep the cache warm and the journals durable across
# container restarts; see deployment/ for a compose file that wires
# this together with a Prometheus scraper.

FROM python:3.12-slim

# The simulator and runner need numpy only; keep the layer small.
RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

# /data holds everything mutable: result cache + fleet state.
RUN mkdir -p /data/cache /data/fleet
WORKDIR /data

# 8765: cohort serve (single shard).  8780: cohort fleet (router).
EXPOSE 8765 8780

ENTRYPOINT ["cohort"]
CMD ["serve", "--host", "0.0.0.0", "--port", "8765", \
     "--cache-dir", "/data/cache", "--oplog", "/data/serve.oplog.jsonl"]
