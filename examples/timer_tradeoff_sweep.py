#!/usr/bin/env python
"""The fundamental timer trade-off, measured and analysed.

Section III of the paper explains why picking θ is non-trivial:

* larger θ → more guaranteed hits for the owner (good for the owner's
  WCML and for throughput);
* larger θ → longer worst-case waits for every other core (Equation 1).

This example sweeps θ for core 0 of a barnes-like workload and prints
the two curves side by side — the exact tension the optimization
engine of Section V resolves — together with a simulation spot-check.

Run:  python examples/timer_tradeoff_sweep.py
"""

from repro import cohort_config, run_simulation
from repro.analysis import build_profiles, wcl_miss
from repro.experiments import format_table
from repro.workloads import splash_traces


def main() -> None:
    traces = splash_traces("barnes", 4, scale=0.6, seed=2)
    config = cohort_config([1, 60, 60, 60])
    profiles = build_profiles(traces, config.l1)
    sw = config.latencies.slot_width

    sweep = [1, 5, 15, 40, 100, 250, 600, 1500]
    rows = []
    for theta in sweep:
        thetas = [theta, 60, 60, 60]
        # Core 0's own per-request bound is unaffected by its own timer...
        own_wcl = wcl_miss(thetas, 0, sw)
        # ...but its guaranteed hits grow with it,
        counts = profiles[0].analyze(theta, own_wcl)
        # ...while every co-runner's bound degrades.
        corunner_wcl = wcl_miss(thetas, 1, sw)
        wcml = counts.m_hit * config.latencies.hit + counts.m_miss * own_wcl
        rows.append(
            [theta, counts.m_hit, f"{counts.hit_rate:.0%}", wcml, corunner_wcl]
        )
    print(
        format_table(
            [
                "θ_0",
                "guaranteed hits (c0)",
                "hit rate",
                "c0 WCML bound",
                "co-runner WCL bound",
            ],
            rows,
            title="The timer trade-off (barnes, co-runners at θ=60)",
        )
    )
    print(
        "\nLarger θ_0 buys core 0 guaranteed hits but inflates everyone "
        "else's Equation-1 bound —\nthe contradiction the GA optimization "
        "engine balances under constraint C1."
    )

    # Simulation spot-check at two extremes.
    for theta in (5, 600):
        stats = run_simulation(cohort_config([theta, 60, 60, 60]), traces)
        print(
            f"\nsimulated θ_0={theta}: c0 hits={stats.core(0).hits}, "
            f"c1 max latency={stats.core(1).max_request_latency} "
            f"(bound {wcl_miss([theta, 60, 60, 60], 1, sw)})"
        )


if __name__ == "__main__":
    main()
