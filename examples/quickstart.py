#!/usr/bin/env python
"""Quickstart: simulate CoHoRT and see what the timers buy.

Builds a small shared-data workload for a quad-core, runs it under
plain snooping MSI and under CoHoRT's heterogeneous time-based
coherence, and prints the measured hits/misses, the measured total
memory latency, and the analytical worst-case bounds of Equation 1/2.

Run:  python examples/quickstart.py
"""

from repro import MSI_THETA, cohort_config, msi_fcfs_config, run_simulation
from repro.analysis import build_profiles, cohort_bounds, wcl_miss
from repro.experiments import format_table
from repro.workloads import uniform_shared_mix


def main() -> None:
    # Four cores, 400 accesses each, a quarter of them to shared lines.
    traces = uniform_shared_mix(
        num_cores=4,
        accesses_per_core=400,
        shared_lines=8,
        private_lines=48,
        shared_fraction=0.25,
        write_ratio=0.35,
        seed=7,
    )

    # --- plain snooping MSI with a COTS FCFS arbiter --------------------
    msi_stats = run_simulation(msi_fcfs_config(4), traces)

    # --- CoHoRT: cores 0-2 timed, core 3 degraded to MSI -----------------
    thetas = [150, 80, 80, MSI_THETA]
    config = cohort_config(thetas)
    stats = run_simulation(config, traces)

    # --- analytical bounds (Equations 1 and 2/3) -------------------------
    profiles = build_profiles(traces, config.l1)
    bounds = cohort_bounds(thetas, profiles, config.latencies)

    rows = []
    for i in range(4):
        proto = "MSI" if thetas[i] == MSI_THETA else f"timed θ={thetas[i]}"
        rows.append(
            [
                f"c{i} ({proto})",
                msi_stats.core(i).hits,
                stats.core(i).hits,
                stats.core(i).total_memory_latency,
                bounds[i].wcml,
                stats.core(i).max_request_latency,
                wcl_miss(thetas, i, config.latencies.slot_width),
            ]
        )
    print(
        format_table(
            [
                "core",
                "hits (MSI)",
                "hits (CoHoRT)",
                "WCML measured",
                "WCML bound",
                "max latency",
                "Eq.1 WCL bound",
            ],
            rows,
            title="CoHoRT quickstart: timers protect hits, bounds hold",
        )
    )
    print(
        f"\nexecution time: MSI-FCFS {msi_stats.execution_time:,} cycles, "
        f"CoHoRT {stats.execution_time:,} cycles"
    )
    speed = stats.execution_time / msi_stats.execution_time
    print(f"CoHoRT slowdown vs COTS MSI: {speed:.3f}x (paper: ~1.03x)")


if __name__ == "__main__":
    main()
