#!/usr/bin/env python
"""Bring-your-own-traces workflow.

CoHoRT's inputs are per-core memory traces — if you have real traces
(e.g. from a binary instrumentation run), you can feed them straight
through the whole pipeline: persistence, the static guaranteed-hit
analysis, timer optimization, and the cycle-accurate simulation.

This example writes a hand-crafted CSV trace, loads it back, and runs
the full flow — the same steps the ``cohort trace``/``cohort simulate
--trace-files`` CLI commands automate.

Run:  python examples/trace_file_workflow.py
"""

import os
import tempfile

from repro import cohort_config, run_simulation
from repro.analysis import build_profiles, cohort_bounds
from repro.experiments import format_table
from repro.opt import GAConfig, OptimizationEngine
from repro.sim.trace import Trace

# A tiny hand-written workload: gap,op,byte-address per line.  Core 0
# ping-pongs a shared counter with core 1 while both stream private data.
CORE0_CSV = "\n".join(
    ["0,W,4096"]                                        # shared counter
    + [f"2,R,{8192 + 8 * i}" for i in range(32)]        # private stream
    + ["1,W,4096", "1,R,4096"]                          # counter again
)
CORE1_CSV = "\n".join(
    ["5,R,4096"]
    + [f"2,W,{65536 + 8 * i}" for i in range(32)]
    + ["1,W,4096"]
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. Persist and reload (the CSV and npz formats round-trip).
        paths = []
        for name, text in (("c0.csv", CORE0_CSV), ("c1.csv", CORE1_CSV)):
            path = os.path.join(tmp, name)
            with open(path, "w") as fh:
                fh.write(text)
            paths.append(path)
        traces = []
        for path in paths:
            with open(path) as fh:
                traces.append(Trace.from_csv(fh.read()))
        npz = os.path.join(tmp, "c0.npz")
        traces[0].save(npz)
        assert Trace.load(npz) == traces[0]

    print("loaded traces:", [repr(t) for t in traces])

    # 2. Optimize the timers for these exact traces.
    config = cohort_config([1, 1])
    profiles = build_profiles(traces, config.l1)
    engine = OptimizationEngine(
        profiles, config.latencies,
        GAConfig(population_size=12, generations=10, seed=0),
    )
    result = engine.optimize(timed=[True, True])
    print("optimized Θ:", result.thetas)

    # 3. Simulate and compare with the analytical bounds.
    stats = run_simulation(cohort_config(result.thetas), traces)
    bounds = cohort_bounds(result.thetas, profiles, config.latencies)
    rows = [
        [f"c{c.core_id}", c.hits, c.misses, c.total_memory_latency, b.wcml]
        for c, b in zip(stats.cores, bounds)
    ]
    print(format_table(
        ["core", "hits", "misses", "WCML measured", "WCML bound"], rows
    ))


if __name__ == "__main__":
    main()
