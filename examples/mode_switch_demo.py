#!/usr/bin/env python
"""Run-time mode switching without suspending low-criticality tasks.

Reproduces the Section-VI scenario interactively: a quad-core MCS with
criticality levels 4/3/2/1 starts in mode 1 (everyone timer-protected).
The requirement of the most-critical core then tightens twice; each
time, the :class:`~repro.mcs.ModeSwitchController` escalates the
operating mode by reprogramming the Mode-Switch LUTs — lower-criticality
cores degrade to MSI but *keep running*.

Run:  python examples/mode_switch_demo.py
"""

from repro import cohort_config
from repro.analysis import build_profiles
from repro.experiments import format_table
from repro.mcs import ModeSwitchController, Task, TaskSet
from repro.opt import GAConfig, OptimizationEngine
from repro.sim.system import System
from repro.workloads import splash_traces


def main() -> None:
    criticalities = [4, 3, 2, 1]
    traces = splash_traces("fft", 4, scale=0.6, seed=0)
    config = cohort_config([1] * 4, criticalities=criticalities)
    profiles = build_profiles(traces, config.l1)

    # Offline: fill the Mode-Switch LUTs, one optimization run per mode.
    engine = OptimizationEngine(
        profiles, config.latencies,
        GAConfig(population_size=20, generations=15, seed=3),
    )
    table = engine.optimize_modes(
        criticalities, {m: [None] * 4 for m in (1, 2, 3, 4)}
    )
    print("Mode-Switch LUT contents (Table II equivalent):")
    print(table)

    tasks = TaskSet(
        tuple(
            Task(f"tau_{i}", l, traces[i])
            for i, l in enumerate(criticalities)
        )
    )
    controller = ModeSwitchController(tasks, table, profiles, config.latencies)

    # Online: build the system in mode 1, program the LUTs.
    system = System(config.with_thetas(table.thetas[1]), traces)
    controller.program_luts(system)

    bound1 = controller.bounds_at(1)[0].wcml
    requirement = bound1 * 1.05
    rows = []
    for stage, shrink in enumerate([1.0, 1.5, 1.8], start=1):
        requirement /= shrink
        decision = controller.react(system, [requirement, None, None, None])
        rows.append(
            [
                f"stage {stage}",
                requirement,
                decision.mode,
                decision.bounds[0].wcml,
                ", ".join(f"c{i}" for i in decision.degraded) or "none",
            ]
        )
    print()
    print(
        format_table(
            ["stage", "Γ_0 (tightening)", "mode", "c0 WCML bound",
             "degraded to MSI"],
            rows,
            title="Controller reaction as c0's requirement tightens",
        )
    )

    stats = system.run()
    print(f"\nfinal mode: {controller.current_mode}")
    print(f"mode switches performed at run time: {stats.mode_switches}")
    print("all cores ran to completion (nobody was suspended):")
    for core in stats.cores:
        print(
            f"  c{core.core_id}: {core.accesses} accesses, "
            f"{core.hits} hits, finished at cycle {core.finish_cycle:,}"
        )


if __name__ == "__main__":
    main()
