#!/usr/bin/env python
"""A self-driving-car MCS: requirement-aware timer optimization.

The paper's motivating example: an automotive MPSoC runs tasks of very
different criticality — airbag deployment beats the infotainment
system.  This example pins four tasks to four cores:

=====  =====================  ===========  ==========================
core   task                   criticality  WCML requirement
=====  =====================  ===========  ==========================
c0     airbag / brake control ASIL-D (4)   tight (hard real-time)
c1     lane keeping (ADAS)    ASIL-B (3)   moderate
c2     sensor logging         QM+ (2)      loose
c3     infotainment           QM  (1)      none (throughput only)
=====  =====================  ===========  ==========================

The optimization engine (Section V) finds the timer vector Θ that
minimises average worst-case memory latency *subject to* each task's
requirement (constraint C1), then the simulation verifies the measured
latencies stay under the analytical bounds.

Run:  python examples/adas_mixed_criticality.py
"""

from repro import cohort_config, run_simulation
from repro.analysis import build_profiles, cohort_bounds
from repro.experiments import format_table
from repro.mcs import Task, TaskSet
from repro.opt import GAConfig, OptimizationEngine
from repro.workloads import splash_traces


def main() -> None:
    # Stand-ins with the right memory character: control loops are
    # stencil-ish (ocean), ADAS vision is fft-like, logging is a radix
    # scatter, infotainment is a pointer-chasing raytrace.
    traces = [
        splash_traces("ocean", 4, scale=0.5, seed=1)[0],
        splash_traces("fft", 4, scale=0.5, seed=2)[1],
        splash_traces("radix", 4, scale=0.5, seed=3)[2],
        splash_traces("raytrace", 4, scale=0.5, seed=4)[3],
    ]
    config = cohort_config([1, 1, 1, 1])
    profiles = build_profiles(traces, config.l1)
    latencies = config.latencies
    engine = OptimizationEngine(
        profiles, latencies, GAConfig(population_size=24, generations=20, seed=5)
    )

    # First pass without requirements to learn what is achievable.
    baseline = engine.optimize(timed=[True, True, True, False])
    achievable = [b.wcml for b in baseline.bounds]

    # Requirements: the airbag task gets 10% headroom over the best the
    # engine found; lane keeping 40%; logging 3x; infotainment none.
    tasks = TaskSet(
        (
            Task("airbag", 4, traces[0], {1: achievable[0] * 1.10}),
            Task("lane_keeping", 3, traces[1], {1: achievable[1] * 1.40}),
            Task("sensor_log", 2, traces[2], {1: achievable[2] * 3.00}),
            Task("infotainment", 1, traces[3]),
        )
    )
    result = engine.optimize(
        timed=[True, True, True, False],
        requirements=tasks.requirements_at(1),
    )
    print(f"optimized timers: {result.thetas}  (feasible={result.feasible})")

    # Simulate with the optimized configuration and compare to bounds.
    cfg = cohort_config(result.thetas, criticalities=tasks.criticalities)
    stats = run_simulation(cfg, traces)
    bounds = cohort_bounds(result.thetas, profiles, latencies)

    rows = []
    for task, core, bound in zip(tasks, stats.cores, bounds):
        gamma = task.requirement(1)
        rows.append(
            [
                task.name,
                task.criticality,
                result.thetas[core.core_id],
                core.total_memory_latency,
                bound.wcml,
                gamma,
                "ok" if gamma is None or bound.wcml <= gamma else "VIOLATED",
            ]
        )
    print(
        format_table(
            ["task", "crit", "θ", "WCML measured", "WCML bound",
             "requirement Γ", "C1"],
            rows,
            title="Requirement-aware configuration (constraint C1)",
        )
    )


if __name__ == "__main__":
    main()
