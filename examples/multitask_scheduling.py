#!/usr/bin/env python
"""Time-shared cores: criticality follows the running task.

The paper's system model (Section II) does not pin one task per core —
"at any time instance, the core inherits the criticality of the task
running on the core".  This example schedules *two* tasks per core
(one critical control task, one best-effort task), derives per-task
WCML bounds with :func:`repro.mcs.per_task_bounds`, and verifies them
against a simulation of the full schedule.

Run:  python examples/multitask_scheduling.py
"""

from repro import cohort_config, run_simulation
from repro.experiments import format_table
from repro.mcs import CoreSchedule, Task, per_task_bounds, schedule_traces
from repro.workloads import splash_traces


def main() -> None:
    # Each core alternates a critical slice (lu-like control computation)
    # and a best-effort slice (raytrace-like rendering).
    lu = splash_traces("lu", 4, scale=0.4, seed=1)
    ray = splash_traces("raytrace", 4, scale=0.4, seed=2)
    schedules = []
    for core in range(4):
        schedules.append(
            CoreSchedule(
                (
                    Task(f"ctrl_{core}", criticality=3, trace=lu[core],
                         requirements={1: 1e9}),
                    Task(f"render_{core}", criticality=1, trace=ray[core]),
                )
            )
        )

    thetas = [60, 60, 60, 60]
    config = cohort_config(thetas)

    # Per-task analytical bounds (cold-start conservative).
    bounds = per_task_bounds(schedules, thetas, config.l1, config.latencies)

    # Simulate the full schedules.
    stats = run_simulation(config, schedule_traces(schedules))

    rows = []
    for tb in bounds:
        rows.append(
            [
                f"c{tb.core_id}",
                tb.task.name,
                tb.task.criticality,
                tb.task.num_accesses,
                tb.bound.m_hit,
                tb.bound.wcml,
            ]
        )
    print(
        format_table(
            ["core", "task", "crit", "Λ", "guaranteed hits", "WCML bound"],
            rows,
            title="Per-task bounds on time-shared cores",
        )
    )

    print("\ncriticality inheritance along core 0's timeline:")
    schedule = schedules[0]
    for index in (0, schedule.boundaries[1] - 1, schedule.boundaries[1]):
        task = schedule.active_task(index)
        print(
            f"  access {index:>4}: running {task.name} "
            f"(criticality {task.criticality})"
        )

    print("\nwhole-schedule measured vs summed per-task bounds:")
    for core in range(4):
        measured = stats.core(core).total_memory_latency
        summed = sum(tb.bound.wcml for tb in bounds if tb.core_id == core)
        print(f"  c{core}: measured {measured:,} ≤ bound {summed:,.0f}")
        assert measured <= summed


if __name__ == "__main__":
    main()
