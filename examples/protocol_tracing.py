#!/usr/bin/env python
"""Watching the protocol work: tracing a heterogeneous handover chain.

Recreates the paper's Figure-4 scenario — four cores (three timed, one
MSI) all store the same line at once — with a
:class:`~repro.sim.debug.ProtocolTracer` attached, and prints the full
event timeline: the RROF grants, each timer expiry, and the MSI core's
zero-delay handover.  Then it answers the debugging question the tracer
exists for: *why did the slowest request take that long?*

Run:  python examples/protocol_tracing.py
"""

from repro import MSI_THETA, cohort_config
from repro.analysis import wcl_miss
from repro.sim.debug import ProtocolTracer
from repro.sim.system import System
from repro.sim.trace import Trace

LINE_A = 7 * 64  # the contested cache line


def store_line_a() -> Trace:
    return Trace.from_arrays([0], [1], [LINE_A])


def main() -> None:
    thetas = [80, 80, MSI_THETA, 80]  # c2 runs plain MSI (Figure 4)
    config = cohort_config(thetas)
    traces = [store_line_a() for _ in range(4)]

    system = System(config, traces, record_latencies=True)
    tracer = ProtocolTracer.attach(system)
    stats = system.run()

    print("Figure-4 handover chain, full protocol timeline:")
    print(tracer.render(line=LINE_A // 64))

    print("\nper-core request latencies vs the Equation-1 bound:")
    sw = config.latencies.slot_width
    for core in stats.cores:
        bound = wcl_miss(thetas, core.core_id, sw)
        print(
            f"  c{core.core_id} (θ={thetas[core.core_id]:>3}): "
            f"latency {core.request_latencies[0]:>4} ≤ bound {bound}"
        )

    worst = tracer.worst_fill()
    print(
        f"\nslowest request: core {worst.core}, "
        f"latency {worst.payload['latency']} — explanation:"
    )
    print(tracer.explain_latency(worst.core,
                                 min_latency=worst.payload["latency"]))
    print(
        "\nNote the MSI core's handover: the fill that follows c2's is "
        "granted without a timer_expiry in between."
    )


if __name__ == "__main__":
    main()
