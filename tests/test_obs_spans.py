"""Tests for request-lifecycle spans and WCML attribution (repro.obs.spans)."""

import pytest

from repro.params import MSI_THETA, cohort_config, msi_fcfs_config
from repro.obs import PHASES, SpanCollector, Telemetry
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

from conftest import t


def run_with_spans(config, traces, sample_every=0):
    system = System(config, traces)
    telemetry = Telemetry.attach(system, sample_every=sample_every)
    stats = system.run()
    return system, stats, telemetry


WORKLOADS = [
    ("ocean", cohort_config([60, 60, 60, 60])),
    ("ocean", msi_fcfs_config(4)),
    ("fft", cohort_config([100, 20, 20, MSI_THETA])),
    ("lu", cohort_config([60] * 4, perfect_llc=False)),
]


class TestAttributionInvariant:
    @pytest.mark.parametrize("workload,config", WORKLOADS,
                             ids=lambda p: getattr(p, "protocol", p))
    def test_phases_sum_to_recorded_latency(self, workload, config):
        """Per-phase latencies partition each span's measured latency
        exactly — the latency CoreStats.record_miss accounted."""
        traces = splash_traces(workload, config.num_cores, scale=0.25)
        _, stats, telemetry = run_with_spans(config, traces)
        spans = telemetry.spans.completed
        assert spans, "workload produced no misses"
        for span in spans:
            assert sum(span.phases.values()) == span.latency
            assert set(span.phases) == set(PHASES)
            assert all(width >= 0 for width in span.phases.values())

    @pytest.mark.parametrize("workload,config", WORKLOADS,
                             ids=lambda p: getattr(p, "protocol", p))
    def test_worst_span_equals_max_request_latency(self, workload, config):
        traces = splash_traces(workload, config.num_cores, scale=0.25)
        _, stats, telemetry = run_with_spans(config, traces)
        for core in telemetry.spans.cores():
            worst = telemetry.spans.worst_span(core)
            assert worst.latency == stats.cores[core].max_request_latency

    def test_span_count_matches_misses(self):
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.25)
        _, stats, telemetry = run_with_spans(config, traces)
        for core in range(4):
            assert telemetry.spans.span_count(core) == stats.cores[core].misses

    def test_phase_segments_tile_the_span(self):
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.25)
        _, _, telemetry = run_with_spans(config, traces)
        for span in telemetry.spans.completed:
            at = span.issue_cycle
            for _phase, start, end in span.phase_segments():
                assert start == at and end > start
                at = end
            assert at == span.complete_cycle

    def test_protection_phase_attributed_under_timers(self):
        """A store hitting a remotely timer-protected line books
        protection (Σθ) cycles, never zero."""
        traces = [
            t([(0, "W", 1), (5, "R", 1)]),
            t([(30, "W", 1)]),
        ]
        _, _, telemetry = run_with_spans(cohort_config([40, 40]), traces)
        protected = [
            s for s in telemetry.spans.completed
            if s.core == 1 and s.phases["protection"] > 0
        ]
        assert protected, "c1's store never waited on c0's timer"


class TestCycleNeutrality:
    def test_telemetry_does_not_change_cycle_counts(self):
        """Attaching the full telemetry set (spans + sampler) leaves
        final_cycle and every per-core counter byte-identical."""
        config = cohort_config([60] * 4)
        for sample_every in (0, 1, 7, 250):
            traces = splash_traces("ocean", 4, scale=0.25)
            base = run_simulation(config, traces)
            traces = splash_traces("ocean", 4, scale=0.25)
            _, stats, _ = run_with_spans(
                config, traces, sample_every=sample_every
            )
            assert stats.final_cycle == base.final_cycle
            for c_base, c_tel in zip(base.cores, stats.cores):
                assert c_base.hits == c_tel.hits
                assert c_base.misses == c_tel.misses
                assert c_base.total_memory_latency == c_tel.total_memory_latency
                assert c_base.max_request_latency == c_tel.max_request_latency
                assert c_base.finish_cycle == c_tel.finish_cycle

    def test_span_collector_leaves_hot_path_cold(self):
        """SpanCollector never subscribes to hit events."""
        system = System(cohort_config([60, 60]), [t([(0, "R", 1)]), t([])])
        assert not system.events.hot
        SpanCollector.attach(system)
        assert not system.events.hot


class TestBlameReport:
    def test_wcml_blame_entries(self):
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.25)
        _, stats, telemetry = run_with_spans(config, traces)
        blame = telemetry.spans.wcml_blame()
        assert [e["core"] for e in blame] == [0, 1, 2, 3]
        for entry in blame:
            core = entry["core"]
            assert entry["max_request_latency"] == \
                stats.cores[core].max_request_latency
            phases = entry["worst_span"]["phases"]
            assert sum(phases.values()) == entry["max_request_latency"]
            totals = entry["phase_totals"]
            spans = [s for s in telemetry.spans.completed if s.core == core]
            for phase in PHASES:
                assert totals[phase] == sum(s.phases[phase] for s in spans)

    def test_render_blame_mentions_every_core(self):
        config = cohort_config([60, 60])
        traces = splash_traces("ocean", 2, scale=0.2)
        _, _, telemetry = run_with_spans(config, traces)
        out = telemetry.render_blame()
        assert "WCML blame" in out
        assert "c   0" in out and "c   1" in out
        for phase in PHASES:
            assert phase in out

    def test_keep_spans_false_still_aggregates(self):
        config = cohort_config([60, 60])
        traces = splash_traces("ocean", 2, scale=0.2)
        system = System(config, traces)
        collector = SpanCollector.attach(system, keep_spans=False)
        stats = system.run()
        assert collector.completed == []
        for core in collector.cores():
            assert collector.worst_span(core).latency == \
                stats.cores[core].max_request_latency
            assert sum(collector.phase_totals(core).values()) > 0

    def test_mode_recorded_on_spans(self):
        traces = [t([(0, "W", 1), (500, "W", 2)])]
        system = System(cohort_config([50]), traces)
        collector = SpanCollector.attach(system)
        system.caches[0].lut.program(2, MSI_THETA)
        system.kernel.schedule(
            100, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        system.run()
        modes = {s.line: s.mode for s in collector.completed}
        assert modes[1] == 0 and modes[2] == 2
        assert any(kind == "mode_switch" for _, kind, _ in collector.instants)
