"""Unit tests for the shared bus occupancy model and the stats layer."""

import pytest

from repro.params import MemOp
from repro.sim.bus import SharedBus
from repro.sim.messages import BusJob, CoherenceRequest, JobKind, ReqKind, Writeback
from repro.sim.stats import CoreStats, SystemStats


def job():
    req = CoherenceRequest(
        req_id=1, core_id=0, line_addr=0, kind=ReqKind.GETS,
        op=MemOp.LOAD, issue_cycle=0,
    )
    return BusJob(JobKind.BROADCAST, 0, 1, req=req)


class TestSharedBus:
    def test_idle_initially(self):
        assert SharedBus().idle(0)

    def test_grant_occupies(self):
        bus = SharedBus()
        done = bus.grant(job(), now=10, duration=4)
        assert done == 14
        assert not bus.idle(12)
        assert bus.idle(14)
        assert bus.current_job is not None

    def test_double_grant_rejected(self):
        bus = SharedBus()
        bus.grant(job(), now=0, duration=10)
        with pytest.raises(RuntimeError):
            bus.grant(job(), now=5, duration=10)

    def test_release_clears_job(self):
        bus = SharedBus()
        bus.grant(job(), now=0, duration=3)
        bus.release(now=3)
        assert bus.current_job is None

    def test_early_release_rejected(self):
        bus = SharedBus()
        bus.grant(job(), now=0, duration=10)
        with pytest.raises(RuntimeError):
            bus.release(now=5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            SharedBus().grant(job(), now=0, duration=0)

    def test_stall_blocks_grants_until_horizon(self):
        bus = SharedBus()
        until = bus.stall(now=5, duration=10)
        assert until == 15
        assert not bus.idle(14)
        assert bus.idle(15)
        with pytest.raises(RuntimeError):
            bus.grant(job(), now=10, duration=2)

    def test_stall_mid_transfer_does_not_break_release(self):
        # Regression: a fault-injected stall landing while a job is in
        # flight used to extend the single busy-until clock past the
        # job's completion cycle, making the engine's perfectly timed
        # release raise "bus released before the job completed".
        bus = SharedBus()
        bus.grant(job(), now=10, duration=5)  # job completes at 15
        until = bus.stall(now=12, duration=10)  # stall holds bus to 22
        assert until == 22
        bus.release(now=15)  # on-schedule release must succeed
        assert bus.current_job is None
        # ... but new grants stay blocked until the stall expires.
        assert not bus.idle(21)
        assert bus.idle(22)
        done = bus.grant(job(), now=22, duration=3)
        assert done == 25

    def test_stall_shorter_than_transfer_is_absorbed(self):
        bus = SharedBus()
        bus.grant(job(), now=0, duration=10)
        assert bus.stall(now=2, duration=3) == 10  # job horizon dominates
        bus.release(now=10)
        assert bus.idle(10)

    def test_stall_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            SharedBus().stall(now=0, duration=0)


class TestMessages:
    def test_data_job_requires_request(self):
        with pytest.raises(ValueError):
            BusJob(JobKind.DATA, 0, 1)

    def test_wb_job_requires_writeback(self):
        with pytest.raises(ValueError):
            BusJob(JobKind.WRITEBACK, 0, 1)
        wb = Writeback(core_id=0, line_addr=1, version=2, created_cycle=0, seq=1)
        BusJob(JobKind.WRITEBACK, 0, 1, wb=wb)  # ok

    def test_request_latency_requires_completion(self):
        req = CoherenceRequest(
            req_id=1, core_id=0, line_addr=0, kind=ReqKind.GETM,
            op=MemOp.STORE, issue_cycle=10,
        )
        with pytest.raises(ValueError):
            req.latency
        req.complete_cycle = 25
        assert req.latency == 15

    def test_wants_ownership(self):
        def req(kind):
            return CoherenceRequest(1, 0, 0, kind, MemOp.LOAD, 0)

        assert req(ReqKind.GETM).wants_ownership
        assert req(ReqKind.UPG).wants_ownership
        assert not req(ReqKind.GETS).wants_ownership


class TestCoreStats:
    def test_hit_recording(self):
        stats = CoreStats(core_id=0)
        stats.record_hit(1)
        stats.record_hit(1, runahead=True)
        assert stats.hits == 2
        assert stats.runahead_hits == 1
        assert stats.total_memory_latency == 2

    def test_miss_recording_tracks_max(self):
        stats = CoreStats(core_id=0, request_latencies=[])
        stats.record_miss(54)
        stats.record_miss(200, upgrade=True)
        stats.record_miss(100)
        assert stats.misses == 3
        assert stats.upgrades == 1
        assert stats.max_request_latency == 200
        assert stats.request_latencies == [54, 200, 100]
        assert stats.total_memory_latency == 354

    def test_hit_rate(self):
        stats = CoreStats(core_id=0)
        assert stats.hit_rate == 0.0
        stats.record_hit(1)
        stats.record_miss(10)
        assert stats.hit_rate == 0.5


class TestSystemStats:
    def test_execution_time_is_last_finish(self):
        stats = SystemStats(cores=[CoreStats(0), CoreStats(1)])
        stats.cores[0].finish_cycle = 100
        stats.cores[1].finish_cycle = 250
        assert stats.execution_time == 250

    def test_bus_utilization(self):
        stats = SystemStats()
        stats.record_grant("DATA", 50)
        stats.record_grant("BROADCAST", 4)
        stats.final_cycle = 108
        assert stats.bus_utilization() == pytest.approx(0.5)
        assert stats.bus_grants == {"DATA": 1, "BROADCAST": 1}

    def test_bus_utilization_zero_cycles(self):
        assert SystemStats().bus_utilization() == 0.0

    def test_summary_mentions_cores(self):
        stats = SystemStats(cores=[CoreStats(0)])
        assert "c0" in stats.summary()
