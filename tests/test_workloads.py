"""Unit tests for the workload generators (repro.workloads)."""

import numpy as np
import pytest

from repro.sim.trace import merge_stats
from repro.workloads import (
    SPLASH_BENCHMARKS,
    TraceBuilder,
    benchmark_names,
    splash_traces,
    uniform_shared_mix,
)
from repro.workloads.synthetic import LINE, SHARED_BASE, private_base


class TestTraceBuilder:
    def test_access_accumulates(self):
        b = TraceBuilder()
        b.access(64, store=True, gap=3).access(128)
        trace = b.build()
        assert len(trace) == 2
        assert trace[0].gap == 3 and trace[0].addr == 64

    def test_compute_folds_into_next_gap(self):
        b = TraceBuilder()
        b.compute(100).access(0, gap=5)
        assert b.build()[0].gap == 105

    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceBuilder().compute(-1)

    def test_sequential_word_stride_touches_lines_eight_times(self):
        b = TraceBuilder()
        b.sequential(0, 16, gap=0)  # 16 words = 2 lines
        trace = b.build()
        assert trace.unique_lines(LINE) == 2
        assert len(trace) == 16

    def test_scatter_is_read_modify_write(self):
        b = TraceBuilder()
        b.scatter(0, 4 * LINE, [1, 2])
        trace = b.build()
        assert len(trace) == 4
        assert trace[0].addr == trace[1].addr
        assert trace[1].op.name == "STORE"

    def test_zipf_region_prefers_the_head(self):
        b = TraceBuilder(seed=1)
        b.zipf_region(0, 64 * LINE, 500, a=1.5)
        trace = b.build()
        lines = trace.line_addrs(LINE)
        head_fraction = float(np.mean(lines == lines.min()))
        assert head_fraction > 0.3

    def test_random_region_respects_bounds(self):
        b = TraceBuilder(seed=2)
        b.random_region(SHARED_BASE, 8 * LINE, 200, write_ratio=0.5)
        trace = b.build()
        assert trace.addrs.min() >= SHARED_BASE
        assert trace.addrs.max() < SHARED_BASE + 8 * LINE
        assert 0.3 < trace.write_ratio < 0.7


class TestSplashGenerators:
    def test_registry_contains_the_paper_suite(self):
        for name in ("fft", "lu", "radix", "ocean", "barnes", "cholesky",
                     "water", "raytrace"):
            assert name in SPLASH_BENCHMARKS
        assert benchmark_names() == sorted(SPLASH_BENCHMARKS)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            splash_traces("nonexistent")

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_one_trace_per_core(self, name):
        traces = splash_traces(name, num_cores=4, scale=0.5, seed=3)
        assert len(traces) == 4
        assert all(len(tr) > 0 for tr in traces)

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_deterministic_in_seed(self, name):
        a = splash_traces(name, num_cores=2, scale=0.5, seed=7)
        b = splash_traces(name, num_cores=2, scale=0.5, seed=7)
        assert all(x == y for x, y in zip(a, b))

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_different_seeds_differ(self, name):
        a = splash_traces(name, num_cores=2, scale=0.5, seed=1)
        b = splash_traces(name, num_cores=2, scale=0.5, seed=2)
        assert any(x != y for x, y in zip(a, b))

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_threads_share_data(self, name):
        """Every benchmark exhibits true sharing — the point of the paper."""
        traces = splash_traces(name, num_cores=4, scale=1.0, seed=5)
        _total, shared = merge_stats(traces, LINE)
        assert shared > 0, f"{name} has no shared lines"

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_scale_grows_request_count(self, name):
        small = splash_traces(name, num_cores=2, scale=0.5, seed=1)
        large = splash_traces(name, num_cores=2, scale=2.0, seed=1)
        assert len(large[0]) > len(small[0])

    @pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
    def test_spatial_locality_present(self, name):
        """Word-granular accesses: several accesses per distinct line."""
        traces = splash_traces(name, num_cores=4, scale=1.0, seed=5)
        tr = traces[0]
        assert len(tr) / tr.unique_lines(LINE) > 1.5

    def test_private_regions_are_disjoint(self):
        assert private_base(0) + (1 << 22) <= private_base(1) + 1
        assert private_base(3) < SHARED_BASE


class TestUniformSharedMix:
    def test_shapes_and_determinism(self):
        a = uniform_shared_mix(3, 50, seed=4)
        b = uniform_shared_mix(3, 50, seed=4)
        assert len(a) == 3
        assert all(len(tr) == 50 for tr in a)
        assert all(x == y for x, y in zip(a, b))

    def test_shared_fraction_zero_isolates_cores(self):
        traces = uniform_shared_mix(2, 100, shared_fraction=0.0, seed=1)
        _total, shared = merge_stats(traces, LINE)
        assert shared == 0

    def test_shared_fraction_one_everything_shared(self):
        traces = uniform_shared_mix(2, 100, shared_fraction=1.0,
                                    shared_lines=4, seed=1)
        _total, shared = merge_stats(traces, LINE)
        assert shared >= 1

    def test_write_ratio_respected(self):
        traces = uniform_shared_mix(1, 2000, write_ratio=0.25, seed=2)
        assert 0.18 < traces[0].write_ratio < 0.32
