"""Unit tests for the reporting helpers (repro.experiments.report)."""

import json
import math

import pytest

from repro.experiments.report import (
    bar_chart,
    dump_json,
    format_table,
    geomean,
)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["x", 1], ["long", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all rows equal width

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_infinity_renders_unbounded(self):
        out = format_table(["v"], [[math.inf]])
        assert "unbounded" in out

    def test_large_floats_get_thousands_separators(self):
        out = format_table(["v"], [[1234567.0]])
        assert "1,234,567" in out


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart([("a", 10.0), ("bb", 1000.0)])
        assert "a" in out and "bb" in out
        assert "█" in out

    def test_log_scale_compresses(self):
        out = bar_chart([("small", 10.0), ("big", 1_000_000.0)], width=40)
        lines = out.splitlines()
        small_bar = lines[0].count("█")
        big_bar = lines[1].count("█")
        assert big_bar > small_bar
        assert small_bar >= 1

    def test_infinite_values_marked(self):
        out = bar_chart([("x", math.inf), ("y", 5.0)])
        assert "unbounded" in out

    def test_all_infinite(self):
        out = bar_chart([("x", math.inf)], title="t")
        assert "no finite values" in out

    def test_linear_scale(self):
        out = bar_chart([("a", 25.0), ("b", 50.0)], log_scale=False, width=40)
        lines = out.splitlines()
        assert lines[1].count("█") == 40
        assert abs(lines[0].count("█") - 20) <= 1

    def test_bar_never_exceeds_width(self):
        out = bar_chart([("a", 1e12), ("b", 1.0)], width=30)
        for line in out.splitlines():
            assert line.count("█") <= 30


class TestDumpJson:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.json")
        dump_json(path, {"a": 1, "b": [1.5, 2.5]})
        with open(path) as fh:
            assert json.load(fh) == {"a": 1, "b": [1.5, 2.5]}

    def test_infinity_serialised_as_string(self, tmp_path):
        path = str(tmp_path / "x.json")
        dump_json(path, {"v": math.inf})
        with open(path) as fh:
            assert json.load(fh)["v"] == "inf"


class TestGeomeanEdge:
    def test_empty_is_inf(self):
        assert geomean([]) == math.inf

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)
