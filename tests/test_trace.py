"""Unit tests for the trace format (repro.sim.trace)."""

import numpy as np
import pytest

from repro.params import MemOp
from repro.sim.trace import Trace, TraceAccess, merge_stats

from conftest import t


class TestTraceAccess:
    def test_fields(self):
        acc = TraceAccess(gap=3, op=MemOp.STORE, addr=128)
        assert (acc.gap, acc.op, acc.addr) == (3, MemOp.STORE, 128)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            TraceAccess(gap=-1, op=MemOp.LOAD, addr=0)

    def test_rejects_negative_addr(self):
        with pytest.raises(ValueError):
            TraceAccess(gap=0, op=MemOp.LOAD, addr=-8)


class TestTraceConstruction:
    def test_from_accesses(self):
        trace = Trace([TraceAccess(1, MemOp.LOAD, 64), TraceAccess(0, MemOp.STORE, 0)])
        assert len(trace) == 2
        assert trace[0].addr == 64
        assert trace[1].op == MemOp.STORE

    def test_from_arrays_validates_lengths(self):
        with pytest.raises(ValueError):
            Trace.from_arrays([1, 2], [0], [0, 64])

    def test_from_arrays_validates_ops(self):
        with pytest.raises(ValueError):
            Trace.from_arrays([0], [7], [0])

    def test_from_arrays_validates_gaps(self):
        with pytest.raises(ValueError):
            Trace.from_arrays([-1], [0], [0])

    def test_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.footprint_bytes == 0
        assert trace.write_ratio == 0.0

    def test_iteration_matches_indexing(self):
        trace = t([(0, "R", 1), (2, "W", 2), (1, "R", 1)])
        assert list(trace) == [trace[0], trace[1], trace[2]]

    def test_equality(self):
        a = t([(0, "R", 1), (1, "W", 2)])
        b = t([(0, "R", 1), (1, "W", 2)])
        c = t([(0, "R", 1), (1, "R", 2)])
        assert a == b
        assert a != c


class TestTraceStats:
    def test_counts(self):
        trace = t([(0, "R", 0), (0, "W", 1), (0, "W", 1)])
        assert trace.num_loads == 1
        assert trace.num_stores == 2
        assert trace.write_ratio == pytest.approx(2 / 3)

    def test_line_addrs(self):
        trace = Trace.from_arrays([0, 0], [0, 0], [0, 130])
        assert list(trace.line_addrs(64)) == [0, 2]

    def test_unique_lines(self):
        trace = t([(0, "R", 5), (0, "R", 5), (0, "R", 7)])
        assert trace.unique_lines(64) == 2

    def test_line_addrs_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            t([(0, "R", 0)]).line_addrs(0)


class TestTraceTransforms:
    def test_slice(self):
        trace = t([(0, "R", 0), (1, "W", 1), (2, "R", 2)])
        sub = trace.slice(1, 3)
        assert len(sub) == 2
        assert sub[0].addr == 64

    def test_concat(self):
        a = t([(0, "R", 0)])
        b = t([(1, "W", 1)])
        both = a.concat(b)
        assert len(both) == 2
        assert both[1].op == MemOp.STORE


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        trace = t([(0, "R", 0), (3, "W", 9)])
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        assert Trace.load(path) == trace

    def test_csv_roundtrip(self):
        trace = t([(0, "R", 0), (3, "W", 9)])
        assert Trace.from_csv(trace.to_csv()) == trace

    def test_csv_skips_comments_and_blanks(self):
        text = "# header\n\n0,R,64\n"
        trace = Trace.from_csv(text)
        assert len(trace) == 1

    def test_csv_rejects_bad_op(self):
        with pytest.raises(ValueError):
            Trace.from_csv("0,X,64\n")

    def test_csv_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Trace.from_csv("0,R\n")


class TestMergeStats:
    def test_detects_shared_lines(self):
        a = t([(0, "R", 1), (0, "R", 2)])
        b = t([(0, "W", 2), (0, "W", 3)])
        total, shared = merge_stats([a, b], 64)
        assert total == 4
        assert shared == 1

    def test_no_sharing(self):
        a = t([(0, "R", 1)])
        b = t([(0, "R", 2)])
        assert merge_stats([a, b], 64) == (2, 0)
