"""Unit tests for the bus arbitration policies (repro.sim.arbiter)."""

import pytest

from repro.params import ArbiterKind, MemOp, SimConfig, cohort_config, pendulum_config
from repro.sim.arbiter import (
    FCFSArbiter,
    RoundRobinArbiter,
    RROFArbiter,
    TDMArbiter,
    build_arbiter,
)
from repro.sim.messages import (
    BusJob,
    CoherenceRequest,
    JobKind,
    ReqKind,
    Writeback,
)


def req(core, seq, line=0):
    return CoherenceRequest(
        req_id=seq,
        core_id=core,
        line_addr=line,
        kind=ReqKind.GETM,
        op=MemOp.STORE,
        issue_cycle=0,
    )


def bjob(kind, core, seq):
    if kind == JobKind.WRITEBACK:
        wb = Writeback(core_id=core, line_addr=0, version=0, created_cycle=0, seq=seq)
        return BusJob(kind, core, seq, wb=wb)
    return BusJob(kind, core, seq, req=req(core, seq))


class TestRROF:
    def test_grants_in_cyclic_order(self):
        arb = RROFArbiter(3)
        jobs = [bjob(JobKind.BROADCAST, c, c + 1) for c in range(3)]
        decision = arb.decide(0, jobs, set())
        assert decision.job.core_id == 0

    def test_skips_cores_without_jobs_but_keeps_position(self):
        arb = RROFArbiter(3)
        jobs = [bjob(JobKind.BROADCAST, 2, 1)]
        assert arb.decide(0, jobs, set()).job.core_id == 2
        # Core 0 did not lose its place: it is still first when it has work.
        jobs = [bjob(JobKind.BROADCAST, 0, 2), bjob(JobKind.BROADCAST, 2, 3)]
        assert arb.decide(1, jobs, set()).job.core_id == 0

    def test_rotates_only_on_request_completion(self):
        arb = RROFArbiter(2)
        jobs = [bjob(JobKind.BROADCAST, 0, 1), bjob(JobKind.BROADCAST, 1, 2)]
        assert arb.decide(0, jobs, set()).job.core_id == 0
        # No completion: core 0 still leads.
        assert arb.decide(1, jobs, set()).job.core_id == 0
        arb.on_request_completed(0)
        assert arb.decide(2, jobs, set()).job.core_id == 1
        assert arb.order == [1, 0]

    def test_out_of_turn_completion_drops_core_behind_all_waiters(self):
        # Pins the reconciled RROF semantics: rotation happens for
        # whichever core the bus actually served, even when it was served
        # out of turn (everyone ahead of it was stalled), and the served
        # core drops behind *every* still-waiting core — the one-slot-per-
        # competitor budget Equation 1 charges.
        arb = RROFArbiter(3)
        # Cores 0 and 2 are busy (outstanding requests) but have nothing
        # grantable — stalled on remote timers — so core 1 is served.
        assert arb.decide(0, [bjob(JobKind.BROADCAST, 1, 1)], {0, 2}).job.core_id == 1
        arb.on_request_completed(1)
        # Core 1 went behind core 2 as well, not just one slot back.
        assert arb.order == [0, 2, 1]

    def test_wb_slot_rotates_core_behind_waiting_requester(self):
        # Regression: bus write-backs never rotated the served core, so a
        # core with two buffered write-backs could drain both ahead of
        # another core's waiting request — two slots where the shared-WB
        # bound (wcl_miss_shared_wb) budgets one per competing core.
        arb = RROFArbiter(2)
        wb_first = bjob(JobKind.WRITEBACK, 0, 1)
        wb_second = bjob(JobKind.WRITEBACK, 0, 2)
        data = bjob(JobKind.DATA, 1, 3)
        granted = arb.decide(0, [wb_first, wb_second, data], set()).job
        assert granted is wb_first  # core 0's turn
        arb.on_writeback_completed(0)
        assert arb.order == [1, 0]
        # Core 1's pending transfer now precedes core 0's second write-back.
        assert arb.decide(1, [wb_second, data], set()).job is data

    def test_per_core_priority_data_over_broadcast_over_wb(self):
        arb = RROFArbiter(1)
        jobs = [
            bjob(JobKind.WRITEBACK, 0, 1),
            bjob(JobKind.BROADCAST, 0, 2),
            bjob(JobKind.DATA, 0, 3),
        ]
        assert arb.decide(0, jobs, set()).job.kind == JobKind.DATA

    def test_empty_jobs(self):
        arb = RROFArbiter(2)
        decision = arb.decide(0, [], set())
        assert decision.job is None and decision.wake_at is None


class TestRoundRobin:
    def test_rotates_on_every_grant(self):
        arb = RoundRobinArbiter(2)
        jobs = [bjob(JobKind.BROADCAST, 0, 1), bjob(JobKind.BROADCAST, 1, 2)]
        assert arb.decide(0, jobs, set()).job.core_id == 0
        assert arb.decide(1, jobs, set()).job.core_id == 1
        assert arb.decide(2, jobs, set()).job.core_id == 0


class TestFCFS:
    def test_grants_lowest_seq(self):
        arb = FCFSArbiter(3)
        jobs = [bjob(JobKind.BROADCAST, 2, 7), bjob(JobKind.DATA, 0, 9),
                bjob(JobKind.BROADCAST, 1, 3)]
        assert arb.decide(0, jobs, set()).job.seq == 3


class TestTDM:
    def make(self):
        # Critical cores 0 and 1, slot width 10.
        return TDMArbiter(4, critical_cores=[0, 1], slot_width=10)

    def test_rejects_empty_critical_set(self):
        with pytest.raises(ValueError):
            TDMArbiter(2, critical_cores=[], slot_width=10)

    def test_slot_ownership_cycles(self):
        arb = self.make()
        assert arb.slot_owner(0) == 0
        assert arb.slot_owner(10) == 1
        assert arb.slot_owner(20) == 0
        assert arb.slot_owner(15) == 1

    def test_waits_for_slot_boundary(self):
        arb = self.make()
        jobs = [bjob(JobKind.BROADCAST, 0, 1)]
        decision = arb.decide(3, jobs, {0})
        assert decision.job is None
        assert decision.wake_at == 10

    def test_grants_slot_owner_at_boundary(self):
        arb = self.make()
        jobs = [bjob(JobKind.BROADCAST, 0, 1), bjob(JobKind.BROADCAST, 1, 2)]
        assert arb.decide(0, jobs, {0, 1}).job.core_id == 0
        assert arb.decide(10, jobs, {0, 1}).job.core_id == 1

    def test_idle_slot_when_owner_not_ready_but_cr_busy(self):
        """PENDULUM's wasted slots: owner has nothing, another Cr core waits."""
        arb = self.make()
        jobs = [bjob(JobKind.BROADCAST, 1, 2), bjob(JobKind.BROADCAST, 2, 3)]
        decision = arb.decide(0, jobs, {1})  # slot owner 0 idle, core 1 busy
        assert decision.job is None
        assert decision.wake_at == 10

    def test_ncr_served_only_when_no_cr_outstanding(self):
        arb = self.make()
        ncr_jobs = [bjob(JobKind.BROADCAST, 2, 5), bjob(JobKind.BROADCAST, 3, 6)]
        # Some critical core still has an outstanding request: starve nCr.
        assert arb.decide(0, ncr_jobs, {1}).job is None
        # No critical requests at all: nCr gets the slack, round-robin.
        assert arb.decide(10, ncr_jobs, set()).job.core_id == 2
        assert arb.decide(20, ncr_jobs, set()).job.core_id == 3

    def test_next_boundary(self):
        arb = self.make()
        assert arb.next_boundary(0) == 10
        assert arb.next_boundary(9) == 10
        assert arb.next_boundary(10) == 20


class TestBuildArbiter:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (ArbiterKind.RROF, RROFArbiter),
            (ArbiterKind.ROUND_ROBIN, RoundRobinArbiter),
            (ArbiterKind.FCFS, FCFSArbiter),
        ],
    )
    def test_builds_kind(self, kind, cls):
        cfg = cohort_config([10, 10], arbiter=kind)
        assert isinstance(build_arbiter(cfg), cls)

    def test_builds_tdm_with_critical_cores(self):
        cfg = pendulum_config([True, False, True, False])
        arb = build_arbiter(cfg)
        assert isinstance(arb, TDMArbiter)
        assert arb.critical_cores == [0, 2]
        assert arb.slot_width == cfg.latencies.slot_width

    def test_tdm_all_ncr_falls_back_to_all_cores(self):
        cfg = SimConfig(num_cores=2, arbiter=ArbiterKind.TDM)
        arb = build_arbiter(cfg)
        assert arb.critical_cores == [0, 1]
