"""Unit tests for the private cache controller (repro.sim.private_cache)."""

import pytest

from repro.params import MSI_THETA, CacheGeometry, MemOp
from repro.sim.cache import LineState
from repro.sim.private_cache import AccessOutcome, PrivateCache
from repro.sim.timer import ModeSwitchLUT


def make_cache(theta=10, sets=4, lut=None):
    geom = CacheGeometry(size_bytes=sets * 64, line_bytes=64, ways=1)
    return PrivateCache(0, geom, theta, lut=lut)


class TestClassification:
    def test_cold_load_is_gets(self):
        c = make_cache()
        assert c.classify(MemOp.LOAD, 0) == AccessOutcome.MISS_GETS

    def test_cold_store_is_getm(self):
        c = make_cache()
        assert c.classify(MemOp.STORE, 0) == AccessOutcome.MISS_GETM

    def test_hit_after_fill(self):
        c = make_cache()
        c.fill(3, LineState.S, cycle=0, version=0)
        assert c.classify(MemOp.LOAD, 3) == AccessOutcome.HIT

    def test_store_to_shared_is_upgrade(self):
        c = make_cache()
        c.fill(3, LineState.S, cycle=0, version=0)
        assert c.classify(MemOp.STORE, 3) == AccessOutcome.UPGRADE

    def test_store_to_modified_hits(self):
        c = make_cache()
        c.fill(3, LineState.M, cycle=0, version=0)
        assert c.classify(MemOp.STORE, 3) == AccessOutcome.HIT

    def test_frozen_line_misses(self):
        c = make_cache()
        c.fill(3, LineState.M, cycle=0, version=0)
        line = c.lookup(3)
        line.pending_inv_since = 1
        line.handover_ready = True
        assert c.classify(MemOp.LOAD, 3) == AccessOutcome.MISS_GETS
        assert c.classify(MemOp.STORE, 3) == AccessOutcome.MISS_GETM

    def test_frozen_shared_store_is_getm_not_upgrade(self):
        c = make_cache()
        c.fill(3, LineState.S, cycle=0, version=0)
        line = c.lookup(3)
        line.pending_inv_since = 1
        line.handover_ready = True
        assert c.classify(MemOp.STORE, 3) == AccessOutcome.MISS_GETM

    def test_req_kind_mapping(self):
        assert AccessOutcome.MISS_GETS.req_kind.name == "GETS"
        assert AccessOutcome.MISS_GETM.req_kind.name == "GETM"
        assert AccessOutcome.UPGRADE.req_kind.name == "UPG"
        with pytest.raises(ValueError):
            AccessOutcome.HIT.req_kind


class TestFillAndEvict:
    def test_fill_returns_no_victim_on_empty_slot(self):
        c = make_cache()
        assert c.fill(0, LineState.S, 0, 0) is None

    def test_fill_evicts_conflicting_line(self):
        c = make_cache(sets=4)
        c.fill(1, LineState.M, 0, 7)
        c.lookup(1).dirty = True
        victim = c.fill(5, LineState.S, 10, 0)  # 5 maps to the same set
        assert victim is not None
        assert victim.line_addr == 1
        assert victim.dirty and victim.version == 7
        assert c.lookup(1) is None
        assert c.lookup(5) is not None

    def test_fill_same_line_no_victim(self):
        c = make_cache()
        c.fill(2, LineState.S, 0, 0)
        assert c.fill(2, LineState.M, 5, 1) is None

    def test_fill_resets_pending_state_and_timer(self):
        c = make_cache()
        c.fill(2, LineState.S, 0, 0)
        line = c.lookup(2)
        line.pending_inv_since = 3
        c.fill(2, LineState.M, 9, 1)
        line = c.lookup(2)
        assert line.pending_inv_since is None
        assert line.fill_cycle == 9

    def test_fill_rejects_invalid_state(self):
        with pytest.raises(ValueError):
            make_cache().fill(0, LineState.I, 0, 0)

    def test_eviction_counters(self):
        c = make_cache(sets=4)
        c.fill(1, LineState.M, 0, 0)
        c.lookup(1).dirty = True
        c.fill(5, LineState.S, 1, 0)
        assert c.evictions == 1
        assert c.dirty_evictions == 1


class TestMarkPending:
    def test_timed_deadline_uses_timer(self):
        c = make_cache(theta=10)
        c.fill(2, LineState.M, cycle=100, version=0)
        inv_at = c.mark_pending(c.lookup(2), now=103, downgrade=False)
        assert inv_at == 110

    def test_msi_deadline_is_immediate(self):
        c = make_cache(theta=MSI_THETA)
        c.fill(2, LineState.M, cycle=100, version=0)
        assert c.mark_pending(c.lookup(2), now=103, downgrade=False) == 103

    def test_idempotent_keeps_first_deadline(self):
        c = make_cache(theta=10)
        c.fill(2, LineState.M, cycle=100, version=0)
        line = c.lookup(2)
        first = c.mark_pending(line, now=101, downgrade=False)
        second = c.mark_pending(line, now=108, downgrade=False)
        assert first == second == 110

    def test_downgrade_escalates_to_invalidation(self):
        c = make_cache(theta=10)
        c.fill(2, LineState.M, cycle=100, version=0)
        line = c.lookup(2)
        c.mark_pending(line, now=101, downgrade=True)
        assert line.pending_is_downgrade
        c.mark_pending(line, now=102, downgrade=False)
        assert not line.pending_is_downgrade

    def test_invalid_line_rejected(self):
        c = make_cache()
        from repro.sim.cache import CacheLine

        with pytest.raises(ValueError):
            c.mark_pending(CacheLine(), now=0, downgrade=False)


class TestModeSwitching:
    def test_apply_mode_reads_lut(self):
        lut = ModeSwitchLUT({1: 300, 2: MSI_THETA})
        c = make_cache(theta=300, lut=lut)
        assert c.apply_mode(2) == MSI_THETA
        assert c.is_msi
        assert c.apply_mode(1) == 300
        assert not c.is_msi

    def test_apply_unprogrammed_mode_raises(self):
        c = make_cache()
        with pytest.raises(KeyError):
            c.apply_mode(3)

    def test_set_theta_validates(self):
        c = make_cache()
        with pytest.raises(ValueError):
            c.set_theta(0)


class TestBackInvalidation:
    def test_back_invalidate_returns_snapshot(self):
        c = make_cache()
        c.fill(2, LineState.M, 0, 9)
        c.lookup(2).dirty = True
        snap = c.back_invalidate(2)
        assert snap.dirty and snap.version == 9
        assert c.lookup(2) is None
        assert c.back_invalidations == 1

    def test_back_invalidate_absent_line(self):
        c = make_cache()
        assert c.back_invalidate(2) is None
        assert c.back_invalidations == 0

    def test_resident_lines(self):
        c = make_cache()
        assert c.resident_lines() == 0
        c.fill(0, LineState.S, 0, 0)
        c.fill(1, LineState.S, 0, 0)
        assert c.resident_lines() == 2


def assert_occupancy_consistent(cache):
    """The O(1) occupancy counter must equal a full array scan."""
    assert cache.resident_lines() == len(cache.array) == cache.array.recount()


class TestOccupancyConsistency:
    """``resident_lines`` is an O(1) counter; it must never drift from
    the ground truth a scan of the array reports (``recount``)."""

    def test_fill_lookup_evict_sequence(self):
        c = make_cache(sets=4)
        assert_occupancy_consistent(c)
        c.fill(0, LineState.S, 0, 0)
        c.fill(1, LineState.M, 0, 0)
        assert_occupancy_consistent(c)
        c.fill(5, LineState.S, 1, 0)  # conflicts with line 1: evict
        assert_occupancy_consistent(c)
        assert c.resident_lines() == 2
        c.fill(5, LineState.M, 2, 1)  # refill same line: no change
        assert_occupancy_consistent(c)

    def test_invalidate_paths_update_counter(self):
        c = make_cache(sets=4)
        c.fill(0, LineState.S, 0, 0)
        c.fill(1, LineState.M, 0, 0)
        c.fill(2, LineState.S, 0, 0)
        c.lookup(0).invalidate()
        assert_occupancy_consistent(c)
        assert c.resident_lines() == 2
        c.back_invalidate(1)
        assert_occupancy_consistent(c)
        assert c.resident_lines() == 1
        c.back_invalidate(1)  # already gone: no double-count
        assert_occupancy_consistent(c)

    def test_mixed_churn_never_drifts(self):
        c = make_cache(sets=4)
        for step in range(40):
            line = (step * 7) % 16
            if step % 3 == 2 and c.lookup(line) is not None:
                c.back_invalidate(line)
            else:
                state = LineState.M if step % 2 else LineState.S
                c.fill(line, state, cycle=step, version=0)
            assert_occupancy_consistent(c)

    def test_pending_counter_tracks_mark_and_clear(self):
        """``pending_count`` is the O(1) ground truth behind the telemetry
        sampler's ``protected_lines`` series; every arm/clear path must
        keep it equal to a scan (``recount_pending``)."""
        c = make_cache(theta=10, sets=4)
        assert c.array.pending_count() == 0 == c.array.recount_pending()
        c.fill(0, LineState.M, cycle=0, version=0)
        c.fill(1, LineState.S, cycle=0, version=0)
        c.mark_pending(c.lookup(0), now=3, downgrade=False)
        c.mark_pending(c.lookup(0), now=4, downgrade=False)  # idempotent
        assert c.array.pending_count() == 1 == c.array.recount_pending()
        c.mark_pending(c.lookup(1), now=5, downgrade=True)
        assert c.array.pending_count() == 2 == c.array.recount_pending()
        c.lookup(0).clear_pending()
        c.lookup(0).clear_pending()  # already clear: no double-decrement
        assert c.array.pending_count() == 1 == c.array.recount_pending()
        c.lookup(1).invalidate()  # invalidation clears pending state too
        assert c.array.pending_count() == 0 == c.array.recount_pending()

    def test_pending_counter_cleared_by_refill_eviction(self):
        c = make_cache(theta=10, sets=4)
        c.fill(1, LineState.M, cycle=0, version=0)
        c.mark_pending(c.lookup(1), now=2, downgrade=False)
        assert c.array.pending_count() == 1
        c.fill(5, LineState.S, cycle=3, version=0)  # evicts pending line 1
        assert c.array.pending_count() == 0 == c.array.recount_pending()

    def test_pending_counter_never_drifts_in_live_system(self):
        """Across a contended run, every published event observes the
        O(1) pending counter equal to a ground-truth array scan."""
        from repro.sim.system import System
        from repro.params import cohort_config
        from repro.workloads import splash_traces

        traces = splash_traces("ocean", 4, scale=0.2, seed=0)
        system = System(cohort_config([60, 60, 20, MSI_THETA]), traces)

        def check(cycle, kind, payload):
            for cache in system.caches:
                assert (
                    cache.array.pending_count()
                    == cache.array.recount_pending()
                )

        system.events.subscribe(
            check, kinds=("miss", "grant", "timer_expiry", "fill")
        )
        system.run()
        assert sum(c.array.pending_count() for c in system.caches) == 0

    def test_repr_reports_occupancy_and_protocol(self):
        c = make_cache(theta=10, sets=4)
        c.fill(0, LineState.S, 0, 0)
        text = repr(c)
        assert "timed_msi" in text
        assert "1/4 lines" in text
        from repro.params import MSI_THETA

        msi = make_cache(theta=MSI_THETA)
        assert "MSI" in repr(msi)
