"""Unit tests for the timer optimization problem and engine (repro.opt)."""

import pytest

from repro.params import MSI_THETA, CacheGeometry, LatencyParams
from repro.analysis.cache_analysis import build_profiles
from repro.opt import (
    GAConfig,
    OptimizationEngine,
    TimerProblem,
    hill_climb,
    random_search,
)

from conftest import t


@pytest.fixture
def profiles():
    traces = [
        t([(0, "R", 1), (1, "R", 1), (2, "R", 1), (0, "W", 2), (1, "W", 2)]),
        t([(0, "W", 3), (1, "W", 3), (2, "R", 3)]),
        t([(0, "R", 4), (50, "R", 4)]),
    ]
    return build_profiles(traces, CacheGeometry())


@pytest.fixture
def latencies():
    return LatencyParams()


class TestTimerProblem:
    def test_requires_a_timed_core(self, profiles, latencies):
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[False] * 3)

    def test_expand_places_genes_on_timed_cores(self, profiles, latencies):
        problem = TimerProblem(profiles, latencies, timed=[True, False, True])
        thetas = problem.expand([11, 22])
        assert thetas == [11, MSI_THETA, 22]

    def test_expand_validates_gene_count(self, profiles, latencies):
        problem = TimerProblem(profiles, latencies, timed=[True, False, True])
        with pytest.raises(ValueError):
            problem.expand([11])

    def test_gene_bounds_one_per_timed_core(self, profiles, latencies):
        problem = TimerProblem(profiles, latencies, timed=[True, True, False])
        bounds = problem.gene_bounds()
        assert len(bounds) == 2
        for lo, hi in bounds:
            assert lo == 1 and hi >= 1

    def test_evaluate_reports_bounds_for_all_cores(self, profiles, latencies):
        problem = TimerProblem(profiles, latencies, timed=[True, False, True])
        ev = problem.evaluate([10, 10])
        assert len(ev.bounds) == 3
        assert ev.bounds[1].m_hit == 0  # the MSI core has no guarantees
        assert ev.feasible  # no requirements set

    def test_constraint_violation_detected(self, profiles, latencies):
        problem = TimerProblem(
            profiles,
            latencies,
            timed=[True, True, True],
            requirements=[1.0, None, None],  # impossible requirement
        )
        ev = problem.evaluate([10, 10, 10])
        assert not ev.feasible
        assert ev.violation > 0

    def test_penalty_increases_fitness(self, profiles, latencies):
        relaxed = TimerProblem(profiles, latencies, timed=[True, True, True])
        strict = TimerProblem(
            profiles, latencies, timed=[True, True, True],
            requirements=[1.0, None, None],
        )
        genes = [10, 10, 10]
        assert strict.fitness(genes) > relaxed.fitness(genes)

    def test_msi_corunners_reduce_objective(self, profiles, latencies):
        """Fewer timed co-runners → tighter WCL → smaller objective."""
        all_timed = TimerProblem(profiles, latencies, timed=[True, True, True])
        one_timed = TimerProblem(profiles, latencies, timed=[True, False, False])
        assert one_timed.evaluate([50]).bounds[0].wcl < \
            all_timed.evaluate([50, 50, 50]).bounds[0].wcl

    def test_wcl_bucket_validation(self, profiles, latencies):
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True] * 3, wcl_bucket=0)

    def test_weights_skew_objective(self, profiles, latencies):
        uniform = TimerProblem(profiles, latencies, timed=[True] * 3)
        skewed = TimerProblem(
            profiles, latencies, timed=[True] * 3, weights=[10.0, 1.0, 1.0]
        )
        genes = [20, 20, 20]
        u = uniform.evaluate(genes)
        s = skewed.evaluate(genes)
        # Same bounds, different scalarisation.
        assert [b.wcml for b in u.bounds] == [b.wcml for b in s.bounds]
        expected = (
            10 * s.bounds[0].average_per_access
            + s.bounds[1].average_per_access
            + s.bounds[2].average_per_access
        ) / 12
        assert s.objective == pytest.approx(expected)

    def test_weights_validation(self, profiles, latencies):
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True] * 3,
                         weights=[1.0, 1.0])
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True] * 3,
                         weights=[-1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True, False, False],
                         objective_cores=[0], weights=[0.0, 1.0, 1.0])

    def test_objective_cores_validation(self, profiles, latencies):
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True] * 3,
                         objective_cores=[7])
        with pytest.raises(ValueError):
            TimerProblem(profiles, latencies, timed=[True] * 3,
                         objective_cores=[])


class TestOptimizationEngine:
    def test_optimize_returns_full_theta_vector(self, profiles, latencies):
        engine = OptimizationEngine(
            profiles, latencies,
            GAConfig(population_size=8, generations=5, seed=0),
        )
        result = engine.optimize(timed=[True, False, True])
        assert len(result.thetas) == 3
        assert result.thetas[1] == MSI_THETA
        assert result.thetas[0] >= 1
        assert result.feasible
        assert result.wall_seconds > 0

    def test_optimize_meets_satisfiable_requirement(self, profiles, latencies):
        engine = OptimizationEngine(
            profiles, latencies,
            GAConfig(population_size=16, generations=12, seed=1),
        )
        unconstrained = engine.optimize(timed=[True, True, True])
        gamma = unconstrained.bounds[0].wcml * 1.2
        constrained = engine.optimize(
            timed=[True, True, True], requirements=[gamma, None, None]
        )
        assert constrained.feasible
        assert constrained.bounds[0].wcml <= gamma

    def test_optimize_modes_produces_table(self, profiles, latencies):
        engine = OptimizationEngine(
            profiles, latencies,
            GAConfig(population_size=8, generations=4, seed=0),
        )
        table = engine.optimize_modes(
            criticalities=[3, 2, 1],
            requirements_per_mode={m: [None] * 3 for m in (1, 2, 3)},
        )
        assert table.modes == [1, 2, 3]
        # Mode 1: everyone timed; mode 3: only the level-3 core.
        assert all(th != MSI_THETA for th in table.thetas[1])
        assert table.thetas[3][1] == MSI_THETA
        assert table.thetas[3][2] == MSI_THETA
        assert table.thetas[3][0] != MSI_THETA
        # LUT view matches the table rows.
        assert table.lut_entries(0)[3] == table.thetas[3][0]
        rows = table.as_rows()
        assert rows[0][0] == 1 and len(rows[0]) == 4
        assert "θ_0" in str(table)

    def test_optimize_modes_validates_lengths(self, profiles, latencies):
        engine = OptimizationEngine(profiles, latencies)
        with pytest.raises(ValueError):
            engine.optimize_modes([1, 2], {1: [None, None]})
        with pytest.raises(ValueError):
            engine.optimize_modes([1, 2, 3], {1: [None]})


class TestProblemProperties:
    """Hypothesis checks on the optimization landscape."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        genes=st.lists(st.integers(1, 5000), min_size=3, max_size=3),
        gamma_scale=st.floats(0.1, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_tighter_requirements_never_reduce_violation(
        self, genes, gamma_scale
    ):
        from repro.params import CacheGeometry, LatencyParams
        from repro.analysis.cache_analysis import build_profiles
        from conftest import t

        traces = [
            t([(0, "R", 1), (1, "R", 1), (2, "W", 2)]),
            t([(0, "W", 3), (1, "W", 3)]),
            t([(0, "R", 4), (50, "R", 4)]),
        ]
        profiles = build_profiles(traces, CacheGeometry())
        latencies = LatencyParams()
        base = TimerProblem(profiles, latencies, timed=[True] * 3)
        loose_gamma = base.evaluate(genes).bounds[0].wcml * gamma_scale
        loose = TimerProblem(
            profiles, latencies, timed=[True] * 3,
            requirements=[loose_gamma, None, None],
        )
        tight = TimerProblem(
            profiles, latencies, timed=[True] * 3,
            requirements=[loose_gamma / 2, None, None],
        )
        assert tight.evaluate(genes).violation >= \
            loose.evaluate(genes).violation

    @given(genes=st.lists(st.integers(1, 5000), min_size=3, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_objective_is_positive_and_finite(self, genes):
        from repro.params import CacheGeometry, LatencyParams
        from repro.analysis.cache_analysis import build_profiles
        from conftest import t
        import math

        traces = [
            t([(0, "R", 1), (1, "R", 1)]),
            t([(0, "W", 3)]),
            t([(0, "R", 4)]),
        ]
        profiles = build_profiles(traces, CacheGeometry())
        ev = TimerProblem(
            profiles, LatencyParams(), timed=[True] * 3
        ).evaluate(genes)
        assert math.isfinite(ev.objective) and ev.objective > 0
        assert ev.feasible


class TestSearchBaselines:
    def fitness(self, genes):
        return abs(genes[0] - 77) + abs(genes[1] - 5)

    def test_random_search_improves(self):
        result = random_search([(1, 1000), (1, 1000)], self.fitness,
                               budget=300, seed=0)
        assert result.best_fitness < 200
        assert result.evaluations == 300

    def test_hill_climb_improves(self):
        result = hill_climb([(1, 1000), (1, 1000)], self.fitness,
                            budget=300, seed=0)
        assert result.best_fitness < 100

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            random_search([(1, 2)], self.fitness, budget=0)
        with pytest.raises(ValueError):
            hill_climb([(1, 2)], self.fitness, budget=0)
