"""Unit tests for task-to-core schedules (repro.mcs.schedule)."""

import pytest

from repro.params import MSI_THETA, CacheGeometry, LatencyParams
from repro.mcs import CoreSchedule, Task, per_task_bounds, schedule_traces
from repro.sim.system import run_simulation
from repro.params import cohort_config

from conftest import t


def make_schedule():
    hot = Task("hot", 3, t([(0, "R", 1), (1, "R", 1), (1, "R", 1)]),
               requirements={1: 10_000.0})
    cold = Task("cold", 1, t([(0, "W", 2), (5, "W", 3)]))
    return CoreSchedule((hot, cold))


class TestCoreSchedule:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CoreSchedule(())

    def test_trace_concatenation(self):
        schedule = make_schedule()
        assert len(schedule.trace) == 5
        assert schedule.boundaries == [0, 3]

    def test_active_task_by_index(self):
        schedule = make_schedule()
        assert schedule.active_task(0).name == "hot"
        assert schedule.active_task(2).name == "hot"
        assert schedule.active_task(3).name == "cold"
        assert schedule.active_task(4).name == "cold"

    def test_active_task_out_of_range(self):
        schedule = make_schedule()
        with pytest.raises(IndexError):
            schedule.active_task(5)
        with pytest.raises(IndexError):
            schedule.active_task(-1)

    def test_criticality_inheritance(self):
        """Section II: the core inherits the running task's criticality."""
        schedule = make_schedule()
        assert schedule.criticality_at(1) == 3
        assert schedule.criticality_at(4) == 1
        assert schedule.max_criticality == 3


class TestPerTaskBounds:
    def geometry(self):
        return CacheGeometry()

    def test_one_bound_per_task(self):
        schedules = [make_schedule(), CoreSchedule((Task("x", 2, t([(0, "R", 9)])),))]
        bounds = per_task_bounds(
            schedules, [50, 50], self.geometry(), LatencyParams()
        )
        assert len(bounds) == 3
        assert [b.task.name for b in bounds] == ["hot", "cold", "x"]
        assert bounds[0].core_id == 0 and bounds[2].core_id == 1

    def test_msi_core_all_misses(self):
        schedules = [make_schedule()]
        bounds = per_task_bounds(
            schedules, [MSI_THETA], self.geometry(), LatencyParams()
        )
        for tb in bounds:
            assert tb.bound.m_hit == 0

    def test_requirement_check_per_task(self):
        schedules = [make_schedule()]
        bounds = per_task_bounds(
            schedules, [50], self.geometry(), LatencyParams()
        )
        hot = bounds[0]
        assert hot.meets(1) is True     # generous requirement
        assert hot.meets(2) is None     # no requirement at mode 2
        assert bounds[1].meets(1) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            per_task_bounds([make_schedule()], [50, 60],
                            self.geometry(), LatencyParams())

    def test_bounds_are_sound_against_simulation(self):
        """The whole-schedule measured latency stays under the per-task sum."""
        schedules = [
            make_schedule(),
            CoreSchedule((Task("y", 2, t([(2, "W", 1), (3, "R", 4)])),)),
        ]
        thetas = [40, 40]
        bounds = per_task_bounds(
            schedules, thetas, self.geometry(), LatencyParams()
        )
        traces = schedule_traces(schedules)
        stats = run_simulation(cohort_config(thetas), traces)
        for core_id in range(2):
            per_core_sum = sum(
                tb.bound.wcml for tb in bounds if tb.core_id == core_id
            )
            assert stats.core(core_id).total_memory_latency <= per_core_sum
