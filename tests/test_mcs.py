"""Unit tests for the MCS model and mode-switch controller (repro.mcs)."""

import pytest

from repro.params import MSI_THETA, CacheGeometry, LatencyParams, cohort_config
from repro.analysis.cache_analysis import build_profiles
from repro.mcs import (
    ModeSwitchController,
    Task,
    TaskSet,
    UnschedulableError,
)
from repro.opt.engine import ModeTable
from repro.sim.system import System

from conftest import t


def make_tasks():
    traces = [
        t([(0, "R", 1), (1, "R", 1), (5, "W", 2)]),
        t([(0, "W", 3), (1, "W", 3)]),
        t([(0, "R", 4), (2, "R", 4)]),
    ]
    tasks = TaskSet(
        (
            Task("tau_hi", criticality=3, trace=traces[0],
                 requirements={1: 50_000.0}),
            Task("tau_mid", criticality=2, trace=traces[1]),
            Task("tau_lo", criticality=1, trace=traces[2]),
        )
    )
    return tasks, traces


def make_table():
    return ModeTable(
        thetas={
            1: [100, 50, 20],
            2: [120, 60, MSI_THETA],
            3: [300, MSI_THETA, MSI_THETA],
        }
    )


@pytest.fixture
def controller():
    tasks, traces = make_tasks()
    profiles = build_profiles(traces, CacheGeometry())
    return ModeSwitchController(
        tasks, make_table(), profiles, LatencyParams()
    )


class TestTask:
    def test_tuple_fields(self):
        task = Task("x", criticality=2, trace=t([(0, "R", 1)]),
                    requirements={1: 100.0})
        assert task.num_accesses == 1
        assert task.requirement(1) == 100.0
        assert task.requirement(2) is None

    def test_guaranteed_at(self):
        task = Task("x", criticality=2, trace=t([(0, "R", 1)]))
        assert task.guaranteed_at(1)
        assert task.guaranteed_at(2)
        assert not task.guaranteed_at(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Task("x", criticality=0, trace=t([]))
        with pytest.raises(ValueError):
            Task("x", criticality=1, trace=t([]), requirements={0: 1.0})
        with pytest.raises(ValueError):
            Task("x", criticality=1, trace=t([]), requirements={1: -5.0})


class TestTaskSet:
    def test_vectors(self):
        tasks, _ = make_tasks()
        assert tasks.criticalities == [3, 2, 1]
        assert tasks.num_levels == 3
        assert tasks.timed_at(2) == [True, True, False]
        assert tasks.requirements_at(1) == [50_000.0, None, None]

    def test_requirements_masked_for_degraded_cores(self):
        tasks, _ = make_tasks()
        # At mode 3 only the level-3 task keeps a guarantee slot.
        reqs = tasks.requirements_at(3)
        assert reqs[1] is None and reqs[2] is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskSet(())


class TestController:
    def test_bounds_tighten_with_mode(self, controller):
        b1 = controller.bounds_at(1)[0].wcml
        b3 = controller.bounds_at(3)[0].wcml
        assert b3 < b1  # degrading co-runners tightens c0's bound

    def test_unknown_mode_raises(self, controller):
        with pytest.raises(KeyError):
            controller.bounds_at(9)

    def test_required_mode_picks_lowest_satisfying(self, controller):
        loose = controller.bounds_at(1)[0].wcml * 2
        decision = controller.required_mode([loose, None, None])
        assert decision.mode == 1
        assert decision.degraded == []

    def test_required_mode_escalates(self, controller):
        b1 = controller.bounds_at(1)[0].wcml
        b3 = controller.bounds_at(3)[0].wcml
        tight = (b1 + b3) / 2
        decision = controller.required_mode([tight, None, None])
        assert decision.mode > 1
        assert decision.degraded  # someone got degraded, not suspended

    def test_unschedulable_raises(self, controller):
        with pytest.raises(UnschedulableError):
            controller.required_mode([1.0, None, None])

    def test_requirement_vector_length_checked(self, controller):
        with pytest.raises(ValueError):
            controller.required_mode([None])

    def test_program_luts_and_react(self, controller):
        tasks, traces = make_tasks()
        config = cohort_config([100, 50, 20], criticalities=[3, 2, 1])
        system = System(config, traces)
        controller.program_luts(system)
        assert system.caches[0].lut.lookup(3) == 300
        b1 = controller.bounds_at(1)[0].wcml
        b3 = controller.bounds_at(3)[0].wcml
        decision = controller.react(system, [(b1 + b3) / 2, None, None])
        assert controller.current_mode == decision.mode
        assert system.caches[2].theta == MSI_THETA  # degraded at runtime

    def test_apply_unknown_mode_raises(self, controller):
        tasks, traces = make_tasks()
        system = System(cohort_config([100, 50, 20]), traces)
        with pytest.raises(KeyError):
            controller.apply(system, 42)

    def test_profile_count_validated(self):
        tasks, traces = make_tasks()
        profiles = build_profiles(traces[:2], CacheGeometry())
        with pytest.raises(ValueError):
            ModeSwitchController(tasks, make_table(), profiles, LatencyParams())
