"""Unit tests for the configuration layer (repro.params)."""

import pytest

from repro.params import (
    MSI_THETA,
    ArbiterKind,
    CacheGeometry,
    CoreConfig,
    LatencyParams,
    SimConfig,
    cohort_config,
    msi_fcfs_config,
    pcc_config,
    pendulum_config,
    pendulum_star_config,
)


class TestLatencyParams:
    def test_paper_defaults(self):
        lat = LatencyParams()
        assert (lat.hit, lat.request, lat.data) == (1, 4, 50)

    def test_slot_width_is_request_plus_data(self):
        assert LatencyParams().slot_width == 54
        assert LatencyParams(request=10, data=40).slot_width == 50

    @pytest.mark.parametrize("field", ["hit", "request", "data"])
    def test_rejects_non_positive_latency(self, field):
        with pytest.raises(ValueError):
            LatencyParams(**{field: 0})


class TestCacheGeometry:
    def test_paper_l1_geometry(self):
        geom = CacheGeometry()
        assert geom.size_bytes == 16 * 1024
        assert geom.line_bytes == 64
        assert geom.ways == 1
        assert geom.num_sets == 256
        assert geom.num_lines == 256

    def test_llc_geometry(self):
        geom = CacheGeometry(size_bytes=1024 * 1024, line_bytes=64, ways=8)
        assert geom.num_sets == 2048

    def test_set_index_wraps(self):
        geom = CacheGeometry()
        assert geom.set_index(0) == 0
        assert geom.set_index(256) == 0
        assert geom.set_index(257) == 1

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=3 * 64, line_bytes=64, ways=1)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, line_bytes=64, ways=1)

    def test_rejects_zero_fields(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0)


class TestCoreConfig:
    def test_msi_flags(self):
        cfg = CoreConfig(theta=MSI_THETA)
        assert cfg.is_msi and not cfg.is_timed

    def test_timed_flags(self):
        cfg = CoreConfig(theta=42)
        assert cfg.is_timed and not cfg.is_msi

    @pytest.mark.parametrize("theta", [0, -2, -100])
    def test_rejects_invalid_theta(self, theta):
        with pytest.raises(ValueError):
            CoreConfig(theta=theta)

    def test_rejects_zero_criticality(self):
        with pytest.raises(ValueError):
            CoreConfig(criticality=0)


class TestSimConfig:
    def test_defaults_are_papers_setup(self):
        cfg = SimConfig()
        assert cfg.num_cores == 4
        assert cfg.perfect_llc is True
        assert cfg.arbiter == ArbiterKind.RROF

    def test_core_config_defaults_to_msi(self):
        assert SimConfig().core_config(2).is_msi

    def test_cores_length_mismatch(self):
        with pytest.raises(ValueError):
            SimConfig(num_cores=2, cores=(CoreConfig(),))

    def test_line_size_mismatch(self):
        with pytest.raises(ValueError):
            SimConfig(
                l1=CacheGeometry(line_bytes=64),
                llc=CacheGeometry(size_bytes=1024 * 128, line_bytes=32, ways=8),
            )

    def test_thetas_roundtrip(self):
        cfg = cohort_config([10, 20, MSI_THETA, 40])
        assert cfg.thetas == [10, 20, MSI_THETA, 40]

    def test_with_thetas_replaces_only_timers(self):
        cfg = cohort_config([10, 20, 30, 40], criticalities=[4, 3, 2, 1])
        new = cfg.with_thetas([1, 2, 3, MSI_THETA])
        assert new.thetas == [1, 2, 3, MSI_THETA]
        assert [new.core_config(i).criticality for i in range(4)] == [4, 3, 2, 1]

    def test_with_thetas_wrong_length(self):
        with pytest.raises(ValueError):
            cohort_config([10, 20]).with_thetas([1])


class TestConfigSerialisation:
    def test_roundtrip_default(self, tmp_path):
        from repro.params import load_config, save_config

        cfg = SimConfig()
        path = str(tmp_path / "cfg.json")
        save_config(cfg, path)
        loaded = load_config(path)
        assert loaded.thetas == cfg.thetas
        assert loaded.arbiter == cfg.arbiter
        assert loaded.l1 == cfg.l1 and loaded.llc == cfg.llc

    def test_roundtrip_custom(self, tmp_path):
        from repro.params import load_config, save_config

        cfg = pendulum_config([True, False], theta=77)
        cfg = cfg.with_thetas([77, 88])
        path = str(tmp_path / "cfg.json")
        save_config(cfg, path)
        loaded = load_config(path)
        assert loaded.thetas == [77, 88]
        assert loaded.arbiter == ArbiterKind.TDM
        assert loaded.core_config(0).critical
        assert not loaded.core_config(1).critical

    def test_dict_roundtrip_preserves_flags(self):
        from repro.params import config_from_dict, config_to_dict

        cfg = pcc_config(3, wb_on_bus=True, perfect_llc=False,
                         dram_latency=42)
        back = config_from_dict(config_to_dict(cfg))
        assert back.via_llc_transfers
        assert back.wb_on_bus
        assert not back.perfect_llc
        assert back.dram_latency == 42

    def test_loaded_config_runs(self, tmp_path):
        from repro.params import load_config, save_config
        from repro.sim.system import run_simulation
        from repro.sim.trace import Trace

        cfg = cohort_config([10, 20])
        path = str(tmp_path / "cfg.json")
        save_config(cfg, path)
        traces = [Trace.from_arrays([0], [1], [64])] * 2
        stats = run_simulation(load_config(path), traces)
        assert stats.execution_time > 0


class TestPresetConfigs:
    def test_cohort_config_marks_msi_cores_non_critical(self):
        cfg = cohort_config([100, MSI_THETA])
        assert cfg.core_config(0).critical
        assert not cfg.core_config(1).critical

    def test_msi_fcfs_baseline(self):
        cfg = msi_fcfs_config(4)
        assert cfg.arbiter == ArbiterKind.FCFS
        assert all(cfg.core_config(i).is_msi for i in range(4))

    def test_pcc_baseline_routes_via_llc(self):
        cfg = pcc_config(4)
        assert cfg.via_llc_transfers
        assert cfg.arbiter == ArbiterKind.RROF

    def test_pendulum_star_all_timed(self):
        cfg = pendulum_star_config([10, 20, 30])
        assert cfg.arbiter == ArbiterKind.RROF
        assert cfg.thetas == [10, 20, 30]

    def test_pendulum_star_rejects_msi_cores(self):
        with pytest.raises(ValueError):
            pendulum_star_config([10, MSI_THETA])

    def test_pendulum_baseline(self):
        cfg = pendulum_config([True, True, False, False], theta=123)
        assert cfg.arbiter == ArbiterKind.TDM
        # PENDULUM's global timer runs on every core; criticality only
        # affects arbitration.
        assert cfg.thetas == [123, 123, 123, 123]
        assert cfg.core_config(0).critical
        assert not cfg.core_config(3).critical
