"""Crash-containment tests for the sweep runner's parallel path.

These tests really kill worker processes (``SIGKILL`` mid-batch) and
really time jobs out, then assert that the batch survives: completed
results are kept, only the affected jobs are retried, retry budgets are
honoured, and the telemetry counters account for everything.

The runner is pointed at ``mp_context="fork"`` so that monkeypatched
module state (the instrumented ``_execute``) is inherited by workers.
"""

import json
import os
import signal
import time
from dataclasses import replace

import pytest

import repro.runner as runner_mod
from repro.params import cohort_config
from repro.runner import (
    SweepExecutionError,
    SweepJob,
    SweepRunner,
)
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

pytestmark = pytest.mark.skipif(
    not (hasattr(signal, "SIGKILL") and hasattr(signal, "SIGALRM")),
    reason="resilience tests need POSIX signals",
)

#: Smuggled through ``SimConfig.max_cycles`` (position 2 of the worker
#: payload) to mark the job the instrumented ``_execute`` should sabotage.
#: Far above any cycle count these workloads reach, so it never trips
#: the simulation watchdog and the poison job's *result* stays correct.
POISON_MAX_CYCLES = 987_654_321


@pytest.fixture(scope="module")
def traces():
    return splash_traces("fft", 2, scale=0.2, seed=0)


def batch_with_poison(traces):
    """Three innocent jobs plus one poison-marked job (slot 1)."""
    configs = [
        cohort_config([60, 20]),
        replace(cohort_config([80, 25]), max_cycles=POISON_MAX_CYCLES),
        cohort_config([100, 30]),
        cohort_config([120, 35]),
    ]
    return [SweepJob(cfg, tuple(traces)) for cfg in configs]


def is_poison(payload) -> bool:
    return payload[2] == POISON_MAX_CYCLES


def resilient_runner(**kw) -> SweepRunner:
    kw.setdefault("jobs", 2)
    kw.setdefault("cache_dir", None)
    kw.setdefault("mp_context", "fork")
    kw.setdefault("backoff_base", 0.001)
    # These tests exercise the process-pool path; the lock-step default
    # would serve the same-trace batch inline and never hit the pool.
    kw.setdefault("engine", "fast")
    return SweepRunner(**kw)


class TestWorkerDeath:
    def test_sigkilled_worker_does_not_fail_the_batch(
        self, traces, tmp_path, monkeypatch
    ):
        flag = str(tmp_path / "killed-once")
        real_execute = runner_mod._execute

        def kill_once(payload):
            if is_poison(payload) and not os.path.exists(flag):
                open(flag, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_execute(payload)

        monkeypatch.setattr(runner_mod, "_execute", kill_once)
        runner = resilient_runner()
        jobs = batch_with_poison(traces)
        results = runner.run(jobs)

        assert os.path.exists(flag), "the poison job never ran"
        expected = [
            json.loads(json.dumps(
                runner_mod.stats_to_dict(
                    run_simulation(job.config, job.traces)
                )
            ))
            for job in jobs
        ]
        assert results == expected
        assert runner.worker_failures >= 1
        assert runner.job_retries >= 1
        tele = runner.telemetry()
        assert tele["worker_failures"] == runner.worker_failures
        assert tele["job_retries"] == runner.job_retries
        assert tele["backoff_seconds"] == runner.backoff_seconds > 0

    def test_deterministic_killer_exhausts_retry_budget(
        self, traces, monkeypatch
    ):
        real_execute = runner_mod._execute

        def always_kill(payload):
            if is_poison(payload):
                os.kill(os.getpid(), signal.SIGKILL)
            return real_execute(payload)

        monkeypatch.setattr(runner_mod, "_execute", always_kill)
        runner = resilient_runner(max_retries=1)
        with pytest.raises(SweepExecutionError, match="worker process died"):
            runner.run(batch_with_poison(traces))
        assert runner.worker_failures >= 2  # initial attempt + retry


class TestTimeouts:
    def test_timed_out_job_is_retried_and_recovers(
        self, traces, tmp_path, monkeypatch
    ):
        flag = str(tmp_path / "slept-once")
        real_execute = runner_mod._execute

        def hang_once(payload):
            if is_poison(payload) and not os.path.exists(flag):
                open(flag, "w").close()
                time.sleep(60)
            return real_execute(payload)

        monkeypatch.setattr(runner_mod, "_execute", hang_once)
        runner = resilient_runner(timeout=0.5)
        jobs = batch_with_poison(traces)
        results = runner.run(jobs)
        assert all(r["final_cycle"] > 0 for r in results)
        assert runner.job_timeouts >= 1
        assert runner.job_retries >= 1
        assert runner.worker_failures == 0  # pool survived the timeout

    def test_permanently_stuck_job_fails_loudly(self, traces, monkeypatch):
        real_execute = runner_mod._execute

        def always_hang(payload):
            if is_poison(payload):
                time.sleep(60)
            return real_execute(payload)

        monkeypatch.setattr(runner_mod, "_execute", always_hang)
        runner = resilient_runner(timeout=0.3, max_retries=1)
        with pytest.raises(SweepExecutionError, match="timeout"):
            runner.run(batch_with_poison(traces))
        assert runner.job_timeouts == 2  # initial attempt + one retry


class TestSimulationErrorsAreNotRetried:
    def test_deterministic_sim_error_propagates_without_retry(
        self, traces, monkeypatch
    ):
        real_execute = runner_mod._execute

        def broken_sim(payload):
            if is_poison(payload):
                raise ValueError("deterministic simulation defect")
            return real_execute(payload)

        monkeypatch.setattr(runner_mod, "_execute", broken_sim)
        runner = resilient_runner()
        with pytest.raises(ValueError, match="deterministic"):
            runner.run(batch_with_poison(traces))
        assert runner.job_retries == 0
        assert runner.worker_failures == 0


class TestCacheEnvelope:
    """Satellite: cache entries are self-describing and verified on load."""

    def entry_path(self, cache_dir, job):
        return os.path.join(cache_dir, f"{job.digest()}.json")

    def test_renamed_entry_is_a_miss_not_a_wrong_result(
        self, traces, tmp_path
    ):
        cache = str(tmp_path / "sweeps")
        job_a = SweepJob(cohort_config([60, 20]), tuple(traces))
        job_b = SweepJob(cohort_config([90, 20]), tuple(traces))
        SweepRunner(jobs=1, cache_dir=cache).run([job_a])
        # Masquerade A's entry under B's key (e.g. a bad cache sync).
        os.rename(self.entry_path(cache, job_a), self.entry_path(cache, job_b))
        runner = SweepRunner(jobs=1, cache_dir=cache)
        result = runner.run([job_b])[0]
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        direct = run_simulation(job_b.config, job_b.traces)
        assert result["final_cycle"] == direct.final_cycle

    def test_tampered_schema_tag_is_a_miss(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        job = SweepJob(cohort_config([60, 20]), tuple(traces))
        SweepRunner(jobs=1, cache_dir=cache).run([job])
        path = self.entry_path(cache, job)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["digest"] == job.digest()
        assert doc["cache_version"] == runner_mod.CACHE_VERSION
        doc["stats_schema"] = -1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        runner = SweepRunner(jobs=1, cache_dir=cache)
        runner.run([job])
        assert (runner.cache_hits, runner.cache_misses) == (0, 1)

    def test_intact_entry_is_a_hit(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        job = SweepJob(cohort_config([60, 20]), tuple(traces))
        first = SweepRunner(jobs=1, cache_dir=cache).run([job])[0]
        runner = SweepRunner(jobs=1, cache_dir=cache)
        assert runner.run([job])[0] == first
        assert (runner.cache_hits, runner.cache_misses) == (1, 0)
