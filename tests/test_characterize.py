"""Unit tests for workload characterisation (repro.workloads.characterize)."""

import pytest

from repro.workloads import (
    benchmark_names,
    characterize,
    characterize_suite,
    suite_table,
)

from conftest import t


class TestCharacterize:
    def test_private_only(self):
        traces = [t([(0, "R", 1), (0, "W", 1)]), t([(0, "R", 2)])]
        profile = characterize(traces, "x")
        assert profile.total_accesses == 3
        assert profile.shared_lines == 0
        assert profile.sharing_fraction == 0.0

    def test_read_sharing_not_write_shared(self):
        traces = [t([(0, "R", 1)]), t([(0, "R", 1)])]
        profile = characterize(traces)
        assert profile.shared_lines == 1
        assert profile.write_shared_lines == 0

    def test_producer_consumer_is_write_shared(self):
        traces = [t([(0, "W", 1)]), t([(0, "R", 1)])]
        profile = characterize(traces)
        assert profile.write_shared_lines == 1

    def test_write_write_sharing(self):
        traces = [t([(0, "W", 1)]), t([(0, "W", 1)])]
        profile = characterize(traces)
        assert profile.write_shared_lines == 1

    def test_single_writer_no_readers_not_write_shared(self):
        # Both threads touch the line, but only one ever writes AND reads it.
        traces = [t([(0, "W", 1), (0, "R", 1)]), t([(0, "W", 2)])]
        profile = characterize(traces)
        assert profile.shared_lines == 0

    def test_accesses_per_line(self):
        traces = [t([(0, "R", 1), (0, "R", 1), (0, "R", 2)])]
        profile = characterize(traces)
        assert profile.accesses_per_line == pytest.approx(1.5)

    def test_empty(self):
        from repro.sim.trace import Trace

        profile = characterize([Trace()])
        assert profile.total_accesses == 0
        assert profile.accesses_per_line == 0.0


class TestSuite:
    def test_profiles_every_benchmark(self):
        profiles = characterize_suite(scale=0.4)
        assert [p.name for p in profiles] == benchmark_names()
        for p in profiles:
            assert p.total_accesses > 0
            assert p.shared_lines > 0, p.name  # every benchmark shares

    def test_table_renders(self):
        profiles = characterize_suite(scale=0.4)
        out = suite_table(profiles)
        assert "write-shared" in out
        for name in benchmark_names():
            assert name in out

    def test_known_structure_properties(self):
        """Spot-check benchmark-specific structure claims."""
        profiles = {p.name: p for p in characterize_suite(scale=1.0)}
        # raytrace's BVH is read-only: no write-shared lines.
        assert profiles["raytrace"].write_shared_lines == 0
        # fft's transpose writes stripes read by everyone.
        assert profiles["fft"].write_shared_lines > 0
        # ocean's stencil has the strongest spatial locality.
        assert profiles["ocean"].accesses_per_line == max(
            p.accesses_per_line for p in profiles.values()
        )
