"""Tests for the open-loop load generator (repro.serve.loadgen).

Determinism and accounting are tested against stdlib stub HTTP servers
(no subprocesses, no real fleet): a 429-only server proves backpressure
never stalls the arrival clock, and an accepting server proves the
submit → batched-poll → e2e accounting loop closes.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.loadgen import (
    THETA_GRID,
    LoadGenerator,
    arrival_schedule,
    theta_population,
)


class TestArrivalSchedule:
    def test_deterministic_under_fixed_seed(self):
        a = arrival_schedule(50.0, 5.0, seed=11)
        b = arrival_schedule(50.0, 5.0, seed=11)
        assert a == b

    def test_different_seeds_differ(self):
        assert arrival_schedule(50.0, 5.0, seed=1) != arrival_schedule(
            50.0, 5.0, seed=2
        )

    def test_rate_is_approximately_honoured(self):
        # 2000 expected arrivals: the Poisson count is within ±10% at
        # this sample size for any reasonable seed.
        offsets = arrival_schedule(200.0, 10.0, seed=3)
        assert 1800 <= len(offsets) <= 2200
        assert all(0 <= t < 10.0 for t in offsets)
        assert offsets == sorted(offsets)

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ValueError):
            arrival_schedule(0.0, 1.0)
        with pytest.raises(ValueError):
            arrival_schedule(1.0, 0.0)


class TestThetaPopulation:
    def test_specs_are_distinct_and_reproducible(self):
        pop = theta_population(16)
        again = theta_population(16)
        assert [s.to_dict() for s in pop] == [s.to_dict() for s in again]
        assert len({s.spec_key() for s in pop}) == 16
        for spec in pop:
            assert spec.benchmark == "fft"
            assert all(t in THETA_GRID for t in spec.thetas)

    def test_rejects_impossible_sizes(self):
        with pytest.raises(ValueError):
            theta_population(0)
        with pytest.raises(ValueError):
            theta_population(10_000)


class _StubHandler(BaseHTTPRequestHandler):
    """Minimal serve-shaped endpoint; subclasses set the behaviour."""

    def _reply(self, status, doc, extra=None):
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


def _serve(handler_cls):
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler_cls)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


class TestLoadGenerator429Accounting:
    def test_backpressure_is_counted_but_never_slept_on(self):
        class Always429(_StubHandler):
            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length", 0))
                )
                self._reply(
                    429,
                    {"error": "full", "retry_after": 30.0},
                    {"Retry-After": "30"},
                )

        server = _serve(Always429)
        try:
            gen = LoadGenerator(
                "127.0.0.1", server.server_address[1],
                rate=40.0, duration=1.0,
                population=theta_population(4), seed=5,
                workers=8, drain_timeout=1.0,
            )
            t0 = time.monotonic()
            report = gen.run()
            elapsed = time.monotonic() - t0
        finally:
            server.shutdown()
        assert report.offered > 0
        assert report.rejected_429 == report.offered
        assert report.accepted == report.completed == 0
        assert report.errors == 0
        assert report.ratio_429 == 1.0
        # The arrival clock never sleeps on a 429: had any worker
        # honoured the 30s Retry-After hint even once, the run could
        # not finish in a few seconds.
        assert elapsed < 5.0

    def test_unreachable_endpoint_counts_errors_not_429(self):
        from repro.serve.fleet import free_port

        gen = LoadGenerator(
            "127.0.0.1", free_port(),
            rate=20.0, duration=0.5,
            population=theta_population(2), seed=5,
            workers=4, drain_timeout=0.5,
        )
        report = gen.run()
        assert report.errors == report.offered > 0
        assert report.rejected_429 == 0


class TestLoadGeneratorCompletion:
    def test_accepted_jobs_are_polled_to_completion(self):
        jobs = {}
        lock = threading.Lock()

        class Accepting(_StubHandler):
            def do_POST(self):
                raw = self.rfile.read(
                    int(self.headers.get("Content-Length", 0))
                )
                doc = json.loads(raw)
                if self.path == "/jobs/poll":
                    with lock:
                        known = {
                            jid: {"id": jid, "status": "done"}
                            for jid in doc["ids"] if jid in jobs
                        }
                        unknown = [
                            jid for jid in doc["ids"] if jid not in jobs
                        ]
                    self._reply(
                        200, {"jobs": known, "unknown": unknown}
                    )
                    return
                with lock:
                    job_id = f"job-{len(jobs)}"
                    jobs[job_id] = doc
                self._reply(202, {"jobs": [{"id": job_id}]})

        server = _serve(Accepting)
        try:
            gen = LoadGenerator(
                "127.0.0.1", server.server_address[1],
                rate=30.0, duration=1.0,
                population=theta_population(4), seed=9,
                workers=8, drain_timeout=5.0,
            )
            report = gen.run()
        finally:
            server.shutdown()
        assert report.offered > 0
        assert report.accepted == report.offered
        assert report.completed == report.accepted
        assert report.lost == report.failed == report.pending_at_end == 0
        doc = report.to_dict()
        assert doc["sustained_rps"] > 0
        assert doc["e2e"]["p99_ms"] >= doc["e2e"]["p50_ms"] >= 0
        assert doc["histograms_us"]["e2e"]["total"] == report.completed
