"""Unit + property tests for the CoHoRT timer hardware (Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MSI_THETA
from repro.sim.timer import (
    MAX_THETA,
    TIMER_BITS,
    CountdownCounter,
    ModeSwitchLUT,
    TimerAction,
    invalidation_cycle,
    per_line_counter_overhead,
    validate_theta,
)


class TestValidateTheta:
    @pytest.mark.parametrize("theta", [1, 5, MAX_THETA, MSI_THETA])
    def test_accepts_valid(self, theta):
        validate_theta(theta)

    @pytest.mark.parametrize("theta", [0, -2, MAX_THETA + 1])
    def test_rejects_invalid(self, theta):
        with pytest.raises(ValueError):
            validate_theta(theta)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            validate_theta(True)


class TestCountdownCounter:
    def test_loads_threshold(self):
        c = CountdownCounter(5)
        c.load()
        assert c.count == 5

    def test_tick_before_load_raises(self):
        with pytest.raises(RuntimeError):
            CountdownCounter(5).tick(False)

    def test_counts_down_and_replenishes(self):
        c = CountdownCounter(3)
        c.load()
        assert c.tick(False) == TimerAction.NONE        # 2
        assert c.tick(False) == TimerAction.NONE        # 1
        assert c.tick(False) == TimerAction.REPLENISH   # 0 -> reload
        assert c.count == 3

    def test_invalidates_on_pending_at_zero(self):
        c = CountdownCounter(2)
        c.load()
        assert c.tick(True) == TimerAction.NONE
        assert c.tick(True) == TimerAction.INVALIDATE

    def test_pending_before_expiry_does_nothing(self):
        c = CountdownCounter(3)
        c.load()
        assert c.tick(True) == TimerAction.NONE

    def test_msi_special_value_disables_enable(self):
        c = CountdownCounter(MSI_THETA)
        assert not c.enabled
        c.load()
        assert c.tick(False) == TimerAction.NONE
        assert c.tick(True) == TimerAction.INVALIDATE

    def test_msi_invalidates_exactly_on_pending(self):
        c = CountdownCounter(MSI_THETA)
        c.load()
        for _ in range(10):
            assert c.tick(False) == TimerAction.NONE
        assert c.tick(True) == TimerAction.INVALIDATE

    def test_theta_one_invalidates_first_pending_tick(self):
        c = CountdownCounter(1)
        c.load()
        assert c.tick(True) == TimerAction.INVALIDATE

    def test_set_theta_reprograms(self):
        c = CountdownCounter(4)
        c.set_theta(MSI_THETA)
        assert not c.enabled


class TestInvalidationCycle:
    def test_pending_at_fill(self):
        assert invalidation_cycle(100, 10, 100) == 110

    def test_pending_mid_window(self):
        assert invalidation_cycle(100, 10, 105) == 110

    def test_pending_after_replenishes(self):
        assert invalidation_cycle(100, 10, 125) == 130

    def test_pending_exactly_on_expiry(self):
        assert invalidation_cycle(100, 10, 110) == 110

    def test_pending_before_fill_clamps(self):
        assert invalidation_cycle(100, 10, 50) == 110

    def test_msi_is_immediate(self):
        assert invalidation_cycle(100, MSI_THETA, 105) == 105
        assert invalidation_cycle(100, MSI_THETA, 50) == 100

    @given(
        fill=st.integers(0, 10_000),
        theta=st.integers(1, 200),
        delay=st.integers(0, 2_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_circuit_model(self, fill, theta, delay):
        """The closed form equals the cycle-by-cycle Figure-3 circuit."""
        pending_at = fill + delay
        expected = invalidation_cycle(fill, theta, pending_at)

        counter = CountdownCounter(theta)
        counter.load()  # the line fills at `fill`
        cycle = fill
        while True:
            cycle += 1
            action = counter.tick(pending_inv=cycle >= pending_at)
            if action == TimerAction.INVALIDATE:
                break
            assert cycle < fill + delay + 2 * theta + 2, "circuit never fired"
        assert cycle == expected

    @given(
        fill=st.integers(0, 1000),
        theta=st.integers(1, 300),
        delay=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_invalidation_is_after_pending_and_within_one_period(
        self, fill, theta, delay
    ):
        pending = fill + delay
        inv = invalidation_cycle(fill, theta, pending)
        assert inv >= pending
        assert inv > fill
        assert inv - pending < theta + 1
        assert (inv - fill) % theta == 0


class TestModeSwitchLUT:
    def test_program_and_lookup(self):
        lut = ModeSwitchLUT({1: 300, 2: MSI_THETA})
        assert lut.lookup(1) == 300
        assert lut.lookup(2) == MSI_THETA

    def test_missing_mode_raises(self):
        with pytest.raises(KeyError):
            ModeSwitchLUT().lookup(1)

    def test_rejects_mode_zero(self):
        with pytest.raises(ValueError):
            ModeSwitchLUT().program(0, 10)

    def test_rejects_invalid_theta(self):
        with pytest.raises(ValueError):
            ModeSwitchLUT().program(1, 0)

    def test_contains_and_modes(self):
        lut = ModeSwitchLUT({2: 10, 1: 20})
        assert 1 in lut and 3 not in lut
        assert list(lut.modes) == [1, 2]

    def test_storage_cost_matches_paper(self):
        """Five criticality levels cost 80 bits (paper, Section III-B)."""
        lut = ModeSwitchLUT({m: 10 for m in range(1, 6)})
        assert lut.storage_bits() == 80


class TestOverheads:
    def test_counter_overhead_is_about_three_percent(self):
        """16 bits per 64-byte line ≈ 3% (paper, Section III-B)."""
        assert per_line_counter_overhead(64) == pytest.approx(0.03125)

    def test_timer_bits(self):
        assert TIMER_BITS == 16
        assert MAX_THETA == 65535
