"""Run-manifest determinism, fingerprinting and schema validation."""

import hashlib
import json
import math

import pytest

from repro.obs import classify, validate_document
from repro.params import cohort_config
from repro.qa import (
    RunManifest,
    artifact_ref,
    build_manifest,
    config_fingerprint,
    load_manifest,
    stats_metrics,
    write_manifest,
)


def make_manifest(**overrides):
    fields = dict(
        kind="simulate",
        label="unit",
        engine="fast",
        seed=0,
        config_fingerprint="c" * 64,
        traces=["a" * 40, "b" * 40],
        metrics={"final_cycle": 6443, "hit_rate": 0.87},
        artifacts=[{"path": "out.json", "sha256": "d" * 64, "bytes": 12}],
        environment={"host": "ci"},
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRoundTrip:
    def test_write_load_rewrite_is_byte_identical(self, tmp_path):
        path = tmp_path / "m.json"
        write_manifest(make_manifest(), str(path))
        first = path.read_bytes()
        write_manifest(load_manifest(str(path)), str(path))
        assert path.read_bytes() == first

    def test_load_returns_equal_manifest(self, tmp_path):
        manifest = make_manifest()
        path = tmp_path / "m.json"
        write_manifest(manifest, str(path))
        assert load_manifest(str(path)).to_dict() == manifest.to_dict()

    def test_tampered_file_is_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        write_manifest(make_manifest(), str(path))
        doc = json.loads(path.read_text())
        doc["metrics"]["final_cycle"] = 9999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_manifest(str(path))

    def test_missing_required_field_is_rejected(self):
        doc = make_manifest().to_dict()
        del doc["kind"]
        with pytest.raises(ValueError, match="invalid run manifest"):
            RunManifest.from_dict(doc)

    def test_wrong_schema_tag_is_rejected(self):
        doc = make_manifest().to_dict()
        doc["schema"] = "something/else"
        with pytest.raises(ValueError, match="not a run manifest"):
            RunManifest.from_dict(doc)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert make_manifest().fingerprint() == make_manifest().fingerprint()

    def test_metric_change_changes_fingerprint(self):
        a = make_manifest()
        b = make_manifest(metrics={"final_cycle": 6444, "hit_rate": 0.87})
        assert a.fingerprint() != b.fingerprint()

    def test_environment_is_not_fingerprinted(self):
        a = make_manifest(environment={"host": "ci"})
        b = make_manifest(environment={"host": "laptop", "extra": 1})
        assert a.fingerprint() == b.fingerprint()


class TestSanitisation:
    def test_non_finite_metrics_become_none(self):
        manifest = make_manifest(
            metrics={"nan": float("nan"), "inf": math.inf, "ok": 1.5}
        )
        doc = manifest.to_dict()
        assert doc["metrics"] == {"nan": None, "inf": None, "ok": 1.5}

    def test_written_json_is_strict(self, tmp_path):
        path = tmp_path / "m.json"
        write_manifest(
            make_manifest(metrics={"nan": float("nan")}), str(path)
        )
        # strict parsing: would raise on NaN/Infinity literals
        json.loads(path.read_text(), parse_constant=_reject_constant)


def _reject_constant(name):
    raise AssertionError(f"non-strict JSON constant {name} in manifest")


class TestSchemaAndClassify:
    def test_manifest_document_validates(self):
        assert validate_document(make_manifest().to_dict()) == []

    def test_broken_document_reports_errors(self):
        doc = make_manifest().to_dict()
        doc["artifacts"] = [{"path": "x"}]  # missing sha256/bytes
        assert validate_document(doc)

    def test_classify_recognises_run_manifest(self):
        assert classify(make_manifest().to_dict()) == "run_manifest"


class TestBuildingBlocks:
    def test_artifact_ref_digests_content(self, tmp_path):
        payload = b"hello manifest"
        target = tmp_path / "sub" / "art.bin"
        target.parent.mkdir()
        target.write_bytes(payload)
        ref = artifact_ref(str(target), base_dir=str(tmp_path))
        assert ref == {
            "path": "sub/art.bin",
            "sha256": hashlib.sha256(payload).hexdigest(),
            "bytes": len(payload),
        }

    def test_config_fingerprint_tracks_thetas(self):
        a = config_fingerprint(cohort_config([100, 20, 20, 20]))
        b = config_fingerprint(cohort_config([50, 20, 20, 20]))
        assert a != b
        assert a == config_fingerprint(cohort_config([100, 20, 20, 20]))

    def test_stats_metrics_aggregates_cores(self):
        stats = {
            "final_cycle": 100,
            "execution_time": 101,
            "bus_utilization": 0.5,
            "timer_expiries": 3,
            "writebacks": 2,
            "mode_switches": 0,
            "cores": [
                {"hits": 6, "misses": 2, "max_request_latency": 40,
                 "total_memory_latency": 90},
                {"hits": 2, "misses": 0, "max_request_latency": 10,
                 "total_memory_latency": 20},
            ],
        }
        metrics = stats_metrics(stats)
        assert metrics["hits"] == 8
        assert metrics["misses"] == 2
        assert metrics["hit_rate"] == 0.8
        assert metrics["max_request_latency"] == 40
        assert metrics["total_memory_latency"] == 110

    def test_stats_metrics_empty_run_has_no_hit_rate(self):
        metrics = stats_metrics({"cores": []})
        assert metrics["hit_rate"] is None

    def test_build_manifest_merges_stats_and_metrics(self):
        manifest = build_manifest(
            "simulate", "x",
            stats={"final_cycle": 7, "cores": []},
            metrics={"extra": 1, "final_cycle": 8},
        )
        # explicit metrics win over flattened stats
        assert manifest.metrics["final_cycle"] == 8
        assert manifest.metrics["extra"] == 1
