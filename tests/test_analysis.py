"""Unit + property tests for the timing analysis (repro.analysis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MSI_THETA, CacheGeometry
from repro.analysis.cache_analysis import IsolationProfile, build_profiles
from repro.analysis.wcl import (
    wcl_miss,
    wcl_miss_all,
    wcl_miss_msi_rrof,
    wcl_miss_pcc,
    wcl_miss_pendulum,
    wcl_miss_shared_wb,
)
from repro.sim.timer import MAX_THETA

from conftest import t

SW = 54


class TestEquation1:
    def test_all_msi_reduces_to_n_slots(self):
        thetas = [MSI_THETA] * 4
        assert wcl_miss(thetas, 0, SW) == 4 * SW

    def test_all_timed_matches_formula(self):
        thetas = [100, 200, 300, 400]
        # SW + 3*SW + sum over others of (theta_j + SW)
        expected = SW + 3 * SW + (200 + SW) + (300 + SW) + (400 + SW)
        assert wcl_miss(thetas, 0, SW) == expected

    def test_own_timer_excluded(self):
        a = wcl_miss([10, 50], 0, SW)
        b = wcl_miss([99999 % MAX_THETA, 50], 0, SW)
        assert a == b  # core 0's own theta does not matter

    def test_mixed_heterogeneous(self):
        thetas = [100, MSI_THETA, 50, MSI_THETA]
        # Both timed co-runners contribute; the MSI one contributes nothing.
        expected = SW + 3 * SW + (100 + SW) + (50 + SW)
        assert wcl_miss(thetas, 1, SW) == expected

    def test_wcl_miss_all_matches_individual(self):
        thetas = [10, MSI_THETA, 30]
        assert wcl_miss_all(thetas, SW) == [wcl_miss(thetas, i, SW) for i in range(3)]

    def test_invalid_core_id(self):
        with pytest.raises(IndexError):
            wcl_miss([10, 20], 5, SW)

    def test_invalid_slot_width(self):
        with pytest.raises(ValueError):
            wcl_miss([10], 0, 0)

    def test_shared_wb_adds_one_slot_per_core(self):
        thetas = [10, 20, 30]
        assert wcl_miss_shared_wb(thetas, 0, SW) == wcl_miss(thetas, 0, SW) + 3 * SW

    @given(
        thetas=st.lists(
            st.sampled_from([MSI_THETA, 1, 7, 100, 5000]), min_size=2, max_size=6
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_other_timers(self, thetas):
        """Raising any co-runner's timer never tightens my bound."""
        base = wcl_miss(thetas, 0, SW)
        for j in range(1, len(thetas)):
            bumped = list(thetas)
            bumped[j] = 6000 if bumped[j] == MSI_THETA else bumped[j] + 100
            assert wcl_miss(bumped, 0, SW) >= base


class TestNonPerfectBound:
    def test_extends_equation_1(self):
        from repro.analysis.wcl import wcl_miss_nonperfect

        thetas = [100, 50, MSI_THETA, 20]
        base = wcl_miss(thetas, 0, SW)
        extended = wcl_miss_nonperfect(thetas, 0, SW, dram_latency=100)
        assert extended == base + 4 * (100 + SW + SW)

    def test_zero_dram_latency_still_adds_llc_margin(self):
        from repro.analysis.wcl import wcl_miss_nonperfect

        thetas = [10, 10]
        assert wcl_miss_nonperfect(thetas, 0, SW, 0) > wcl_miss(thetas, 0, SW)

    def test_validates_dram_latency(self):
        from repro.analysis.wcl import wcl_miss_nonperfect

        with pytest.raises(ValueError):
            wcl_miss_nonperfect([10, 10], 0, SW, -1)


class TestBaselineBounds:
    def test_pcc_bound(self):
        assert wcl_miss_pcc(4, SW) == 8 * SW

    def test_msi_rrof_bound(self):
        assert wcl_miss_msi_rrof(4, SW) == 4 * SW

    def test_pendulum_cr_bound(self):
        # 4 cores, 2 critical: all three co-runners hold the global timer;
        # one TDM period each for the broadcast and the final data slot.
        period = 2 * SW
        expected = 2 * period + 3 * (300 + period + SW) + SW
        assert wcl_miss_pendulum(4, 2, 300, SW, critical=True) == expected

    def test_pendulum_ncr_unbounded(self):
        assert math.isinf(wcl_miss_pendulum(4, 2, 300, SW, critical=False))

    def test_pendulum_validates(self):
        with pytest.raises(ValueError):
            wcl_miss_pendulum(2, 0, 300, SW)
        with pytest.raises(ValueError):
            wcl_miss_pendulum(2, 2, 0, SW)
        with pytest.raises(ValueError):
            wcl_miss_pendulum(1, 2, 300, SW)

    def test_pendulum_worse_than_cohort_for_same_timer(self):
        """PENDULUM's pessimism: TDM re-alignment around every handover."""
        thetas = [300] * 4
        assert wcl_miss_pendulum(4, 4, 300, SW) > wcl_miss(thetas, 0, SW)


def profile_of(trace, sets=4):
    geom = CacheGeometry(size_bytes=sets * 64, line_bytes=64, ways=1)
    return IsolationProfile(trace, geom, hit_latency=1)


class TestIsolationProfile:
    def test_msi_guarantees_nothing(self):
        p = profile_of(t([(0, "R", 1), (0, "R", 1)]))
        counts = p.analyze(MSI_THETA, 100)
        assert counts.m_hit == 0
        assert counts.m_miss == 2

    def test_immediate_reuse_guaranteed_with_small_timer(self):
        p = profile_of(t([(0, "R", 1), (0, "R", 1), (0, "R", 1)]))
        counts = p.analyze(theta=5, wcl=100)
        assert counts.m_hit == 2

    def test_reuse_outside_window_not_guaranteed(self):
        p = profile_of(t([(0, "R", 1), (500, "R", 1)]))
        counts = p.analyze(theta=100, wcl=54)
        assert counts.m_hit == 0

    def test_store_to_shared_counts_as_miss(self):
        p = profile_of(t([(0, "R", 1), (0, "W", 1), (0, "W", 1)]))
        counts = p.analyze(theta=50, wcl=54)
        # load miss, store upgrade (miss), then a guaranteed store hit.
        assert counts.m_hit == 1
        assert counts.m_miss == 2

    def test_conflicting_lines_never_guaranteed(self):
        p = profile_of(t([(0, "R", 1), (0, "R", 5), (0, "R", 1)]), sets=4)
        counts = p.analyze(theta=10_000, wcl=54)
        assert counts.m_hit == 0  # lines 1 and 5 conflict in a 4-set cache

    def test_pessimistic_time_charging(self):
        """A miss between fill and reuse is charged the WCL, shrinking the
        effective window."""
        trace = t([(0, "R", 1), (0, "R", 2), (0, "R", 1)])
        p = profile_of(trace)
        # With wcl=54 the intervening miss costs 54: reuse at ~55 < 60.
        assert p.analyze(theta=60, wcl=54).m_hit == 1
        # With wcl=500 the same reuse lands outside the 60-cycle window.
        assert p.analyze(theta=60, wcl=500).m_hit == 0

    def test_flags_match_counts(self):
        trace = t([(0, "R", 1), (1, "R", 1), (3, "W", 1), (0, "W", 1)])
        p = profile_of(trace)
        counts = p.analyze(theta=40, wcl=54)
        flags = p.analyze_flags(theta=40, wcl=54)
        assert int(flags.sum()) == counts.m_hit

    def test_analyze_validates(self):
        p = profile_of(t([(0, "R", 1)]))
        with pytest.raises(ValueError):
            p.analyze(theta=0, wcl=54)
        with pytest.raises(ValueError):
            p.analyze(theta=10, wcl=0)

    def test_rejects_set_associative_geometry(self):
        geom = CacheGeometry(size_bytes=8 * 64, line_bytes=64, ways=2)
        with pytest.raises(ValueError):
            IsolationProfile(t([(0, "R", 1)]), geom)

    def test_build_profiles(self):
        traces = [t([(0, "R", 1)]), t([(0, "W", 2)])]
        profiles = build_profiles(traces, CacheGeometry())
        assert len(profiles) == 2
        assert profiles[0].num_accesses == 1


class TestThetaSat:
    def test_covers_all_isolation_hits(self):
        trace = t([(0, "R", 1), (10, "R", 1), (100, "R", 1)])
        p = profile_of(trace)
        sat = p.theta_sat(wcl=54)
        counts = p.analyze(theta=sat, wcl=54)
        assert counts.m_hit == 2  # both reuses guaranteed at saturation

    def test_no_hits_gives_minimum(self):
        p = profile_of(t([(0, "R", 1), (0, "R", 2)]))
        assert p.theta_sat(54) >= 1

    def test_clamped_to_register_width(self):
        trace = t([(0, "R", 1), (100_000, "R", 1)])
        p = profile_of(trace)
        assert p.theta_sat(54) <= MAX_THETA

    def test_saturation_is_a_fixed_point(self):
        trace = t([(0, "R", 1), (5, "W", 1), (9, "R", 1), (30, "R", 2), (2, "R", 1)])
        p = profile_of(trace)
        sat = p.theta_sat(54)
        at_sat = p.analyze(sat, 54).m_hit
        assert p.analyze(min(sat * 2, MAX_THETA), 54).m_hit == at_sat


@st.composite
def analysis_case(draw):
    n = draw(st.integers(1, 40))
    entries = []
    for _ in range(n):
        gap = draw(st.integers(0, 30))
        op = draw(st.sampled_from(["R", "W"]))
        line = draw(st.integers(0, 9))
        entries.append((gap, op, line))
    return t(entries)


class TestAnalysisProperties:
    @given(trace=analysis_case(), wcl=st.sampled_from([54, 216, 700]))
    @settings(max_examples=60, deadline=None)
    def test_hit_curve_monotone_in_theta(self, trace, wcl):
        p = profile_of(trace, sets=4)
        thetas = [1, 3, 10, 40, 150, 600, 3000]
        hits = [p.analyze(th, wcl).m_hit for th in thetas]
        assert hits == sorted(hits)

    @given(trace=analysis_case(), theta=st.sampled_from([5, 50, 400]))
    @settings(max_examples=60, deadline=None)
    def test_hits_antitone_in_wcl(self, trace, theta):
        """A larger per-miss charge can only lose guaranteed hits."""
        p = profile_of(trace, sets=4)
        hits = [p.analyze(theta, w).m_hit for w in [10, 100, 1000]]
        assert hits == sorted(hits, reverse=True)

    @given(trace=analysis_case())
    @settings(max_examples=40, deadline=None)
    def test_counts_partition_accesses(self, trace):
        p = profile_of(trace, sets=4)
        counts = p.analyze(25, 54)
        assert counts.m_hit + counts.m_miss == len(trace)
        assert 0.0 <= counts.hit_rate <= 1.0
