"""Tests for the one-shot reproduction driver (repro.experiments.summary)."""

import pytest

from repro.opt import GAConfig
from repro.experiments import (
    ReproductionReport,
    quick_sanity_table,
    run_everything,
)

TINY_GA = GAConfig(population_size=6, generations=3, seed=0)


@pytest.fixture(scope="module")
def report():
    return run_everything(
        suite=["water"], scale=0.3, seed=0, ga_config=TINY_GA
    )


class TestRunEverything:
    def test_contains_every_artifact_section(self, report):
        text = report.render()
        assert "Table I" in text
        assert "Figure 5 (all_cr)" in text
        assert "Figure 5 (2cr_2ncr)" in text
        assert "Figure 5 (1cr_3ncr)" in text
        assert "Figure 6 (all_cr)" in text
        assert "Table II" in text and "Figure 7" in text

    def test_metrics_populated(self, report):
        assert "fig5_all_cr_water_pend_ratio" in report.metrics
        assert "fig6_all_cr_cohort" in report.metrics
        assert "fig7_stages_recovered" in report.metrics
        assert report.wall_seconds > 0

    def test_sanity_table_shapes(self, report):
        table = quick_sanity_table(report)
        assert "shape holds" in table
        # With the tiny GA at tiny scale the shapes should still hold.
        assert "no" not in [
            cell.strip()
            for line in table.splitlines()[2:]
            for cell in line.split("|")[-1:]
        ]

    def test_report_add_and_render(self):
        r = ReproductionReport()
        r.add("Section", "body text")
        out = r.render()
        assert "Section" in out and "body text" in out
