"""Tests for trace export, schema validation, reports (repro.obs)."""

import json

import pytest

from repro.params import cohort_config
from repro.obs import (
    RUN_REPORT_SCHEMA,
    SWEEP_METRICS_SCHEMA,
    GAGenerationLog,
    Telemetry,
    classify,
    load_jsonl,
    summarise,
    validate_trace_events,
)
from repro.obs.schema import validate
from repro.obs.validate import main as validate_main, validate_file
from repro.sim.system import System
from repro.workloads import splash_traces

from conftest import t


@pytest.fixture(scope="module")
def run():
    config = cohort_config([60] * 4)
    traces = splash_traces("ocean", 4, scale=0.2)
    system = System(config, traces)
    telemetry = Telemetry.attach(system, sample_every=200)
    stats = system.run()
    return system, stats, telemetry


class TestTraceExport:
    def test_document_passes_schema(self, run):
        _, _, telemetry = run
        assert validate_trace_events(telemetry.trace_events()) == []

    def test_document_is_json_serialisable(self, run):
        _, _, telemetry = run
        json.dumps(telemetry.trace_events())

    def test_one_track_per_core(self, run):
        _, _, telemetry = run
        doc = telemetry.trace_events()
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names == {f"core {i}" for i in range(4)}

    def test_request_slices_cover_every_span(self, run):
        _, _, telemetry = run
        doc = telemetry.trace_events()
        requests = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "request"
        ]
        assert len(requests) == len(telemetry.spans.completed)
        for ev in requests:
            assert ev["dur"] == ev["args"]["latency"]

    def test_phase_slices_nest_inside_requests(self, run):
        _, _, telemetry = run
        doc = telemetry.trace_events()
        phases = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "phase"
        ]
        assert phases
        spans = {
            (s.core, s.req_id): s for s in telemetry.spans.completed
        }
        for ev in phases:
            span = spans[(ev["tid"], ev["args"]["req_id"])]
            assert span.issue_cycle <= ev["ts"]
            assert ev["ts"] + ev["dur"] <= span.complete_cycle

    def test_timer_expiries_are_thread_instants(self, run):
        _, stats, telemetry = run
        doc = telemetry.trace_events()
        instants = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "i" and ev["name"] == "timer_expiry"
        ]
        assert len(instants) == stats.timer_expiries
        assert all(ev["s"] == "t" and "tid" in ev for ev in instants)

    def test_counter_tracks_emitted(self, run):
        _, _, telemetry = run
        doc = telemetry.trace_events()
        counters = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "C"
        }
        assert counters == {
            "bus_utilization", "miss_rate", "protected_lines",
            "wb_queue_depth",
        }

    def test_write_trace_round_trips(self, run, tmp_path):
        _, _, telemetry = run
        path = tmp_path / "run.trace.json"
        telemetry.write_trace(str(path))
        doc = json.loads(path.read_text())
        assert validate_trace_events(doc) == []


class TestSchemaValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_trace_events({}) != []

    def test_rejects_wrong_root_type(self):
        errors = validate_trace_events([1, 2])
        assert errors and "expected type object" in errors[0]

    def test_rejects_bad_phase_letter(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 0, "name": "x"},
        ]}
        assert any("enum" in e for e in validate_trace_events(doc))

    def test_rejects_complete_event_without_duration(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 1},
        ]}
        assert any("oneOf" in e for e in validate_trace_events(doc))

    def test_rejects_negative_timestamp(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": -5, "dur": 1},
        ]}
        assert any("minimum" in e for e in validate_trace_events(doc))

    def test_booleans_are_not_integers(self):
        assert validate(True, {"type": "integer"}) != []
        assert validate(3, {"type": "integer"}) == []

    def test_unsupported_external_ref_raises(self):
        with pytest.raises(ValueError):
            validate({}, {"$ref": "http://elsewhere/schema"})

    def test_validate_file_cli(self, run, tmp_path, capsys):
        _, _, telemetry = run
        good = tmp_path / "good.json"
        telemetry.write_trace(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        missing = tmp_path / "missing.json"
        assert validate_main([str(good)]) == 0
        assert validate_main([str(bad)]) == 1
        assert validate_file(str(missing)) != []
        assert validate_main([]) == 2


class TestRunReport:
    def test_report_shape_and_classification(self, run):
        _, stats, telemetry = run
        report = telemetry.run_report()
        json.dumps(report)
        assert report["schema"] == RUN_REPORT_SCHEMA
        assert classify(report) == "run_report"
        assert report["final_cycle"] == stats.final_cycle
        assert len(report["cores"]) == 4
        assert report["spans_completed"] == sum(
            c.misses for c in stats.cores
        )

    def test_summarise_run_report(self, run):
        _, _, telemetry = run
        out = summarise(telemetry.run_report())
        assert "run report" in out and "WCML=" in out

    def test_summarise_trace_events(self, run):
        _, _, telemetry = run
        out = summarise(telemetry.trace_events())
        assert "trace-event document" in out and "4 core tracks" in out

    def test_classify_sweep_and_unknown(self):
        assert classify({"schema": SWEEP_METRICS_SCHEMA, "runner": {}}) \
            == "sweep_metrics"
        assert classify({"what": "ever"}) == "unknown"
        assert classify(42) == "unknown"
        assert "unrecognised" in summarise({"what": "ever"})


class TestGALog:
    def _log(self):
        from repro.opt.ga import GAConfig, GeneticAlgorithm

        ga = GeneticAlgorithm(
            [(1, 64)] * 3,
            lambda genes: float(sum(genes)),
            GAConfig(population_size=8, generations=5, seed=1),
        )
        log = GAGenerationLog()
        ga.run(on_generation=log)
        return log

    def test_records_one_row_per_generation(self):
        log = self._log()
        assert len(log.records) == 6  # initial population + 5 generations
        assert [r["generation"] for r in log.records] == list(range(6))
        for row in log.records:
            assert row["best_fitness"] is not None
            assert row["mean_fitness"] >= row["best_fitness"]
            assert 0.0 <= row["diversity"] <= 1.0
            assert row["wall_seconds"] >= 0.0
            assert 0.0 <= row["cache_hit_rate"] <= 1.0

    def test_best_fitness_monotone(self):
        log = self._log()
        best = [r["best_fitness"] for r in log.records]
        assert all(b2 <= b1 for b1, b2 in zip(best, best[1:]))

    def test_infinite_fitness_becomes_null(self, tmp_path):
        from repro.opt.ga import GAConfig, GeneticAlgorithm

        ga = GeneticAlgorithm(
            [(1, 8)],
            lambda genes: float("inf"),
            GAConfig(population_size=4, generations=2, seed=0),
        )
        log = GAGenerationLog()
        ga.run(on_generation=log)
        assert all(r["best_fitness"] is None for r in log.records)
        assert all(r["mean_fitness"] is None for r in log.records)
        path = tmp_path / "ga.jsonl"
        log.write_jsonl(str(path))
        for line in path.read_text().splitlines():
            json.loads(line)  # strict JSON, no Infinity tokens
        assert "Infinity" not in path.read_text()

    def test_jsonl_round_trip_and_summary(self, tmp_path):
        log = self._log()
        path = tmp_path / "ga.jsonl"
        log.write_jsonl(str(path))
        rows = load_jsonl(str(path))
        assert rows == log.records
        assert classify(rows) == "ga_generations"
        out = summarise(rows)
        assert "GA generation log" in out and "6 generations" in out

    def test_streaming_writes_as_it_goes(self, tmp_path):
        import io

        stream = io.StringIO()
        log = GAGenerationLog(stream=stream)
        log({"generation": 0, "best_fitness": 1.0})
        assert json.loads(stream.getvalue()) == {
            "generation": 0, "best_fitness": 1.0,
        }

    def test_engine_passthrough(self):
        from repro.analysis import build_profiles
        from repro.params import LatencyParams
        from repro.opt import GAConfig, OptimizationEngine

        traces = splash_traces("fft", 4, scale=0.1)
        profiles = build_profiles(traces, cohort_config([1] * 4).l1)
        engine = OptimizationEngine(
            profiles, LatencyParams(),
            GAConfig(population_size=6, generations=3, seed=0),
        )
        log = GAGenerationLog()
        result = engine.optimize(timed=[True] * 4, on_generation=log)
        assert len(log.records) >= 2
        assert log.records[-1]["evaluations"] == result.ga.evaluations
