"""Meta-test: every public item of the library is documented.

Deliverable (e) of the reproduction: doc comments on every public item.
This walks the package and asserts modules, public classes and public
functions/methods carry docstrings.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_METHODS = {
    # dataclass/enum machinery and dunder-adjacent accessors
    "__init__", "__post_init__",
}


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        yield name, obj


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_is_documented():
    missing = []
    for module in iter_modules():
        for name, obj in _public_members(module):
            if inspect.isclass(obj):
                if not obj.__doc__:
                    missing.append(f"{module.__name__}.{name}")
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if meth_name in IGNORED_METHODS:
                        continue
                    if isinstance(meth, (staticmethod, classmethod)):
                        meth = meth.__func__
                    if inspect.isfunction(meth) and not meth.__doc__:
                        missing.append(
                            f"{module.__name__}.{name}.{meth_name}"
                        )
            elif inspect.isfunction(obj) and not obj.__doc__:
                missing.append(f"{module.__name__}.{name}")
    assert not missing, (
        f"{len(missing)} undocumented public items:\n" + "\n".join(missing)
    )
