"""Graceful degradation and checkpoint/resume tests for the GA.

A fitness evaluation that raises — or a batch evaluator that dies
wholesale — must cost the GA one worst-fitness individual (plus a
failure record), never the run.  A checkpointed run interrupted at any
generation must resume to exactly the result an uninterrupted run
produces.
"""

import json
import math
import os
import signal

import pytest

from repro.opt.engine import _PoolEvaluator
from repro.opt.ga import GAConfig, GeneticAlgorithm

BOUNDS = [(1, 100)] * 3


def good_fitness(genes):
    return float(sum(genes))


def flaky_fitness(genes):
    if genes[0] % 5 == 0:
        raise ValueError(f"flaky at {genes[0]}")
    return float(sum(genes))


def small_config(**kw):
    kw.setdefault("population_size", 12)
    kw.setdefault("generations", 6)
    kw.setdefault("seed", 3)
    kw.setdefault("stall_generations", 0)
    return GAConfig(**kw)


class TestFailureDegradation:
    def test_raising_fitness_becomes_worst_not_fatal(self):
        ga = GeneticAlgorithm(BOUNDS, flaky_fitness, small_config())
        result = ga.run()
        assert math.isfinite(result.best_fitness)
        assert result.best_genes[0] % 5 != 0
        assert result.failed_evaluations > 0
        assert result.failures
        record = result.failures[0]
        assert record["genes"][0] % 5 == 0
        assert "flaky" in record["error"]

    def test_mapfn_exception_entries_become_worst(self):
        def flaky_map(batch):
            return [
                ValueError("poisoned slot") if g[0] % 5 == 0 else float(sum(g))
                for g in batch
            ]

        ga = GeneticAlgorithm(
            BOUNDS, flaky_fitness, small_config(), map_fn=flaky_map
        )
        result = ga.run()
        assert math.isfinite(result.best_fitness)
        assert result.failed_evaluations > 0

    def test_wholesale_mapfn_failure_falls_back_to_serial(self):
        calls = {"n": 0}

        def dying_map(batch):
            calls["n"] += 1
            raise RuntimeError("worker pool vanished")

        cfg = small_config()
        degraded = GeneticAlgorithm(
            BOUNDS, good_fitness, cfg, map_fn=dying_map
        ).run()
        serial = GeneticAlgorithm(BOUNDS, good_fitness, cfg).run()
        assert calls["n"] > 0
        assert degraded.best_genes == serial.best_genes
        assert degraded.best_fitness == serial.best_fitness
        assert degraded.history == serial.history
        assert degraded.failed_evaluations == calls["n"]

    def test_short_mapfn_batch_is_treated_as_failure(self):
        def truncating_map(batch):
            return [float(sum(g)) for g in batch][:-1]

        cfg = small_config()
        degraded = GeneticAlgorithm(
            BOUNDS, good_fitness, cfg, map_fn=truncating_map
        ).run()
        serial = GeneticAlgorithm(BOUNDS, good_fitness, cfg).run()
        assert degraded.best_fitness == serial.best_fitness
        assert degraded.failed_evaluations > 0

    def test_generation_records_count_failures(self):
        records = []
        ga = GeneticAlgorithm(BOUNDS, flaky_fitness, small_config())
        ga.run(on_generation=records.append)
        assert records
        assert records[-1]["failed_evaluations"] == ga._failed_evaluations
        assert all(0.0 <= r["finite_fraction"] <= 1.0 for r in records)


class TestCheckpointResume:
    def checkpoint(self, tmp_path):
        return str(tmp_path / "ga-state.json")

    def test_resumed_run_equals_uninterrupted_run(self, tmp_path):
        path = self.checkpoint(tmp_path)
        straight = GeneticAlgorithm(
            BOUNDS, good_fitness, small_config(generations=8)
        ).run()

        interrupted = GeneticAlgorithm(
            BOUNDS, good_fitness, small_config(generations=4)
        )
        partial = interrupted.run(checkpoint_path=path)
        assert partial.generations_run == 4

        resumed = GeneticAlgorithm(
            BOUNDS, good_fitness, small_config(generations=8)
        ).run(checkpoint_path=path)
        assert resumed.generations_run == 8
        assert resumed.best_genes == straight.best_genes
        assert resumed.best_fitness == straight.best_fitness
        assert resumed.history == straight.history
        assert resumed.evaluations == straight.evaluations

    def test_finished_run_resumes_as_a_noop(self, tmp_path):
        path = self.checkpoint(tmp_path)
        cfg = small_config(generations=5)
        first = GeneticAlgorithm(BOUNDS, good_fitness, cfg).run(
            checkpoint_path=path
        )

        def exploding(genes):
            raise AssertionError("must not re-evaluate anything")

        again = GeneticAlgorithm(BOUNDS, exploding, cfg).run(
            checkpoint_path=path
        )
        assert again.best_genes == first.best_genes
        assert again.generations_run == first.generations_run

    def test_mismatched_config_ignores_checkpoint(self, tmp_path):
        path = self.checkpoint(tmp_path)
        GeneticAlgorithm(BOUNDS, good_fitness, small_config()).run(
            checkpoint_path=path
        )
        other_cfg = small_config(mutation_rate=0.5)
        fresh = GeneticAlgorithm(BOUNDS, good_fitness, other_cfg).run()
        resumed = GeneticAlgorithm(BOUNDS, good_fitness, other_cfg).run(
            checkpoint_path=path
        )
        assert resumed.best_fitness == fresh.best_fitness
        assert resumed.history == fresh.history

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = self.checkpoint(tmp_path)
        with open(path, "w") as fh:
            fh.write("{ not json")
        cfg = small_config()
        result = GeneticAlgorithm(BOUNDS, good_fitness, cfg).run(
            checkpoint_path=path
        )
        assert result.generations_run == cfg.generations
        with open(path) as fh:
            state = json.load(fh)  # overwritten with a valid checkpoint
        assert state["generations_run"] == cfg.generations

    def test_checkpoint_preserves_failure_accounting(self, tmp_path):
        path = self.checkpoint(tmp_path)
        GeneticAlgorithm(BOUNDS, flaky_fitness, small_config(generations=3)).run(
            checkpoint_path=path
        )
        resumed = GeneticAlgorithm(
            BOUNDS, flaky_fitness, small_config(generations=6)
        ).run(checkpoint_path=path)
        straight = GeneticAlgorithm(
            BOUNDS, flaky_fitness, small_config(generations=6)
        ).run()
        assert resumed.failed_evaluations == straight.failed_evaluations
        assert resumed.best_fitness == straight.best_fitness


class DummyProblem:
    """Stands in for TimerProblem: pure, picklable, per-gene control."""

    def fitness(self, genes):
        import multiprocessing

        in_worker = multiprocessing.parent_process() is not None
        if genes[0] == 13 and in_worker:
            os.kill(os.getpid(), signal.SIGKILL)
        if genes[0] == 7:
            raise ValueError("bad gene")
        return float(sum(genes))


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)
class TestPoolEvaluator:
    def test_per_gene_exceptions_come_back_in_slot(self):
        evaluator = _PoolEvaluator(DummyProblem(), jobs=2)
        try:
            out = evaluator([[7, 1, 1], [1, 1, 1], [2, 2, 2]])
        finally:
            evaluator.close()
        assert isinstance(out[0], ValueError)
        assert out[1:] == [3.0, 6.0]

    def test_worker_death_falls_back_in_process(self):
        evaluator = _PoolEvaluator(DummyProblem(), jobs=2)
        try:
            out = evaluator([[13, 2, 2], [1, 1, 1], [2, 2, 2]])
            assert out == [17.0, 3.0, 6.0]
            # The pool was rebuilt; the evaluator keeps working.
            assert evaluator([[3, 3, 3]]) == [9.0]
        finally:
            evaluator.close()
