"""Tests for the fault-injection layer (repro.fi).

Covers plan determinism, the campaign driver's zero-silent-corruption
guarantee and bit-reproducibility, engine equivalence of campaign
reports, the post-run audit's ability to actually catch corruption, the
``degrade_to_msi`` self-healing response, and the zero-overhead
guarantee when no plan is armed.
"""

import json
from dataclasses import replace

import pytest

from repro.fi import (
    Fault,
    FaultKind,
    FaultPlan,
    audit_system,
    run_campaigns,
)
from repro.fi.plan import ALL_KINDS
from repro.params import cohort_config
from repro.sim.cache import LineState
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

from conftest import empty_trace, quad_config, t


@pytest.fixture(scope="module")
def traces():
    return splash_traces("fft", 4, scale=0.2, seed=0)


@pytest.fixture(scope="module")
def config():
    return cohort_config([100, 20, 20, 20])


def report_bytes(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(7, 5000, 4, n_faults=5)
        b = FaultPlan.generate(7, 5000, 4, n_faults=5)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(7, 5000, 4, n_faults=5)
        b = FaultPlan.generate(8, 5000, 4, n_faults=5)
        assert a.to_dict() != b.to_dict()

    def test_faults_sorted_and_in_horizon(self):
        plan = FaultPlan.generate(3, 400, 4, n_faults=8)
        cycles = [f.cycle for f in plan.faults]
        assert cycles == sorted(cycles)
        assert all(1 <= c <= 400 for c in cycles)
        assert all(0 <= f.core < 4 for f in plan.faults)

    def test_rejects_unknown_response(self):
        with pytest.raises(ValueError):
            FaultPlan(response="self_destruct")

    def test_injector_rejects_out_of_range_core(self, config, traces):
        plan = FaultPlan(
            faults=(Fault(FaultKind.TIMER_FLIP, cycle=5, core=9),)
        )
        with pytest.raises(ValueError):
            System(config, traces, fault_plan=plan)


class TestCampaigns:
    def test_zero_silent_corruptions_and_bit_identical_repeat(
        self, config, traces
    ):
        a = run_campaigns(config, traces, campaigns=7, seed=3)
        b = run_campaigns(config, traces, campaigns=7, seed=3)
        assert a.silent_corruptions() == []
        assert report_bytes(a) == report_bytes(b)

    def test_report_identical_across_engines(self, config, traces):
        fast = run_campaigns(
            config, traces, campaigns=7, seed=3, fast_path=True
        )
        slow = run_campaigns(
            config, traces, campaigns=7, seed=3, fast_path=False
        )
        assert report_bytes(fast) == report_bytes(slow)

    def test_seven_campaigns_cover_every_kind(self, config, traces):
        report = run_campaigns(config, traces, campaigns=7, seed=1)
        assert set(report.matrix()) == {k.value for k in ALL_KINDS}
        totals = report.totals()
        assert sum(totals.values()) == 7
        assert totals["silent_corruption"] == 0

    def test_matrix_rows_sum_to_totals(self, config, traces):
        report = run_campaigns(config, traces, campaigns=7, seed=5)
        summed = {v: 0 for v in ("detected", "survived", "silent_corruption")}
        for row in report.matrix().values():
            for verdict, n in row.items():
                summed[verdict] += n
        assert summed == report.totals()
        rendered = report.render()
        assert "fault kind" in rendered and "total" in rendered


class TestBusStallMidTransfer:
    def test_stall_during_transfer_injects_and_completes(self, config, traces):
        # Regression: a stall landing while the bus was busy used to be
        # skipped ("no_target") because releasing the in-flight job would
        # have tripped the single busy-until clock.  With separate job
        # and stall horizons the injector stalls unconditionally.
        plan = FaultPlan(
            faults=tuple(
                Fault(FaultKind.BUS_STALL, cycle=c, arg=25)
                for c in (10, 40, 70)
            )
        )
        cfg = replace(config, check_coherence=True)
        system = System(cfg, traces, fault_plan=plan)
        stalled = system.run()
        records = [
            r
            for r in system.injector.records
            if r.fault.kind is FaultKind.BUS_STALL
        ]
        assert len(records) == 3
        assert all(r.effect == "injected" for r in records)
        assert any("overlaps the in-flight transfer" in r.detail for r in records)
        baseline = System(cfg, traces).run()
        assert stalled.final_cycle > baseline.final_cycle


class TestAudit:
    def test_clean_run_audits_clean(self, config, traces):
        system = System(replace(config, check_coherence=True), traces)
        system.run()
        assert audit_system(system) == []

    def test_detects_unsanctioned_corruption(self):
        """Meta-test: the audit must catch what the oracle cannot.

        Poking a modified line's version behind the protocol's back is
        exactly the kind of mutation the injector is forbidden from
        making; the audit flagging it is what gives the empty
        silent-corruption bucket its meaning.
        """
        config = replace(quad_config([60] * 4), check_coherence=True)
        traces = [t([(0, "W", 0)])] + [empty_trace()] * 3
        system = System(config, traces)
        system.run()
        line = system.caches[0].lookup(0)
        assert line is not None and line.state == LineState.M
        assert audit_system(system) == []
        line.version += 1  # unsanctioned: no hardware path does this
        problems = audit_system(system)
        assert problems
        assert any("golden" in p for p in problems)


class TestDegradeResponse:
    def test_degrade_to_msi_restores_msi_register(self, config, traces):
        plan = FaultPlan(
            faults=(Fault(FaultKind.TIMER_FLIP, cycle=50, core=0, arg=15),),
            response="degrade_to_msi",
            detection_latency=20,
        )
        run_config = replace(
            config, check_coherence=True, max_cycles=500_000
        )
        system = System(run_config, traces, fault_plan=plan)
        system.run()
        assert system.caches[0].is_msi
        assert system.injector is not None
        (record,) = system.injector.records
        assert record.effect == "injected"
        assert record.responses == ["degrade_to_msi"]
        assert system.injector.summary()["responses"] == 1

    def test_no_response_leaves_flip_in_place(self, config, traces):
        plan = FaultPlan(
            faults=(Fault(FaultKind.TIMER_FLIP, cycle=50, core=0, arg=3),),
            response="none",
        )
        run_config = replace(
            config, check_coherence=True, max_cycles=500_000
        )
        system = System(run_config, traces, fault_plan=plan)
        system.run()
        assert system.caches[0].theta == 100 ^ (1 << 3)


class TestZeroOverhead:
    def test_no_plan_means_identical_cycles_and_no_injector(
        self, config, traces
    ):
        baseline = run_simulation(config, traces)
        system = System(config, traces, fault_plan=None)
        stats = system.run()
        assert system.injector is None
        assert stats.final_cycle == baseline.final_cycle
        assert stats.execution_time == baseline.execution_time

    def test_empty_plan_changes_nothing(self, config, traces):
        baseline = run_simulation(config, traces)
        system = System(config, traces, fault_plan=FaultPlan())
        stats = system.run()
        assert stats.final_cycle == baseline.final_cycle
