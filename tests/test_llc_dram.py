"""Unit tests for the shared LLC and the DRAM model."""

import pytest

from repro.params import CacheGeometry
from repro.sim.dram import FixedLatencyDRAM
from repro.sim.llc import SharedLLC


def small_geom(ways=2, sets=2):
    return CacheGeometry(size_bytes=sets * ways * 64, line_bytes=64, ways=ways)


class TestDRAM:
    def test_default_version_is_zero(self):
        dram = FixedLatencyDRAM(100)
        assert dram.read_version(5) == 0

    def test_write_then_read(self):
        dram = FixedLatencyDRAM(100)
        dram.write_version(5, 3)
        assert dram.read_version(5) == 3
        assert dram.reads == 1 and dram.writes == 1

    def test_peek_does_not_count(self):
        dram = FixedLatencyDRAM(100)
        dram.write_version(5, 3)
        assert dram.peek_version(5) == 3
        assert dram.reads == 0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            FixedLatencyDRAM(-1)


class TestPerfectLLC:
    def make(self):
        return SharedLLC(small_geom(), perfect=True, dram=FixedLatencyDRAM(100))

    def test_everything_is_present(self):
        llc = self.make()
        assert llc.present(12345)

    def test_every_access_hits(self):
        llc = self.make()
        assert llc.record_access(7, cycle=1)
        assert llc.hits == 1 and llc.misses == 0

    def test_versions_default_zero_and_update(self):
        llc = self.make()
        assert llc.version(9) == 0
        llc.write_version(9, 4)
        assert llc.version(9) == 4

    def test_no_victims(self):
        llc = self.make()
        assert llc.peek_victim(1) is None
        assert llc.fill_from_memory(1, 0) is None


class TestNonPerfectLLC:
    def make(self):
        return SharedLLC(small_geom(ways=2, sets=1), perfect=False,
                         dram=FixedLatencyDRAM(100))

    def test_absent_until_filled(self):
        llc = self.make()
        assert not llc.present(0)
        llc.fill_from_memory(0, cycle=1)
        assert llc.present(0)

    def test_record_access_counts_miss_then_hit(self):
        llc = self.make()
        assert not llc.record_access(0, cycle=1)
        llc.fill_from_memory(0, cycle=1)
        assert llc.record_access(0, cycle=2)
        assert llc.misses == 1 and llc.hits == 1

    def test_fill_reads_version_from_dram(self):
        dram = FixedLatencyDRAM(100)
        dram.write_version(0, 8)
        llc = SharedLLC(small_geom(ways=2, sets=1), perfect=False, dram=dram)
        llc.fill_from_memory(0, cycle=1)
        assert llc.version(0) == 8

    def test_eviction_on_full_set(self):
        llc = self.make()
        llc.fill_from_memory(0, cycle=1)
        llc.fill_from_memory(1, cycle=2)
        victim = llc.fill_from_memory(2, cycle=3)
        assert victim is not None and victim.line_addr == 0

    def test_evict_to_memory_persists_version(self):
        llc = self.make()
        llc.fill_from_memory(0, cycle=1)
        llc.write_version(0, 5, cycle=2)
        llc.fill_from_memory(1, cycle=3)
        victim = llc.fill_from_memory(2, cycle=4)
        llc.evict_to_memory(victim)
        assert llc.dram.peek_version(0) == 5

    def test_writeback_to_evicted_line_goes_to_memory(self):
        llc = self.make()
        llc.write_version(42, 9, cycle=1)  # line not resident
        assert llc.dram.peek_version(42) == 9

    def test_version_of_absent_line_raises(self):
        llc = self.make()
        with pytest.raises(KeyError):
            llc.version(3)

    def test_occupancy(self):
        llc = self.make()
        assert llc.occupancy() == 0
        llc.fill_from_memory(0, 1)
        assert llc.occupancy() == 1
