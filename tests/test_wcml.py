"""Unit tests for the WCML bounds (Equations 2 and 3) and bound builders."""

import math

import pytest

from repro.params import MSI_THETA, CacheGeometry, LatencyParams
from repro.analysis.cache_analysis import build_profiles
from repro.analysis.wcml import (
    CoreBound,
    average_wcml,
    cohort_bounds,
    meets_requirements,
    pcc_bounds,
    pendulum_bounds,
    wcml_snoop,
    wcml_timed,
)

from conftest import t

SW = 54


@pytest.fixture
def profiles():
    traces = [
        t([(0, "R", 1), (0, "R", 1), (5, "W", 2)]),
        t([(0, "W", 3), (0, "W", 3)]),
    ]
    return build_profiles(traces, CacheGeometry())


class TestEquations:
    def test_equation_2(self):
        assert wcml_timed(m_hit=10, m_miss=5, wcl=100, hit_latency=1) == 510

    def test_equation_3(self):
        assert wcml_snoop(num_accesses=7, wcl=100) == 700

    def test_equation_2_validates(self):
        with pytest.raises(ValueError):
            wcml_timed(-1, 0, 100)

    def test_equation_3_validates(self):
        with pytest.raises(ValueError):
            wcml_snoop(-1, 100)


class TestCoreBound:
    def test_average_per_access(self):
        b = CoreBound(core_id=0, wcml=100.0, wcl=50.0, m_hit=1, m_miss=1)
        assert b.accesses == 2
        assert b.average_per_access == 50.0

    def test_unbounded_detection(self):
        b = CoreBound(core_id=0, wcml=math.inf, wcl=math.inf, m_hit=0, m_miss=3)
        assert not b.bounded

    def test_empty_task(self):
        b = CoreBound(core_id=0, wcml=0.0, wcl=10.0, m_hit=0, m_miss=0)
        assert b.average_per_access == 0.0


class TestCohortBounds(object):
    def test_timed_core_uses_equation_2(self, profiles):
        lat = LatencyParams()
        bounds = cohort_bounds([1000, 1000], profiles, lat)
        b0 = bounds[0]
        # The back-to-back reuse of line 1 is a guaranteed hit.
        assert b0.m_hit >= 1
        assert b0.wcml == b0.m_hit * lat.hit + b0.m_miss * b0.wcl

    def test_msi_core_uses_equation_3(self, profiles):
        lat = LatencyParams()
        bounds = cohort_bounds([1000, MSI_THETA], profiles, lat)
        b1 = bounds[1]
        assert b1.m_hit == 0
        assert b1.wcml == 2 * b1.wcl

    def test_requires_matching_lengths(self, profiles):
        with pytest.raises(ValueError):
            cohort_bounds([10], profiles, LatencyParams())

    def test_fewer_timed_corunners_tightens_bounds(self, profiles):
        lat = LatencyParams()
        both_timed = cohort_bounds([200, 200], profiles, lat)
        one_timed = cohort_bounds([200, MSI_THETA], profiles, lat)
        assert one_timed[0].wcl < both_timed[0].wcl


class TestBaselineBounds:
    def test_pcc_all_misses(self, profiles):
        bounds = pcc_bounds(profiles, LatencyParams())
        for b, p in zip(bounds, profiles):
            assert b.m_hit == 0
            assert b.wcml == p.num_accesses * 4 * SW  # 2*N*SW with N=2

    def test_pendulum_ncr_unbounded(self, profiles):
        bounds = pendulum_bounds([True, False], 300, profiles, LatencyParams())
        assert bounds[0].bounded
        assert not bounds[1].bounded

    def test_pendulum_requires_matching_lengths(self, profiles):
        with pytest.raises(ValueError):
            pendulum_bounds([True], 300, profiles, LatencyParams())


class TestAggregation:
    def test_average_wcml(self):
        bounds = [
            CoreBound(0, 100.0, 50.0, 1, 1),
            CoreBound(1, 300.0, 50.0, 0, 3),
        ]
        assert average_wcml(bounds) == pytest.approx((50.0 + 100.0) / 2)

    def test_average_wcml_empty(self):
        with pytest.raises(ValueError):
            average_wcml([])

    def test_meets_requirements(self):
        bounds = [CoreBound(0, 100.0, 50.0, 1, 1)]
        assert meets_requirements(bounds, [150.0])
        assert meets_requirements(bounds, [None])
        assert not meets_requirements(bounds, [99.0])

    def test_meets_requirements_length_check(self):
        with pytest.raises(ValueError):
            meets_requirements([], [1.0])
