"""Integration tests: handcrafted coherence scenarios.

These encode the paper's motivating examples: the snoop-vs-timed
behaviour of Figure 1, the heterogeneous handover chain of Figure 4,
upgrades, write-backs, run-ahead and run-time protocol switching.
All runs execute with the golden-value coherence oracle enabled.
"""

from repro.params import (
    MSI_THETA,
    cohort_config,
    msi_fcfs_config,
    pcc_config,
    pendulum_config,
)

from conftest import empty_trace, quad_config, run_checked, t

SW = 54  # slot width with the paper's latencies (4 + 50)


class TestSingleCore:
    def test_cold_miss_latency_is_one_slot(self):
        traces = [t([(0, "R", 1)])]
        _, stats = run_checked(cohort_config([100]), traces)
        core = stats.core(0)
        assert core.misses == 1 and core.hits == 0
        assert core.max_request_latency == SW
        assert core.total_memory_latency == SW

    def test_reuse_hits_after_fill(self):
        traces = [t([(0, "R", 1), (0, "R", 1), (2, "R", 1)])]
        _, stats = run_checked(cohort_config([100]), traces)
        core = stats.core(0)
        assert core.misses == 1
        assert core.hits == 2
        assert core.total_memory_latency == SW + 2  # one miss + two 1-cycle hits

    def test_store_after_load_is_upgrade(self):
        traces = [t([(0, "R", 1), (0, "W", 1)])]
        _, stats = run_checked(cohort_config([100]), traces)
        core = stats.core(0)
        assert core.misses == 2
        assert core.upgrades == 1
        # The upgrade costs only the request broadcast: no data moves.
        assert core.total_memory_latency == SW + 4

    def test_store_then_store_hits(self):
        traces = [t([(0, "W", 1), (0, "W", 1)])]
        _, stats = run_checked(cohort_config([100]), traces)
        assert stats.core(0).misses == 1
        assert stats.core(0).hits == 1

    def test_conflict_eviction_in_direct_mapped_l1(self):
        # Lines 1 and 257 map to the same set of the 256-set L1.  In-order
        # (no run-ahead) so the re-read happens after the eviction.
        traces = [t([(0, "W", 1), (0, "R", 257), (0, "R", 1)])]
        cfg = cohort_config([100], runahead_window=0)
        system, stats = run_checked(cfg, traces)
        assert stats.core(0).misses == 3  # the dirty line was evicted
        assert stats.writebacks == 1

    def test_empty_trace_finishes_at_cycle_zero(self):
        _, stats = run_checked(cohort_config([100]), [empty_trace()])
        assert stats.core(0).finish_cycle == 0
        assert stats.core(0).accesses == 0

    def test_timer_replenishes_without_interference(self):
        """With no co-runner, hits continue long past θ (replenishment)."""
        traces = [t([(0, "W", 1), (500, "R", 1)])]
        _, stats = run_checked(cohort_config([10]), traces)
        assert stats.core(0).hits == 1


class TestFigure1Snoop:
    """Figure 1a: under MSI, c1's store invalidates c0 immediately."""

    def make_traces(self):
        # c0 stores A (line 1); c1 stores A later; c0 then re-reads A.
        c0 = t([(0, "W", 1), (200, "R", 1)])
        c1 = t([(60, "W", 1)])
        return [c0, c1]

    def test_requesters_miss_is_short_but_owner_loses_the_line(self):
        cfg = cohort_config([MSI_THETA, MSI_THETA])
        _, stats = run_checked(cfg, self.make_traces())
        # c1's store is served quickly (no timer wait).
        assert stats.core(1).max_request_latency <= 2 * SW
        # c0's re-read at t=200+ has turned into a miss: 2 misses total.
        assert stats.core(0).misses == 2
        assert stats.core(0).hits == 0


class TestFigure1Timed:
    """Figure 1b: a timer preserves c0's subsequent hit, c1 waits longer."""

    def make_traces(self):
        c0 = t([(0, "W", 1), (66, "R", 1)])  # re-read while timer protects
        c1 = t([(60, "W", 1)])
        return [c0, c1]

    def test_owner_keeps_hit_and_requester_waits_for_timer(self):
        theta0 = 100
        cfg = cohort_config([theta0, MSI_THETA])
        _, stats = run_checked(cfg, self.make_traces())
        # c0's re-read is protected by the timer: it hits (request 3 in Fig 1b).
        assert stats.core(0).hits == 1
        assert stats.core(0).misses == 1
        # c1 had to wait for the timer expiry: latency covers the remaining
        # window (fill at 54, expiry at 154, issue at 60).
        assert stats.core(1).max_request_latency > theta0 - 20
        # ...but within the Equation-1 bound for its configuration.
        assert stats.core(1).max_request_latency <= 2 * SW + theta0 + SW

    def test_msi_loses_the_same_hit(self):
        cfg = cohort_config([MSI_THETA, MSI_THETA])
        _, stats = run_checked(cfg, self.make_traces())
        assert stats.core(0).hits == 0
        assert stats.core(0).misses == 2


class TestFigure4Chain:
    """Figure 4: heterogeneous handover chain c0→c1→c2(MSI)→c3."""

    def test_chain_order_and_msi_immediate_handover(self):
        theta = (80, 80, MSI_THETA, 80)
        # All four cores store line A at once.
        traces = [t([(0, "W", 1)]) for _ in range(4)]
        cfg = quad_config(theta)
        _, stats = run_checked(cfg, traces, record_latencies=True)
        lat = [stats.core(i).request_latencies[0] for i in range(4)]
        # Service order follows RROF: c0 first, then c1 (after θ0), then c2
        # (after θ1), then c3 right after c2 (MSI gives up immediately).
        assert lat[0] < lat[1] < lat[2] < lat[3]
        # c1 and c2 each waited for one timer period.
        assert lat[1] - lat[0] >= 80
        assert lat[2] - lat[1] >= 80
        # c2 is MSI: c3 receives the line without any timer wait.
        assert lat[3] - lat[2] < 80

    def test_all_msi_chain_has_no_timer_waits(self):
        traces = [t([(0, "W", 1)]) for _ in range(4)]
        cfg = quad_config([MSI_THETA] * 4)
        _, stats = run_checked(cfg, traces, record_latencies=True)
        for i in range(4):
            assert stats.core(i).request_latencies[0] <= 4 * SW


class TestSharedReaders:
    def test_multiple_readers_coexist(self):
        traces = [
            t([(0, "R", 1), (10, "R", 1), (10, "R", 1)]),
            t([(5, "R", 1), (10, "R", 1), (10, "R", 1)]),
        ]
        cfg = cohort_config([50, 50])
        _, stats = run_checked(cfg, traces)
        # Readers do not invalidate each other: one miss each, rest hits.
        for i in range(2):
            assert stats.core(i).misses == 1
            assert stats.core(i).hits == 2

    def test_reader_gets_dirty_data_from_timed_owner(self):
        traces = [
            t([(0, "W", 1)]),          # c0 makes the line dirty
            t([(100, "R", 1)]),        # c1 reads it afterwards
        ]
        cfg = cohort_config([20, 20])
        system, stats = run_checked(cfg, traces)
        # The oracle validates the read saw c0's write; both finish cleanly.
        assert stats.core(1).misses == 1
        from repro.sim.cache import LineState

        # A timed owner's window ended: per Figure 3 it invalidates rather
        # than keeping an S copy (which would open a second timer window).
        assert system.caches[0].lookup(1) is None
        assert system.caches[1].lookup(1).state == LineState.S

    def test_reader_gets_dirty_data_from_msi_owner(self):
        traces = [
            t([(0, "W", 1)]),
            t([(100, "R", 1)]),
        ]
        cfg = cohort_config([MSI_THETA, MSI_THETA])
        system, stats = run_checked(cfg, traces)
        assert stats.core(1).misses == 1
        from repro.sim.cache import LineState

        # Plain MSI: the owner downgrades M→S and keeps its copy.
        assert system.caches[0].lookup(1).state == LineState.S
        assert system.caches[1].lookup(1).state == LineState.S

    def test_writer_invalidates_all_readers(self):
        traces = [
            t([(0, "R", 1)]),
            t([(0, "R", 1)]),
            t([(150, "W", 1)]),
        ]
        cfg = cohort_config([30, 30, 30])
        system, stats = run_checked(cfg, traces)
        from repro.sim.cache import LineState

        assert system.caches[2].lookup(1).state == LineState.M
        assert system.caches[0].lookup(1) is None
        assert system.caches[1].lookup(1) is None


class TestUpgradeRace:
    def test_two_upgraders_serialise_correctly(self):
        # Both cores read the line, then both try to write it.
        traces = [
            t([(0, "R", 1), (120, "W", 1)]),
            t([(0, "R", 1), (121, "W", 1)]),
        ]
        cfg = cohort_config([10, 10])
        _, stats = run_checked(cfg, traces)
        # Both writes performed; the oracle verified single-writer ordering.
        total_misses = stats.core(0).misses + stats.core(1).misses
        assert total_misses >= 3  # 2 cold + at least one upgrade->GETM

    def test_upgrade_morphs_to_getm_when_copy_lost(self):
        # c1's S copy is invalidated by c0's write racing its upgrade.
        traces = [
            t([(0, "R", 1), (100, "W", 1)]),
            t([(0, "R", 1), (104, "W", 1)]),
        ]
        cfg = cohort_config([1, 1])
        _, stats = run_checked(cfg, traces)
        assert stats.core(0).accesses == 2
        assert stats.core(1).accesses == 2


class TestWritebacks:
    def test_dirty_data_survives_eviction(self):
        # c0 dirties line 1, evicts it via line 257 (same set), then c1
        # reads line 1 and must observe the write-back's data.
        traces = [
            t([(0, "W", 1), (5, "W", 257)]),
            t([(400, "R", 1)]),
        ]
        cfg = cohort_config([10, 10])
        _, stats = run_checked(cfg, traces)
        assert stats.writebacks >= 1  # oracle validates the version

    def test_wb_on_bus_mode(self):
        traces = [
            t([(0, "W", 1), (5, "W", 257), (5, "W", 1)]),
            t([(300, "R", 1)]),
        ]
        cfg = cohort_config([10, 10], wb_on_bus=True)
        _, stats = run_checked(cfg, traces)
        assert stats.bus_grants.get("WRITEBACK", 0) >= 1


class TestPCCBehaviour:
    def test_dirty_handover_goes_via_llc(self):
        traces = [
            t([(0, "W", 1)]),
            t([(100, "W", 1)]),
        ]
        _, stats = run_checked(pcc_config(2), traces, record_latencies=True)
        # The owner spilled to the LLC before the requester's fetch.
        assert stats.writebacks == 1
        # Two bus data transfers happened (none cache-to-cache).
        assert stats.bus_grants.get("DATA") == 2

    def test_cohort_dirty_handover_is_direct(self):
        traces = [
            t([(0, "W", 1)]),
            t([(100, "W", 1)]),
        ]
        _, stats = run_checked(cohort_config([10, 10]), traces)
        assert stats.writebacks == 0


class TestPendulumBehaviour:
    def test_ncr_starved_while_cr_busy(self):
        # Cr cores 0/1 hammer a shared line; nCr core 2 wants one line.
        c0 = t([(0, "W", 1)] + [(5, "W", 1)] * 10)
        c1 = t([(2, "W", 1)] + [(5, "W", 1)] * 10)
        c2 = t([(3, "R", 9)])
        cfg = pendulum_config([True, True, False], theta=60)
        _, stats = run_checked(cfg, [c0, c1, c2], record_latencies=True)
        # The nCr core was served only after critical traffic drained.
        assert stats.core(2).max_request_latency > 2 * SW

    def test_tdm_is_predictable_for_cr(self):
        c0 = t([(0, "W", 1), (10, "W", 2)])
        c1 = t([(1, "W", 1), (10, "W", 3)])
        cfg = pendulum_config([True, True], theta=50)
        _, stats = run_checked(cfg, [c0, c1])
        assert stats.core(0).accesses == 2
        assert stats.core(1).accesses == 2


class TestRunahead:
    def make_traces(self):
        # Warm lines 2..5, then a cold miss on line 9 followed by hits that
        # can run ahead beneath the miss.
        warm = [(0, "R", 2), (0, "R", 3), (0, "R", 4), (0, "R", 5)]
        work = [(0, "R", 9), (1, "R", 2), (1, "R", 3), (1, "R", 4), (1, "R", 5)]
        return [t(warm + work)]

    def test_hits_overlap_with_miss(self):
        fast_cfg = cohort_config([100], runahead_window=8)
        slow_cfg = cohort_config([100], runahead_window=0)
        _, fast = run_checked(fast_cfg, self.make_traces())
        _, slow = run_checked(slow_cfg, self.make_traces())
        # The four warm-up accesses are cold misses; the four re-reads hit.
        assert fast.core(0).hits == slow.core(0).hits == 4
        assert fast.core(0).runahead_hits == 4
        assert slow.core(0).runahead_hits == 0
        # Overlapping the hits under the miss shortens execution.
        assert fast.core(0).finish_cycle < slow.core(0).finish_cycle

    def test_runahead_stops_at_second_miss(self):
        trace = t([(0, "R", 1), (0, "R", 9), (0, "R", 10)])  # all cold
        cfg = cohort_config([100], runahead_window=8)
        _, stats = run_checked(cfg, [trace])
        assert stats.core(0).misses == 3
        # Misses serialise: total time ≈ 3 slots.
        assert stats.core(0).finish_cycle >= 3 * SW

    def test_window_limits_runahead(self):
        warm = [(0, "R", i) for i in range(2, 8)]
        work = [(0, "R", 9)] + [(0, "R", i) for i in range(2, 8)]
        trace = t(warm + work)
        cfg = cohort_config([100], runahead_window=2)
        _, stats = run_checked(cfg, [trace])
        assert stats.core(0).runahead_hits == 2


class TestModeSwitchRuntime:
    def test_switch_mode_reprograms_thetas(self):
        from repro.sim.system import System
        from dataclasses import replace

        cfg = replace(quad_config([100, 100, 100, 100]), check_coherence=True)
        traces = [t([(0, "W", i + 1), (500, "W", i + 1)]) for i in range(4)]
        system = System(cfg, traces)
        for cache in system.caches:
            cache.lut.program(1, 100)
            cache.lut.program(2, MSI_THETA)
        system.kernel.schedule(
            200, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        stats = system.run()
        assert stats.mode_switches == 1
        assert all(c.theta == MSI_THETA for c in system.caches)

    def test_set_theta_applies_to_future_fills(self):
        from repro.sim.system import System
        from dataclasses import replace

        cfg = replace(cohort_config([100, 100]), check_coherence=True)
        traces = [t([(0, "W", 1)]), t([(300, "W", 1)])]
        system = System(cfg, traces)
        system.kernel.schedule(100, system.PHASE_EFFECT,
                               lambda: system.set_theta(0, MSI_THETA))
        stats = system.run()
        # After the switch c0 behaves as MSI: c1's store is served without
        # waiting a full timer period.
        assert stats.core(1).max_request_latency < 100 + 2 * SW


class TestTDMTiming:
    """Precise slot-boundary behaviour of the PENDULUM arbiter."""

    def test_grants_only_at_slot_boundaries(self):
        from repro.sim.debug import ProtocolTracer
        from repro.sim.system import System
        from dataclasses import replace

        cfg = replace(pendulum_config([True, True], theta=50),
                      check_coherence=True)
        traces = [t([(3, "W", 1), (7, "W", 2)]), t([(5, "W", 3)])]
        system = System(cfg, traces)
        tracer = ProtocolTracer.attach(system)
        system.run()
        for grant in tracer.filter(kind="grant"):
            assert grant.cycle % SW == 0, grant.describe()

    def test_idle_slots_waste_time(self):
        """The same workload finishes later under TDM than under RROF."""
        traces = [t([(0, "W", 1), (5, "W", 2), (5, "W", 1)]),
                  t([(2, "W", 3), (5, "W", 4)])]
        tdm = run_checked(pendulum_config([True, True], theta=50), traces)[1]
        rrof = run_checked(cohort_config([50, 50]), traces)[1]
        assert tdm.execution_time > rrof.execution_time


class TestNonPerfectLLCScenarios:
    def test_back_invalidation_breaks_timed_residency(self):
        """An LLC eviction drops a timer-protected L1 line (inclusion)."""
        from dataclasses import replace
        from repro.params import CacheGeometry

        # A one-set, one-way LLC: every new line evicts the previous one.
        tiny = CacheGeometry(size_bytes=64, line_bytes=64, ways=1)
        cfg = replace(
            cohort_config([10_000]),
            perfect_llc=False,
            llc=tiny,
            check_coherence=True,
        )
        # Touch line 1, then line 2 (evicts 1 from the LLC and, by
        # inclusion, from the L1), then re-read line 1: must miss.
        traces = [t([(0, "W", 1), (300, "R", 2), (300, "R", 1)])]
        system, stats = run_checked(cfg, traces)
        assert stats.back_invalidations >= 1
        assert stats.core(0).misses == 3

    def test_dirty_back_invalidation_preserves_data(self):
        from dataclasses import replace
        from repro.params import CacheGeometry

        tiny = CacheGeometry(size_bytes=64, line_bytes=64, ways=1)
        cfg = replace(
            cohort_config([10_000, 10_000]),
            perfect_llc=False,
            llc=tiny,
            check_coherence=True,
        )
        # c0 dirties line 1; c1's traffic evicts it from the LLC; c0
        # re-reads it — the oracle verifies the write survived via DRAM.
        traces = [
            t([(0, "W", 1), (600, "R", 1)]),
            t([(200, "R", 2), (10, "R", 3)]),
        ]
        _, stats = run_checked(cfg, traces)
        assert stats.back_invalidations >= 1
        assert stats.dram_fetches >= 2


class TestMSIFCFSBaseline:
    def test_runs_and_is_coherent(self):
        traces = [
            t([(0, "W", 1), (3, "R", 2), (4, "W", 1)]),
            t([(1, "W", 1), (3, "R", 2), (4, "W", 1)]),
            t([(2, "R", 1), (3, "W", 3)]),
            t([(0, "R", 3), (10, "W", 2)]),
        ]
        _, stats = run_checked(msi_fcfs_config(4), traces)
        assert all(c.finish_cycle is not None for c in stats.cores)
