"""Unit tests for the genetic algorithm (repro.opt.ga)."""

import pytest

from repro.opt.ga import GAConfig, GeneticAlgorithm


class TestGAConfig:
    def test_defaults_valid(self):
        GAConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"tournament_size": 0},
            {"elitism": 99},
        ],
    )
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


def sphere(target):
    def fitness(genes):
        return sum((g - t) ** 2 for g, t in zip(genes, target))

    return fitness


class TestGeneticAlgorithm:
    def test_requires_genes(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm([], lambda g: 0.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm([(5, 1)], lambda g: 0.0)

    def test_finds_optimum_of_simple_quadratic(self):
        ga = GeneticAlgorithm(
            [(1, 1000)] * 2,
            sphere([400, 30]),
            GAConfig(population_size=40, generations=60, seed=2,
                     stall_generations=0),
        )
        result = ga.run()
        assert abs(result.best_genes[0] - 400) <= 40
        assert abs(result.best_genes[1] - 30) <= 10

    def test_genes_stay_within_bounds(self):
        seen = []

        def fitness(genes):
            seen.append(list(genes))
            return -sum(genes)  # push towards the upper bound

        ga = GeneticAlgorithm(
            [(3, 17), (100, 100)], fitness,
            GAConfig(population_size=10, generations=10, seed=0),
        )
        ga.run()
        for genes in seen:
            assert 3 <= genes[0] <= 17
            assert genes[1] == 100

    def test_history_is_monotone_non_increasing(self):
        ga = GeneticAlgorithm(
            [(1, 500)] * 3, sphere([100, 200, 300]),
            GAConfig(population_size=16, generations=25, seed=1),
        )
        result = ga.run()
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))
        assert result.best_fitness == result.history[-1]

    def test_initial_seeds_are_used(self):
        target = [123, 456]
        ga = GeneticAlgorithm(
            [(1, 1000)] * 2, sphere(target),
            GAConfig(population_size=8, generations=1, seed=0),
        )
        result = ga.run(initial=[target])
        assert result.best_fitness == 0.0
        assert result.best_genes == target

    def test_deterministic_for_same_seed(self):
        def run_once():
            ga = GeneticAlgorithm(
                [(1, 300)] * 2, sphere([50, 60]),
                GAConfig(population_size=12, generations=8, seed=42),
            )
            return ga.run()

        a, b = run_once(), run_once()
        assert a.best_genes == b.best_genes
        assert a.best_fitness == b.best_fitness

    def test_stall_stops_early(self):
        ga = GeneticAlgorithm(
            [(7, 7)], lambda g: 0.0,
            GAConfig(population_size=4, generations=100, stall_generations=3,
                     seed=0),
        )
        result = ga.run()
        assert result.generations_run <= 10

    def test_counts_evaluations(self):
        cfg = GAConfig(population_size=6, generations=3, stall_generations=0,
                       seed=0)
        ga = GeneticAlgorithm([(1, 9)], lambda g: g[0], cfg)
        result = ga.run()
        assert result.evaluations == 6 * 4  # initial + 3 generations
