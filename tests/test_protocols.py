"""Unit tests for the declarative protocol layer (repro.sim.protocols)."""

from dataclasses import replace

import pytest

from repro.params import MSI_THETA, MemOp, cohort_config, pmsi_config
from repro.sim.cache import LineState
from repro.sim.private_cache import PrivateCache
from repro.sim.protocols import (
    MSI,
    MSI_CLASSIFY,
    PMSI,
    TIMED_MSI,
    TIMED_MSI_SNOOP,
    AccessOutcome,
    CoherenceProtocol,
    HandoverAction,
    SnoopAction,
    TransitionTables,
    available_protocols,
    get_protocol,
    register,
    unregister,
)
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

from conftest import t


def make_cache(theta, protocol):
    from repro.params import CacheGeometry

    geom = CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1)
    return PrivateCache(0, geom, theta, protocol=protocol)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_protocols()
        assert {"timed_msi", "msi", "pmsi"} <= set(names)
        assert names == sorted(names)

    def test_get_protocol_resolves_builtins(self):
        assert get_protocol("timed_msi") is TIMED_MSI
        assert get_protocol("msi") is MSI
        assert get_protocol("pmsi") is PMSI

    def test_unknown_name_enumerates_available(self):
        with pytest.raises(ValueError) as exc:
            get_protocol("nosuch")
        msg = str(exc.value)
        assert "nosuch" in msg
        for name in available_protocols():
            assert name in msg

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(TIMED_MSI)

    def test_register_replace_and_unregister(self):
        clone = CoherenceProtocol("clone_for_test", TIMED_MSI.tables)
        try:
            assert register(clone) is clone
            assert get_protocol("clone_for_test") is clone
            other = CoherenceProtocol("clone_for_test", MSI.tables)
            register(other, replace=True)
            assert get_protocol("clone_for_test") is other
        finally:
            unregister("clone_for_test")
        assert "clone_for_test" not in available_protocols()
        unregister("clone_for_test")  # absent → no-op


class TestTableValidation:
    def test_classify_gap_rejected(self):
        partial = dict(MSI_CLASSIFY)
        del partial[(LineState.M, MemOp.STORE)]
        with pytest.raises(ValueError, match="classify table misses"):
            TransitionTables(
                classify=partial,
                snoop=TIMED_MSI_SNOOP,
                reader_handover=TIMED_MSI.tables.reader_handover,
            ).validate()

    def test_invalid_state_cannot_hit(self):
        bogus = dict(MSI_CLASSIFY)
        bogus[(LineState.I, MemOp.LOAD)] = AccessOutcome.HIT
        with pytest.raises(ValueError, match="invalid line cannot serve"):
            TransitionTables(
                classify=bogus,
                snoop=TIMED_MSI_SNOOP,
                reader_handover=TIMED_MSI.tables.reader_handover,
            ).validate()

    def test_snoop_gap_rejected(self):
        partial = dict(TIMED_MSI_SNOOP)
        del partial[(True, LineState.M)]
        with pytest.raises(ValueError, match="snoop table misses"):
            TransitionTables(
                classify=MSI_CLASSIFY,
                snoop=partial,
                reader_handover=TIMED_MSI.tables.reader_handover,
            ).validate()

    def test_handover_gap_rejected(self):
        with pytest.raises(ValueError, match="reader_handover table misses"):
            TransitionTables(
                classify=MSI_CLASSIFY,
                snoop=TIMED_MSI_SNOOP,
                reader_handover={False: HandoverAction.KEEP_SHARED},
            ).validate()

    def test_protocol_constructor_validates(self):
        with pytest.raises(ValueError):
            CoherenceProtocol(
                "broken",
                TransitionTables(classify={}, snoop={}, reader_handover={}),
            )


class TestDecisionPoints:
    def test_heterogeneous_theta_selects_rows(self):
        timed = make_cache(theta=10, protocol=TIMED_MSI)
        msi_core = make_cache(theta=MSI_THETA, protocol=TIMED_MSI)
        assert TIMED_MSI.core_is_timed(timed)
        assert not TIMED_MSI.core_is_timed(msi_core)
        timed.fill(0, LineState.M, cycle=0, version=0)
        msi_core.fill(0, LineState.M, cycle=0, version=0)
        assert TIMED_MSI.snoop_action(timed, LineState.M) is SnoopAction.TIMER
        assert (
            TIMED_MSI.snoop_action(msi_core, LineState.M)
            is SnoopAction.CONCEDE
        )
        assert TIMED_MSI.reader_handover(timed) is HandoverAction.INVALIDATE
        assert (
            TIMED_MSI.reader_handover(msi_core) is HandoverAction.KEEP_SHARED
        )

    def test_homogeneous_protocol_ignores_theta(self):
        timed_theta = make_cache(theta=10, protocol=MSI)
        assert not MSI.core_is_timed(timed_theta)
        assert MSI.snoop_action(timed_theta, LineState.S) is SnoopAction.INVALIDATE
        assert MSI.reader_handover(timed_theta) is HandoverAction.KEEP_SHARED

    def test_pmsi_invalidates_on_share_and_forces_via_llc(self):
        cache = make_cache(theta=MSI_THETA, protocol=PMSI)
        assert PMSI.reader_handover(cache) is HandoverAction.INVALIDATE
        assert PMSI.force_via_llc
        assert PMSI.via_llc(False) and PMSI.via_llc(True)
        assert not TIMED_MSI.via_llc(False)
        assert TIMED_MSI.via_llc(True)

    def test_classify_frozen_copy_reads_as_invalid(self):
        cache = make_cache(theta=10, protocol=TIMED_MSI)
        cache.fill(3, LineState.M, cycle=0, version=0)
        line = cache.lookup(3)
        line.pending_inv_since = 1
        line.handover_ready = True
        assert (
            TIMED_MSI.classify(cache, MemOp.LOAD, 3)
            is AccessOutcome.MISS_GETS
        )

    def test_builtins_use_standard_hits(self):
        assert TIMED_MSI.uses_standard_hits()
        assert MSI.uses_standard_hits()
        assert PMSI.uses_standard_hits()

    def test_nonstandard_hit_set_disables_fast_predicate(self):
        classify = dict(MSI_CLASSIFY)
        # A write-through-style table: stores to M are upgrades too.
        classify[(LineState.M, MemOp.STORE)] = AccessOutcome.UPGRADE
        proto = CoherenceProtocol(
            "narrow_hits",
            TransitionTables(
                classify=classify,
                snoop=TIMED_MSI_SNOOP,
                reader_handover=TIMED_MSI.tables.reader_handover,
            ),
        )
        assert not proto.uses_standard_hits()

    def test_repr_mentions_name_and_kind(self):
        assert "timed_msi" in repr(TIMED_MSI)
        assert "heterogeneous" in repr(TIMED_MSI)
        assert "homogeneous" in repr(MSI)


class TestProtocolSelectionEndToEnd:
    """A protocol is selectable purely via config — no engine edits."""

    def test_pmsi_runs_via_registry_with_oracle(self):
        traces = [
            t([(0, "W", 0), (2, "R", 1)]),
            t([(1, "R", 0), (2, "W", 1)]),
            t([(3, "R", 0)]),
            t([(4, "W", 0)]),
        ]
        config = replace(pmsi_config(4), check_coherence=True)
        assert config.protocol == "pmsi"
        stats = run_simulation(config, traces)
        assert all(stats.core(i).accesses for i in range(4))

    def test_pmsi_spills_through_llc_where_msi_does_not(self):
        traces = splash_traces("ocean", 4, scale=0.5, seed=0)
        pmsi_stats = run_simulation(pmsi_config(4), traces)
        msi_stats = run_simulation(
            replace(pmsi_config(4), protocol="msi"), traces
        )
        assert pmsi_stats.writebacks > 0
        assert msi_stats.writebacks == 0
        # The via-LLC round trips make PMSI strictly slower.
        assert pmsi_stats.final_cycle > msi_stats.final_cycle

    def test_third_party_protocol_needs_no_system_edits(self):
        """Register a new protocol and select it by name only."""
        clone = CoherenceProtocol(
            "timed_msi_clone",
            TIMED_MSI.tables,
            heterogeneous=True,
            description="registry round-trip test clone",
        )
        register(clone)
        try:
            traces = splash_traces("ocean", 4, scale=0.25, seed=1)
            config = cohort_config([60] * 4)
            base = run_simulation(config, traces)
            cloned = run_simulation(
                replace(config, protocol="timed_msi_clone"), traces
            )
            assert cloned.final_cycle == base.final_cycle
            assert [c.hits for c in cloned.cores] == [
                c.hits for c in base.cores
            ]
        finally:
            unregister("timed_msi_clone")

    def test_unknown_protocol_in_config_fails_at_build(self):
        from repro.sim.system import System

        config = replace(cohort_config([60] * 4), protocol="bogus")
        with pytest.raises(ValueError, match="available:"):
            System(config, [t([]) for _ in range(4)])
