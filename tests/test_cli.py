"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "-b", "nope"])

    def test_fig5_config_choices(self):
        args = build_parser().parse_args(["fig5", "--config", "2cr_2ncr"])
        assert args.config == "2cr_2ncr"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--config", "bogus"])

    def test_protocol_accepts_registered_names(self):
        args = build_parser().parse_args(
            ["simulate", "-b", "water", "--protocol", "pmsi"]
        )
        assert args.protocol == "pmsi"

    def test_unknown_protocol_error_enumerates_available(self, capsys):
        from repro.sim.protocols import available_protocols

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "-b", "water", "--protocol", "nosuch"]
            )
        err = capsys.readouterr().err
        assert "nosuch" in err
        for name in available_protocols():
            assert name in err


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CoHoRT" in out and "Challenge" not in out

    def test_simulate_small(self, capsys):
        rc = main(
            ["simulate", "-b", "water", "-t", "50", "20", "20", "-1",
             "--scale", "0.3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "WCML (bound)" in out

    def test_optimize_small(self, capsys):
        rc = main(
            ["optimize", "-b", "water", "--scale", "0.3",
             "--population", "6", "--generations", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimized thetas" in out

    def test_table2_small(self, capsys):
        rc = main(
            ["table2", "-b", "water", "--scale", "0.3",
             "--population", "6", "--generations", "3"]
        )
        assert rc == 0
        assert "per-mode timers" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "write-shared" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "-b", "water", "--scale", "0.3",
                   "--sweep", "1", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "guaranteed hits" in out and "co-runner WCL" in out

    def test_headroom(self, capsys):
        rc = main(["headroom", "-b", "water", "--scale", "0.3",
                   "--population", "6", "--generations", "2"])
        assert rc == 0
        assert "max tightening" in capsys.readouterr().out

    def test_trace_generate_and_inspect(self, capsys, tmp_path):
        out = str(tmp_path / "traces")
        assert main(["trace", "generate", "-b", "water", "-o", out,
                     "--scale", "0.3"]) == 0
        files = sorted(str(p) for p in (tmp_path / "traces").glob("*.npz"))
        assert len(files) == 4
        assert main(["trace", "inspect"] + files) == 0
        assert "write ratio" in capsys.readouterr().out

    def test_trace_generate_csv(self, tmp_path):
        out = str(tmp_path / "csv")
        assert main(["trace", "generate", "-b", "water", "-o", out,
                     "--format", "csv", "--scale", "0.3", "--cores", "2"]) == 0
        assert len(list((tmp_path / "csv").glob("*.csv"))) == 2

    def test_simulate_from_trace_files(self, capsys, tmp_path):
        out = str(tmp_path / "t")
        main(["trace", "generate", "-b", "water", "-o", out, "--cores", "2",
              "--scale", "0.3"])
        files = sorted(str(p) for p in (tmp_path / "t").glob("*.npz"))
        assert main(["simulate", "--trace-files"] + files +
                    ["-t", "50", "-1"]) == 0
        assert "trace files" in capsys.readouterr().out

    def test_simulate_trace_file_count_mismatch(self, tmp_path):
        out = str(tmp_path / "t")
        main(["trace", "generate", "-b", "water", "-o", out, "--cores", "2",
              "--scale", "0.3"])
        files = sorted(str(p) for p in (tmp_path / "t").glob("*.npz"))
        with pytest.raises(SystemExit):
            main(["simulate", "--trace-files"] + files + ["-t", "50"])

    def test_fig5_single_benchmark(self, capsys):
        rc = main(
            ["fig5", "-b", "water", "--scale", "0.3",
             "--population", "6", "--generations", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PENDULUM" in out and "bound ratios" in out


class TestTelemetryCommands:
    def test_simulate_trace_and_metrics_out(self, capsys, tmp_path):
        import json

        from repro.obs import classify, validate_trace_events

        trace = tmp_path / "run.trace.json"
        report = tmp_path / "run.metrics.json"
        rc = main(
            ["simulate", "-b", "water", "--scale", "0.3",
             "--trace-out", str(trace), "--metrics-out", str(report),
             "--sample-every", "100"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "WCML blame" in out
        trace_doc = json.loads(trace.read_text())
        assert validate_trace_events(trace_doc) == []
        report_doc = json.loads(report.read_text())
        assert classify(report_doc) == "run_report"
        assert report_doc["metrics"]["samples"]

    def test_metrics_summarises_run_report(self, capsys, tmp_path):
        report = tmp_path / "run.metrics.json"
        main(["simulate", "-b", "water", "--scale", "0.3",
              "--metrics-out", str(report)])
        capsys.readouterr()
        assert main(["metrics", str(report)]) == 0
        out = capsys.readouterr().out
        assert "run report" in out and "WCML=" in out

    def test_optimize_metrics_out_round_trips(self, capsys, tmp_path):
        from repro.obs import load_jsonl

        path = tmp_path / "ga.jsonl"
        rc = main(
            ["optimize", "-b", "water", "--scale", "0.3",
             "--population", "6", "--generations", "3",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        rows = load_jsonl(str(path))
        assert rows and rows[0]["generation"] == 0
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        assert "GA generation log" in capsys.readouterr().out

    def test_fig6_metrics_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        rc = main(
            ["fig6", "-b", "water", "--scale", "0.3",
             "--population", "6", "--generations", "2",
             "--metrics-out", str(path)]
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["label"] == "fig6:all_cr"
        assert doc["runner"]["jobs_executed"] >= 0
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        assert "sweep metrics" in capsys.readouterr().out

    def test_metrics_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "junk.bin"
        bad.write_text("not { json")
        assert main(["metrics", str(bad)]) == 1
        assert "neither JSON nor JSONL" in capsys.readouterr().err

    def test_metrics_missing_file(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 1


class TestFaultsCommand:
    def test_faults_small_campaign(self, capsys, tmp_path):
        import json

        out = tmp_path / "matrix.json"
        rc = main(
            ["faults", "-b", "water", "--campaigns", "7", "--seed", "0",
             "--scale", "0.25", "--json-out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "fault kind" in text and "silent_corruption" in text
        doc = json.loads(out.read_text())
        assert doc["totals"]["silent_corruption"] == 0
        assert len(doc["campaigns"]) == 7

    def test_faults_kind_filter(self, capsys):
        rc = main(
            ["faults", "-b", "water", "--campaigns", "2", "--scale", "0.25",
             "--kinds", "dram_jitter"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dram_jitter" in out
        assert "timer_flip" not in out

    def test_faults_rejects_unknown_kind(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--kinds", "gremlins"])

    def test_faults_nonzero_exit_on_silent_corruption(
        self, capsys, monkeypatch
    ):
        import repro.fi.campaign as campaign_mod

        monkeypatch.setattr(
            campaign_mod, "audit_system", lambda system: ["fabricated"]
        )
        rc = main(
            ["faults", "-b", "water", "--campaigns", "1", "--scale", "0.25",
             "--kinds", "dram_jitter"]
        )
        assert rc == 1
        assert "SILENT CORRUPTION" in capsys.readouterr().err


class TestSimulateDiagnostics:
    def test_coherence_violation_is_one_line_with_hint(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_mod
        from repro.sim.oracle import CoherenceViolationError

        def exploding(config, traces, **kw):
            raise CoherenceViolationError(
                "stale value", core=1, line=64, cycle=123
            )

        monkeypatch.setattr(cli_mod, "run_simulation", exploding)
        rc = main(["simulate", "-b", "water", "--scale", "0.25"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "coherence violation" in err
        assert "stale value" in err
        assert "--trace-out" in err

    def test_simulation_limit_is_one_line_with_hint(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_mod
        from repro.sim.kernel import SimulationLimitError

        def exploding(config, traces, **kw):
            raise SimulationLimitError("exceeded 100 cycles")

        monkeypatch.setattr(cli_mod, "run_simulation", exploding)
        rc = main(["simulate", "-b", "water", "--scale", "0.25"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "simulation limit" in err
        assert "--trace-out" in err

    def test_optimize_checkpoint_round_trip(self, capsys, tmp_path):
        ckpt = tmp_path / "ga.json"
        args = ["optimize", "-b", "water", "--scale", "0.3",
                "--population", "6", "--generations", "2",
                "--checkpoint", str(ckpt)]
        assert main(args) == 0
        assert ckpt.exists()
        first = capsys.readouterr().out
        assert main(args) == 0  # resumes (and re-reports) without error
        assert "optimized thetas" in capsys.readouterr().out
        assert "optimized thetas" in first
