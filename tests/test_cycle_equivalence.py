"""Cycle-equivalence regression against the pinned ocean×4 reference.

The layered refactor (protocol tables / memory backend / event bus) must
be *behaviour-preserving*: per-core cycle counts and stats on the
reference workloads are pinned byte-for-byte in
``tests/data/cycle_reference_ocean4.json`` and checked here for both
engines (inline hit batching on and off).  Any change to these numbers
is a protocol-timing change and needs a deliberate reference update.
"""

import json
from pathlib import Path

import pytest

from repro.params import cohort_config, msi_fcfs_config
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

REFERENCE = json.loads(
    (Path(__file__).parent / "data" / "cycle_reference_ocean4.json").read_text()
)

CONFIGS = {
    "cohort_theta60": lambda: cohort_config([60] * 4),
    "msi_fcfs": lambda: msi_fcfs_config(4),
}


def _traces():
    w = REFERENCE["workload"]
    assert w["kind"] == "splash:ocean"
    return splash_traces("ocean", w["cores"], scale=w["scale"], seed=w["seed"])


def _snapshot(stats):
    return {
        "final_cycle": stats.final_cycle,
        "bus_busy_cycles": stats.bus_busy_cycles,
        "bus_grants": dict(stats.bus_grants),
        "timer_expiries": stats.timer_expiries,
        "writebacks": stats.writebacks,
        "cores": [
            {
                "hits": c.hits,
                "misses": c.misses,
                "upgrades": c.upgrades,
                "runahead_hits": c.runahead_hits,
                "total_memory_latency": c.total_memory_latency,
                "max_request_latency": c.max_request_latency,
                "finish_cycle": c.finish_cycle,
            }
            for c in stats.cores
        ],
    }


@pytest.mark.parametrize("system_key", sorted(CONFIGS))
@pytest.mark.parametrize("fast_path", [True, False])
def test_reference_workload_cycles_exact(system_key, fast_path):
    """Both engines reproduce the pinned reference stats exactly."""
    stats = run_simulation(
        CONFIGS[system_key](), _traces(), fast_path=fast_path
    )
    assert _snapshot(stats) == REFERENCE["systems"][system_key]


@pytest.mark.parametrize("system_key", sorted(CONFIGS))
def test_reference_workload_cycles_exact_lockstep(system_key):
    """The lock-step engine reproduces the pinned reference too."""
    from repro.sim.lockstep import run_simulation_lockstep

    stats = run_simulation_lockstep(CONFIGS[system_key](), _traces())
    assert _snapshot(stats) == REFERENCE["systems"][system_key]


def test_reference_workload_cycles_exact_lockstep_batch():
    """One batched lock-step run serves both reference configs exactly."""
    from repro.sim.lockstep import run_lockstep_batch

    keys = sorted(CONFIGS)
    batch = run_lockstep_batch([CONFIGS[k]() for k in keys], _traces())
    for key, stats in zip(keys, batch):
        assert _snapshot(stats) == REFERENCE["systems"][key]


def test_reference_headline_cycles():
    """The headline numbers quoted across docs/CI stay what they are."""
    assert REFERENCE["systems"]["cohort_theta60"]["final_cycle"] == 76904
    assert REFERENCE["systems"]["msi_fcfs"]["final_cycle"] == 66496
