"""Tests for the Prometheus text exposition view (repro.obs.promexport).

Renders serve ``/metrics`` JSON documents as exposition text and checks
them with the in-repo parser, which enforces the invariants a real
scraper would (TYPE before samples, cumulative ``le`` buckets,
``+Inf == _count``).
"""

import math

import pytest

from repro.obs import parse_prometheus_text, prometheus_from_serve_metrics
from repro.obs.metrics import LatencyHistogram


def serve_doc(**overrides):
    """A minimal serve /metrics JSON document."""
    hist = LatencyHistogram()
    for wait in (3, 5, 5, 100):
        hist.add(wait)
    doc = {
        "label": "test-serve",
        "uptime_seconds": 12.5,
        "service": {
            "draining": False,
            "jobs_submitted": 10,
            "jobs_rejected": 2,
            "jobs_dispatched": 8,
            "jobs_completed": 7,
            "jobs_failed": 1,
            "batches": 3,
            "queue_depth": 0,
            "queue_limit": 64,
            "inflight": 0,
            "max_queue_depth": 5,
            "max_batch": 8,
            "retry_after": 1.0,
            "batch_sizes": LatencyHistogram().to_dict(),
            "queue_wait_ms": hist.to_dict(),
        },
        "runner": {
            "jobs": 2,
            "cache_hits": 4,
            "cache_misses": 4,
            "cache_hit_rate": 0.5,
            "jobs_executed": 4,
        },
    }
    doc.update(overrides)
    return doc


class TestExposition:
    def test_renders_and_parses_round_trip(self):
        text = prometheus_from_serve_metrics(serve_doc())
        families = parse_prometheus_text(text)
        assert families["cohort_serve_up"] == [
            ({"service": "test-serve"}, 1.0)
        ]
        assert families["cohort_serve_jobs_submitted_total"][0][1] == 10.0
        assert families["cohort_serve_queue_depth"][0][1] == 0.0
        assert families["cohort_runner_cache_hits_total"][0][1] == 4.0
        assert families["cohort_runner_cache_hit_rate"][0][1] == 0.5

    def test_draining_service_reports_down(self):
        doc = serve_doc()
        doc["service"]["draining"] = True
        families = parse_prometheus_text(prometheus_from_serve_metrics(doc))
        assert families["cohort_serve_up"][0][1] == 0.0

    def test_every_sample_carries_service_label(self):
        text = prometheus_from_serve_metrics(serve_doc(label="svc-A"))
        for name, rows in parse_prometheus_text(text).items():
            for labels, _ in rows:
                assert labels["service"] == "svc-A", name

    def test_histogram_buckets_are_cumulative_and_exact(self):
        text = prometheus_from_serve_metrics(serve_doc())
        families = parse_prometheus_text(text)
        buckets = families["cohort_serve_queue_wait_ms_bucket"]
        by_le = {labels["le"]: value for labels, value in buckets}
        # Observations 3, 5, 5, 100 → log2 buckets 2 (le=3), 3 (le=7),
        # 7 (le=127); cumulative counts are exact at those bounds.
        assert by_le["3.0"] == 1.0
        assert by_le["7.0"] == 3.0
        assert by_le["127.0"] == 4.0
        assert by_le["+Inf"] == 4.0
        assert families["cohort_serve_queue_wait_ms_sum"][0][1] == 113.0
        assert families["cohort_serve_queue_wait_ms_count"][0][1] == 4.0

    def test_empty_histogram_emits_inf_only(self):
        text = prometheus_from_serve_metrics(serve_doc())
        families = parse_prometheus_text(text)
        buckets = families["cohort_serve_batch_size_bucket"]
        assert [labels["le"] for labels, _ in buckets] == ["+Inf"]
        assert buckets[0][1] == 0.0

    def test_merged_histograms_expose_identical_series(self):
        """merge() is exact: merged exposition == directly-fed one."""
        left, right, direct = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for v in (1, 2, 300):
            left.add(v)
            direct.add(v)
        for v in (2, 64, 64):
            right.add(v)
            direct.add(v)
        merged = left.merge(right)
        doc_merged = serve_doc()
        doc_merged["service"]["queue_wait_ms"] = merged.to_dict()
        doc_direct = serve_doc()
        doc_direct["service"]["queue_wait_ms"] = direct.to_dict()
        assert (
            prometheus_from_serve_metrics(doc_merged)
            == prometheus_from_serve_metrics(doc_direct)
        )

    def test_label_escaping(self):
        text = prometheus_from_serve_metrics(
            serve_doc(label='we"ird\\label')
        )
        families = parse_prometheus_text(text)
        # The parser keeps escapes verbatim; the raw text must escape
        # both the quote and the backslash.
        assert r'service="we\"ird\\label"' in text
        assert families["cohort_serve_up"]

    def test_missing_fields_default_to_zero(self):
        families = parse_prometheus_text(
            prometheus_from_serve_metrics({"label": "bare"})
        )
        assert families["cohort_serve_jobs_submitted_total"][0][1] == 0.0
        assert families["cohort_runner_jobs"][0][1] == 0.0


class TestParserChecks:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_duplicate_type_rejected(self):
        text = (
            "# TYPE m counter\nm 1\n"
            "# TYPE m counter\nm 2\n"
        )
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_bad_type_kind_rejected(self):
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_prometheus_text("# TYPE m flavour\nm 1\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("# TYPE m gauge\n!bad line!\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus_text('# TYPE m gauge\nm{oops} 1\n')

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("# TYPE m gauge\nm over9000\n")

    def test_histogram_without_inf_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\n'
            "h_sum 1\nh_count 1\n"
        )
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            parse_prometheus_text(text)

    def test_histogram_non_cumulative_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_histogram_inf_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_inf_and_timestamp_tokens_parse(self):
        text = (
            "# TYPE m gauge\n"
            "m +Inf 1700000000\n"
        )
        families = parse_prometheus_text(text)
        assert math.isinf(families["m"][0][1])
