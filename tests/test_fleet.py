"""Tests for the shard fleet (repro.serve.fleet).

Unit tests cover the routing ring, the circuit breaker and the fleet's
Prometheus exposition without any processes.  Integration tests run a
real :class:`FleetThread` — actual ``cohort serve`` subprocesses under
a supervising router — and exercise the failure paths the fleet exists
for: a SIGKILLed shard mid-flight must lose nothing, and a restarting
endpoint must be survivable by a retrying client.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import FLEET_METRICS_SCHEMA
from repro.obs.promexport import (
    parse_prometheus_text,
    prometheus_from_fleet_metrics,
)
from repro.serve import (
    CircuitBreaker,
    FleetThread,
    HashRing,
    ServeClient,
    ServeClientError,
    ServerThread,
)

TINY = dict(benchmark="fft", thetas=[60, 20, 20, 20], scale=0.05, seed=0)


def tiny_specs(count):
    return [
        dict(TINY, thetas=[60 + 10 * i, 20, 20, 20]) for i in range(count)
    ]


class TestHashRing:
    def test_assignment_is_deterministic(self):
        ring = HashRing([0, 1, 2])
        keys = [f"job-{i}" for i in range(64)]
        first = [ring.assign(key) for key in keys]
        second = [ring.assign(key) for key in keys]
        assert first == second

    def test_spreads_keys_across_shards(self):
        ring = HashRing([0, 1, 2])
        owners = {ring.assign(f"job-{i}") for i in range(200)}
        assert owners == {0, 1, 2}

    def test_removing_a_shard_only_moves_its_keys(self):
        ring = HashRing([0, 1, 2])
        keys = [f"job-{i}" for i in range(200)]
        before = {key: ring.assign(key) for key in keys}
        after = {key: ring.assign(key, allowed={0, 1}) for key in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] in (0, 1)

    def test_empty_allowed_set_returns_none(self):
        ring = HashRing([0, 1])
        assert ring.assign("job", allowed=set()) is None

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestCircuitBreaker:
    def _clocked(self, **kwargs):
        now = [0.0]
        breaker = CircuitBreaker(clock=lambda: now[0], **kwargs)
        return breaker, now

    def test_trips_after_threshold_failures(self):
        breaker, _ = self._clocked(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allows()

    def test_cooldown_lets_one_probe_through(self):
        breaker, now = self._clocked(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allows()
        now[0] = 5.1
        assert breaker.allows()
        assert breaker.state == "half_open"

    def test_half_open_failure_doubles_cooldown(self):
        breaker, now = self._clocked(threshold=1, cooldown=2.0)
        breaker.record_failure()
        now[0] = 2.1
        assert breaker.allows()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.cooldown == 4.0
        now[0] = 2.1 + 3.9
        assert not breaker.allows()

    def test_success_closes_and_resets(self):
        breaker, now = self._clocked(threshold=1, cooldown=2.0)
        breaker.record_failure()
        now[0] = 2.1
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.cooldown == 2.0

    def test_cooldown_is_capped(self):
        breaker, now = self._clocked(
            threshold=1, cooldown=2.0, max_cooldown=5.0
        )
        for _ in range(5):
            breaker.record_failure()
            now[0] += breaker.cooldown + 0.1
            assert breaker.allows()
        assert breaker.cooldown <= 5.0


class TestSupervisorFailover:
    """Supervisor bookkeeping on the fault paths, without processes.

    These drive :meth:`ShardSupervisor._on_shard_down`, the dispatch
    chunk error paths, and the health loop directly against dead ports
    and hand-built job records — the cascading-failure orderings here
    are deterministic where the chaos soak's are not.
    """

    def _supervisor(self, tmp_path, shards=2, **kwargs):
        from repro.serve.fleet import ShardSupervisor

        sup = ShardSupervisor(
            shards=shards,
            fleet_dir=str(tmp_path / "fleet"),
            cache_dir=str(tmp_path / "cache"),
            **kwargs,
        )
        for shard in sup.shards:
            shard.state = "up"
        return sup

    def _admit_one(self, sup):
        import asyncio

        from repro.serve import JobSpec

        (record,) = asyncio.run(sup.submit([JobSpec.from_dict(TINY)]))
        return record

    def test_failed_over_job_survives_second_shard_death(self, tmp_path):
        # Admit on A, fail over to B, then kill B: the admit record
        # lives in A's journal, so replay must also sweep in-memory
        # jobs owned by B — the 202 must never be lost.
        sup = self._supervisor(tmp_path)
        record = self._admit_one(sup)
        a = record.shard
        b = 1 - a
        sup._on_shard_down(sup.shards[a], "test kill A")
        assert record.shard == b and record.status == "queued"
        sup.shards[a].state = "up"  # A restarted
        # B dispatched the job (its dispatch loop took it off the queue).
        sup._queues[b].remove(record)
        record.status = "dispatched"
        record.remote_id = "remote-1"
        sup._on_shard_down(sup.shards[b], "test kill B")
        assert record.status == "queued"
        assert record.shard == a
        assert record in sup._queues[a]
        assert record.failovers == 2

    def test_replay_skips_jobs_already_failed_over_elsewhere(self, tmp_path):
        # A's journal still holds the admit for a job that failed over
        # to B and is mid-flight there; A dying again must not reset it.
        sup = self._supervisor(tmp_path)
        record = self._admit_one(sup)
        a = record.shard
        b = 1 - a
        sup._on_shard_down(sup.shards[a], "test kill A")
        sup.shards[a].state = "up"  # A restarted
        sup._queues[b].remove(record)
        record.status = "dispatched"
        record.remote_id = "remote-1"
        failovers = record.failovers
        sup._on_shard_down(sup.shards[a], "test kill A again")
        assert record.status == "dispatched"
        assert record.shard == b
        assert record.failovers == failovers
        # A's queue may still hold a stale entry from the original
        # admit (dropped lazily by _take_chunk) — what matters is that
        # neither dispatch loop would pick the job up again.
        assert sup._take_chunk(a) == []
        assert record not in sup._queues[b]

    def _hand_built_chunk(self, sup, count):
        from repro.serve import JobSpec
        from repro.serve.fleet import FleetJob

        chunk = [
            FleetJob(
                id=f"job-{i}", spec=JobSpec.from_dict(TINY), shard=0,
                submitted_at=time.time(),
            )
            for i in range(count)
        ]
        for record in chunk:
            sup._jobs[record.id] = record
        return chunk

    def test_unreachable_shard_requeues_whole_chunk(self, tmp_path):
        # _take_chunk already removed the chunk from the queue; a POST
        # failure must put every still-queued member back, not just the
        # record that hit the error.
        from repro.serve.fleet import free_port

        sup = self._supervisor(tmp_path, shards=1)
        shard = sup.shards[0]
        shard.port = free_port()  # nothing listening
        chunk = self._hand_built_chunk(sup, 3)
        asyncio.run(sup._dispatch_chunk(shard, chunk))
        assert all(r.status == "queued" for r in chunk)
        assert [r.id for r in sup._queues[0]] == [r.id for r in chunk]

    def test_collect_retries_while_shard_marked_up(self, tmp_path):
        # A transient poll failure must not abandon dispatched jobs:
        # _collect keeps polling until the health loop flips the state,
        # at which point journal replay owns the records.
        from repro.serve.fleet import FleetJob, free_port

        sup = self._supervisor(tmp_path, shards=1, health_interval=0.05)
        shard = sup.shards[0]
        shard.port = free_port()
        (record,) = self._hand_built_chunk(sup, 1)
        record.status = "dispatched"
        record.remote_id = "remote-1"

        async def drive():
            task = asyncio.ensure_future(sup._collect(shard, [record]))
            await asyncio.sleep(0.4)
            assert not task.done(), "gave up on a dispatched job"
            shard.state = "down"
            await asyncio.wait_for(task, timeout=5)

        asyncio.run(drive())
        assert record.status == "dispatched"  # replay's job now

    def test_restarts_run_concurrently_per_shard(self, tmp_path):
        # A slow restart of one shard must not stop the health loop
        # noticing (and restarting) another.
        sup = self._supervisor(tmp_path, shards=2, health_interval=0.02)
        started = []

        async def slow_restart(shard):
            started.append(shard.index)
            await asyncio.sleep(30)

        sup._restart_shard = slow_restart
        for shard in sup.shards:
            shard.state = "down"

        async def drive():
            task = asyncio.ensure_future(sup._health_loop())
            try:
                deadline = asyncio.get_running_loop().time() + 2
                while (
                    len(started) < 2
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
            finally:
                task.cancel()
                for shard in sup.shards:
                    if shard.restart_task is not None:
                        shard.restart_task.cancel()
                await asyncio.gather(
                    task,
                    *(
                        s.restart_task
                        for s in sup.shards
                        if s.restart_task is not None
                    ),
                    return_exceptions=True,
                )

        asyncio.run(drive())
        assert sorted(started) == [0, 1]

    def test_spawn_timeout_kills_half_booted_child(self, tmp_path):
        # A child that boots too slowly must be killed when the spawn
        # window closes, not left running while a sibling is respawned.
        from repro.serve.fleet import free_port

        sup = self._supervisor(tmp_path, shards=1, spawn_timeout=0.5)
        shard = sup.shards[0]

        def fake_spawn(target):
            target.port = free_port()
            target.proc = subprocess.Popen(
                [sys.executable, "-c", "import time; time.sleep(60)"]
            )

        sup._spawn = fake_spawn
        with pytest.raises(RuntimeError):
            asyncio.run(sup._start_shard(shard))
        shard.proc.wait(timeout=10)  # raises TimeoutExpired if leaked
        assert shard.proc.poll() is not None


class TestFleetPrometheus:
    def _doc(self):
        return {
            "schema": FLEET_METRICS_SCHEMA,
            "label": "fleet",
            "uptime_seconds": 1.5,
            "fleet": {
                "shards_total": 2, "shards_up": 1, "draining": False,
                "admission_pending": 3, "admission_limit": 256,
                "jobs_submitted": 10, "jobs_completed": 7,
                "jobs_failed": 0, "jobs_rejected": 1, "failovers": 2,
                "replayed_jobs": 2, "restarts_total": 1, "recoveries": 1,
                "recovery_seconds_max": 1.25, "recovery_seconds_mean": 1.25,
                "journal_live": 3, "journal_torn_lines": 0,
                "cache": {
                    "evictions": 4, "evicted_bytes": 4096,
                    "quarantined": 1, "hits": 5, "misses": 5,
                    "size_bytes": 2048, "budget_bytes": 8192,
                },
            },
            "shards": [
                {"index": 0, "state": "up"},
                {"index": 1, "state": "down"},
            ],
        }

    def test_renders_parseable_exposition(self):
        text = prometheus_from_fleet_metrics(self._doc())
        samples = parse_prometheus_text(text)
        assert "cohort_fleet_jobs_submitted_total" in samples
        assert "cohort_fleet_failovers_total" in samples
        assert "cohort_fleet_cache_quarantined_total" in samples
        assert "cohort_fleet_shard_up" in samples

    def test_per_shard_up_gauge(self):
        text = prometheus_from_fleet_metrics(self._doc())
        assert 'cohort_fleet_shard_up{service="fleet",shard="0"} 1' in text
        assert 'cohort_fleet_shard_up{service="fleet",shard="1"} 0' in text


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    thread = FleetThread(
        shards=2,
        fleet_dir=str(root / "state"),
        cache_dir=str(root / "cache"),
        batch_window=0.02,
        health_interval=0.1,
        heartbeat_timeout=0.5,
        heartbeat_deadline=1.5,
        restart_backoff_base=0.2,
    )
    thread.start()
    yield thread
    thread.stop()


class TestFleetIntegration:
    def test_healthz_reports_all_shards_up(self, fleet):
        client = ServeClient(fleet.base_url)
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["shards_up"] == doc["shards_total"] == 2

    def test_round_trip_matches_direct_runner(self, fleet, tmp_path):
        from repro.runner import SweepRunner
        from repro.serve import JobSpec

        client = ServeClient(fleet.base_url, connect_retries=3)
        records = client.submit_and_wait([TINY], timeout=300)
        assert records[0]["status"] == "done"
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path / "ref"))
        direct = runner.run([JobSpec.from_dict(TINY).to_sweep_job()])[0]
        assert json.dumps(records[0]["result"], sort_keys=True) == (
            json.dumps(direct, sort_keys=True)
        )

    def test_metrics_document_shape(self, fleet):
        client = ServeClient(fleet.base_url)
        doc = client.metrics()
        assert doc["schema"] == FLEET_METRICS_SCHEMA
        assert doc["fleet"]["shards_total"] == 2
        assert len(doc["shards"]) == 2
        for shard in doc["shards"]:
            assert shard["journal"]["path"]

    def test_duplicate_specs_route_to_the_same_shard(self, fleet):
        client = ServeClient(fleet.base_url, connect_retries=3)
        first = client.submit([TINY])
        second = client.submit([TINY])
        client.wait([first[0]["id"], second[0]["id"]], timeout=300)
        assert (
            client.job(first[0]["id"])["shard"]
            == client.job(second[0]["id"])["shard"]
        )

    def test_sigkilled_shard_loses_no_accepted_jobs(self, fleet):
        client = ServeClient(fleet.base_url, connect_retries=5)
        accepted = client.submit(tiny_specs(6))
        ids = [doc["id"] for doc in accepted]
        victim = fleet.supervisor.shards[0]
        os.kill(victim.pid, signal.SIGKILL)
        records = client.wait(ids, timeout=300)
        assert all(
            records[job_id]["status"] == "done" for job_id in ids
        )
        # The supervisor must bring the dead shard back.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            doc = client.metrics()
            if all(s["state"] == "up" for s in doc["shards"]):
                break
            time.sleep(0.3)
        else:
            pytest.fail("killed shard was not restarted")
        fleet_doc = doc["fleet"]
        assert fleet_doc["restarts_total"] >= 1
        assert fleet_doc["recoveries"] >= 1
        assert fleet_doc["recovery_seconds_max"] > 0


class TestClientConnectRetry:
    def _free_port(self):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_no_retries_fails_fast_when_nothing_listens(self):
        port = self._free_port()
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(ServeClientError):
            client.healthz()

    def test_retries_exhausted_raises_serve_client_error(self):
        port = self._free_port()
        client = ServeClient(
            f"http://127.0.0.1:{port}", timeout=2.0,
            connect_retries=2, connect_backoff=0.01,
        )
        started = time.monotonic()
        with pytest.raises(ServeClientError, match="3 attempt"):
            client.healthz()
        # Two backoff sleeps must actually have happened.
        assert time.monotonic() - started >= 0.01

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", connect_retries=-1)

    def test_survives_server_arriving_late(self):
        """ECONNREFUSED during a shard restart window is retried."""
        port = self._free_port()
        server_box = []

        def bring_up():
            time.sleep(0.4)
            thread = ServerThread(port=port, batch_window=0.01)
            thread.start()
            server_box.append(thread)

        starter = threading.Thread(target=bring_up)
        starter.start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{port}", timeout=30.0,
                connect_retries=10, connect_backoff=0.1,
            )
            doc = client.healthz()
            assert doc["status"] == "ok"
            reconnects = client.oplog.event_counts.get("client_reconnect", 0)
            assert reconnects >= 1
        finally:
            starter.join()
            for thread in server_box:
                thread.stop()


class TestLastHealthyAge:
    def _supervisor(self, tmp_path):
        from repro.serve.fleet import ShardSupervisor

        return ShardSupervisor(
            shards=1,
            fleet_dir=str(tmp_path / "fleet"),
            cache_dir=str(tmp_path / "cache"),
        )

    def test_zero_monotonic_reading_is_a_real_age(self, tmp_path):
        # last_healthy == 0.0 is a legitimate monotonic timestamp (the
        # clock's epoch is arbitrary); only None means "never healthy".
        # The old truthiness test conflated the two and reported a
        # healthy shard as ageless.
        sup = self._supervisor(tmp_path)
        shard = sup.shards[0]
        shard.state = "up"
        shard.last_healthy = 0.0
        age = sup.metrics()["shards"][0]["last_healthy_age_s"]
        assert age is not None
        assert age > 0

    def test_never_healthy_reports_none(self, tmp_path):
        sup = self._supervisor(tmp_path)
        assert sup.shards[0].last_healthy is None
        assert sup.metrics()["shards"][0]["last_healthy_age_s"] is None

    def test_never_healthy_shard_misses_heartbeat_deadline(self, tmp_path):
        # A shard that never answered a single probe must be declared
        # down once probing starts failing — last_healthy=None cannot
        # be treated as "healthy at monotonic zero" (which, early after
        # boot, would sit inside the deadline window forever).
        sup = self._supervisor(tmp_path)
        shard = sup.shards[0]
        shard.state = "up"
        down = []
        sup._on_shard_down = lambda s, reason: down.append(reason)
        shard.proc_alive = lambda: True

        async def scenario():
            await sup._probe(shard)

        asyncio.run(scenario())
        assert down, "never-healthy shard survived a failed probe"


class TestAtomicFleetAdmission:
    def test_concurrent_oversize_submissions_cannot_both_pass(
        self, tmp_path, monkeypatch
    ):
        # submit() journals each job with an fsync on an executor
        # thread, so it yields between the admission check and the
        # record registrations.  Without reserve-before-await, two
        # concurrent 3-job submissions against admission_limit=4 both
        # read pending=0, both pass, and 6 jobs are admitted.  The
        # reservation makes exactly one lose.
        from repro.serve import JobSpec
        from repro.serve.fleet import (
            QueueFullError,
            ShardSupervisor,
            WriteAheadJournal,
        )

        sup = ShardSupervisor(
            shards=2,
            fleet_dir=str(tmp_path / "fleet"),
            cache_dir=str(tmp_path / "cache"),
            admission_limit=4,
        )
        for shard in sup.shards:
            shard.state = "up"

        real_admit = WriteAheadJournal.admit

        def slow_admit(self, job, shard):
            time.sleep(0.05)  # a slow disk widens the race window
            return real_admit(self, job, shard)

        monkeypatch.setattr(WriteAheadJournal, "admit", slow_admit)

        def burst(base):
            return [
                JobSpec.from_dict(dict(TINY, seed=base + i))
                for i in range(3)
            ]

        async def scenario():
            return await asyncio.gather(
                sup.submit(burst(0)),
                sup.submit(burst(100)),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        admitted = [r for r in results if isinstance(r, list)]
        assert len(rejected) == 1 and len(admitted) == 1, results
        assert sup._pending_count() == 3
        assert sup.jobs_submitted == 3
        assert sup.jobs_rejected == 3


class TestFleetMonotonicDurations:
    def test_wall_clock_step_cannot_corrupt_retire_duration(
        self, tmp_path, monkeypatch
    ):
        # Same NTP-step scenario as the serve-layer test, at the fleet
        # layer: duration_ms in the retire oplog event must come from
        # the monotonic clock.  Pre-fix it was wall-clock and clamped
        # with max(0, ...) — a forward step inflated it by the step.
        import repro.serve.fleet as fleet_mod
        from repro.obs import OpLogger
        from repro.serve import JobSpec

        class SteppedTime:
            def __init__(self):
                self._real = time
                self.offset = 0.0

            def time(self):
                return self._real.time() + self.offset

            def monotonic(self):
                return self._real.monotonic()

            def __getattr__(self, name):
                return getattr(self._real, name)

        clock = SteppedTime()
        monkeypatch.setattr(fleet_mod, "time", clock)
        oplog_path = tmp_path / "fleet.oplog.jsonl"
        sup = fleet_mod.ShardSupervisor(
            shards=1,
            fleet_dir=str(tmp_path / "fleet"),
            cache_dir=str(tmp_path / "cache"),
            oplog=OpLogger(path=str(oplog_path), component="fleet"),
        )
        sup.shards[0].state = "up"
        (record,) = asyncio.run(sup.submit([JobSpec.from_dict(TINY)]))
        clock.offset = 3600.0  # NTP steps +1h while the job is queued
        sup._finish(record, result={"final_cycle": 1})
        assert record.status == "done"
        assert sup._pending_count() == 0
        retires = [
            json.loads(line)
            for line in oplog_path.read_text().splitlines()
            if '"retire"' in line
        ]
        assert retires
        assert all(0 <= e["duration_ms"] < 60_000 for e in retires)
        # The journal/display stamp keeps wall time.
        assert record.finished_at - record.submitted_at >= 3600
