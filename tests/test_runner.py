"""Tests for the parallel sweep runner and its result cache."""

from dataclasses import replace

import pytest

from repro.params import cohort_config, msi_fcfs_config, pcc_config
from repro.runner import SweepJob, SweepRunner, stats_to_dict
from repro.sim.system import run_simulation
from repro.workloads import splash_traces


@pytest.fixture(scope="module")
def traces():
    return splash_traces("fft", 4, scale=0.3, seed=0)


def named_configs():
    return {
        "cohort": cohort_config([60, 20, 5, 120]),
        "msi": msi_fcfs_config(4),
        "pcc": pcc_config(4),
    }


class TestResultFidelity:
    def test_matches_direct_simulation(self, traces):
        cfg = cohort_config([60] * 4)
        runner = SweepRunner(jobs=1, cache_dir=None)
        result = runner.run_one(cfg, traces)
        stats = run_simulation(cfg, traces)
        assert result["final_cycle"] == stats.final_cycle
        assert result["execution_time"] == stats.execution_time
        for got, core in zip(result["cores"], stats.cores):
            assert got["hits"] == core.hits
            assert got["misses"] == core.misses
            assert got["total_memory_latency"] == core.total_memory_latency

    def test_stats_to_dict_is_json_native(self, traces):
        import json

        stats = run_simulation(cohort_config([60] * 4), traces)
        d = stats_to_dict(stats)
        assert json.loads(json.dumps(d)) == d


class TestParallelDeterminism:
    def test_jobs4_equals_jobs1(self, traces):
        serial = SweepRunner(jobs=1, cache_dir=None)
        parallel = SweepRunner(jobs=4, cache_dir=None)
        a = serial.run_systems(named_configs(), traces)
        b = parallel.run_systems(named_configs(), traces)
        assert a == b
        assert serial.cache_misses == parallel.cache_misses == 3

    def test_record_latencies_cross_process(self, traces):
        cfg = replace(cohort_config([60] * 4), check_coherence=True)
        a = SweepRunner(jobs=1, cache_dir=None).run_one(
            cfg, traces, record_latencies=True
        )
        b = SweepRunner(jobs=2, cache_dir=None).run_one(
            cfg, traces, record_latencies=True
        )
        assert a == b
        assert any(c["request_latencies"] for c in a["cores"])


class TestCache:
    def test_second_run_is_served_from_cache(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        first = SweepRunner(jobs=1, cache_dir=cache)
        a = first.run_systems(named_configs(), traces)
        assert (first.cache_hits, first.cache_misses) == (0, 3)
        second = SweepRunner(jobs=1, cache_dir=cache)
        b = second.run_systems(named_configs(), traces)
        assert (second.cache_hits, second.cache_misses) == (3, 0)
        assert a == b

    def test_in_memory_memo_within_one_runner(self, traces):
        runner = SweepRunner(jobs=1, cache_dir=None)
        cfg = cohort_config([60] * 4)
        a = runner.run_one(cfg, traces)
        b = runner.run_one(cfg, traces)
        assert a == b
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)

    def test_key_depends_on_config_and_traces(self, traces):
        cfg = cohort_config([60] * 4)
        base = SweepJob(cfg, tuple(traces)).digest()
        assert SweepJob(cohort_config([61] + [60] * 3), tuple(traces)).digest() != base
        assert SweepJob(cfg, tuple(traces[:3]) + (traces[0],)).digest() != base
        assert (
            SweepJob(replace(cfg, check_coherence=True), tuple(traces)).digest()
            != base
        )
        assert SweepJob(cfg, tuple(traces), record_latencies=True).digest() != base
        assert SweepJob(cfg, tuple(traces)).digest() == base

    def test_corrupt_cache_entry_is_recomputed(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        cfg = cohort_config([60] * 4)
        first = SweepRunner(jobs=1, cache_dir=cache)
        a = first.run_one(cfg, traces)
        key = SweepJob(cfg, tuple(traces)).digest()
        path = tmp_path / "sweeps" / f"{key}.json"
        path.write_text("{not json")
        second = SweepRunner(jobs=1, cache_dir=cache)
        b = second.run_one(cfg, traces)
        assert a == b
        assert second.cache_misses == 1

    def test_rejects_invalid_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_results_carry_stats_schema_version(self, traces):
        from repro.sim.stats import STATS_SCHEMA_VERSION

        result = SweepRunner(jobs=1, cache_dir=None).run_one(
            cohort_config([60] * 4), traces
        )
        assert result["schema"] == STATS_SCHEMA_VERSION

    def test_digest_depends_on_stats_schema_version(self, traces, monkeypatch):
        """A stats-schema bump must invalidate on-disk cache entries."""
        import repro.runner as runner_mod

        cfg = cohort_config([60] * 4)
        base = SweepJob(cfg, tuple(traces)).digest()
        monkeypatch.setattr(
            runner_mod, "STATS_SCHEMA_VERSION",
            runner_mod.STATS_SCHEMA_VERSION + 1,
        )
        assert SweepJob(cfg, tuple(traces)).digest() != base

    def test_stale_schema_cache_entry_is_not_replayed(self, traces, tmp_path,
                                                      monkeypatch):
        """Entries written under an older schema miss instead of serving
        dicts that lack the new telemetry fields."""
        import repro.runner as runner_mod

        cache = str(tmp_path / "sweeps")
        cfg = cohort_config([60] * 4)
        monkeypatch.setattr(runner_mod, "STATS_SCHEMA_VERSION", 1)
        old = SweepRunner(jobs=1, cache_dir=cache)
        old.run_one(cfg, traces)
        assert old.cache_misses == 1
        monkeypatch.undo()
        new = SweepRunner(jobs=1, cache_dir=cache)
        result = new.run_one(cfg, traces)
        assert new.cache_misses == 1  # the v1 entry did not hit
        assert result["schema"] == runner_mod.STATS_SCHEMA_VERSION

    def test_telemetry_counters(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        runner = SweepRunner(jobs=1, cache_dir=cache)
        runner.run_systems(named_configs(), traces)
        runner.run_systems(named_configs(), traces)
        tel = runner.telemetry()
        assert tel["cache_misses"] == 3
        assert tel["cache_hits"] == 3
        assert tel["cache_hit_rate"] == 0.5
        assert tel["jobs_executed"] == 3
        assert tel["exec_seconds"] > 0.0
        assert tel["parallel_batches"] == 0


class TestWithinBatchDedup:
    def test_duplicate_jobs_in_one_batch_execute_once(self, traces):
        job = SweepJob(cohort_config([60] * 4), tuple(traces))
        runner = SweepRunner(jobs=1, cache_dir=None)
        a, b, c = runner.run([job, job, job])
        assert a == b == c
        assert runner.cache_misses == 1
        assert runner.cache_hits == 2
        assert runner.jobs_executed == 1


class TestCacheStoreFailures:
    def test_unserialisable_result_reraises_and_leaves_no_tmp(self, tmp_path):
        # Regression: a TypeError from json.dump used to be swallowed by
        # an `except OSError` that never matched, leaking the mkstemp
        # temp file and silently dropping the store.
        import os

        cache = str(tmp_path / "sweeps")
        runner = SweepRunner(jobs=1, cache_dir=cache)
        with pytest.raises(TypeError):
            runner._cache_store("0" * 16, {"final_cycle": object()})
        assert [n for n in os.listdir(cache) if n.endswith(".tmp")] == []
        tel = runner.telemetry()
        assert tel["cache_store_failures"] == 1
        assert "TypeError" in tel["cache_store_last_error"]

    def test_os_error_is_swallowed_but_counted(self, tmp_path, monkeypatch):
        import os

        cache = str(tmp_path / "sweeps")
        runner = SweepRunner(jobs=1, cache_dir=cache)

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        runner._cache_store("0" * 16, {"final_cycle": 1})  # must not raise
        tel = runner.telemetry()
        assert tel["cache_store_failures"] == 1
        assert "disk full" in tel["cache_store_last_error"]
        monkeypatch.undo()
        assert [n for n in os.listdir(cache) if n.endswith(".tmp")] == []
        # The in-memory copy still serves this runner.
        assert runner._memory["0" * 16] == {"final_cycle": 1}

    def test_orphan_tmp_swept_at_init(self, tmp_path):
        cache = tmp_path / "sweeps"
        cache.mkdir(parents=True)
        (cache / "deadbeef.tmp").write_text("partial store from a crash")
        (cache / "entry.json").write_text("{}")
        runner = SweepRunner(jobs=1, cache_dir=str(cache))
        assert runner.cache_tmp_swept == 1
        assert runner.telemetry()["cache_tmp_swept"] == 1
        assert not (cache / "deadbeef.tmp").exists()
        assert (cache / "entry.json").exists()


def _race_worker(cache_dir, barrier, out_queue):
    # Module-level so the "fork"/"spawn" child can import it.
    import json

    traces = splash_traces("fft", 4, scale=0.2, seed=0)
    cfg = cohort_config([60, 20, 5, 120])
    runner = SweepRunner(jobs=1, cache_dir=cache_dir)
    barrier.wait(timeout=60)
    result = runner.run_one(cfg, traces)
    out_queue.put(json.dumps(result, sort_keys=True))


class TestCacheContention:
    def test_two_runners_race_on_same_key(self, tmp_path):
        # The exact contention pattern `cohort serve` creates: two runner
        # processes, same cache dir, same job digest, simultaneous runs.
        # Both must succeed and agree byte-for-byte.
        import json
        import multiprocessing

        cache = tmp_path / "sweeps"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        out_queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_worker, args=(str(cache), barrier, out_queue)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        payloads = [out_queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert payloads[0] == payloads[1]

        traces = splash_traces("fft", 4, scale=0.2, seed=0)
        cfg = cohort_config([60, 20, 5, 120])
        direct = SweepRunner(jobs=1, cache_dir=None).run_one(cfg, traces)
        assert json.loads(payloads[0]) == direct

        # Exactly one envelope survives, it is valid, and no temp files
        # were left behind by the losing writer.
        files = sorted(cache.glob("*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["result"] == direct
        assert doc["digest"] == files[0].name[: -len(".json")]
        assert list(cache.glob("*.tmp")) == []
        # A fresh runner replays the surviving envelope as a hit.
        reader = SweepRunner(jobs=1, cache_dir=str(cache))
        assert reader.run_one(cfg, traces) == direct
        assert reader.cache_hits == 1 and reader.cache_misses == 0


class TestExperimentIntegration:
    def test_wcml_experiment_parallel_equals_serial(self, traces):
        from repro.experiments.wcml import run_wcml_experiment
        from repro.opt import GAConfig

        ga = GAConfig(population_size=6, generations=3, seed=1)
        kwargs = dict(critical=[True, True, False, False], scale=0.3,
                      ga_config=ga)
        serial = run_wcml_experiment(
            "fft", runner=SweepRunner(jobs=1, cache_dir=None), **kwargs
        )
        parallel = run_wcml_experiment(
            "fft", runner=SweepRunner(jobs=4, cache_dir=None), **kwargs
        )
        assert serial.to_dict() == parallel.to_dict()

    def test_performance_benchmark_parallel_equals_serial(self, traces):
        from repro.experiments.performance import run_performance_benchmark
        from repro.opt import GAConfig

        ga = GAConfig(population_size=6, generations=3, seed=1)
        kwargs = dict(critical=[True] * 4, scale=0.3, ga_config=ga)
        serial = run_performance_benchmark(
            "fft", runner=SweepRunner(jobs=1, cache_dir=None), **kwargs
        )
        parallel = run_performance_benchmark(
            "fft", runner=SweepRunner(jobs=4, cache_dir=None), **kwargs
        )
        assert serial.execution_time == parallel.execution_time
        assert serial.bus_utilization == parallel.bus_utilization
