"""Tests for the parallel sweep runner and its result cache."""

from dataclasses import replace

import pytest

from repro.params import cohort_config, msi_fcfs_config, pcc_config
from repro.runner import SweepJob, SweepRunner, stats_to_dict
from repro.sim.system import run_simulation
from repro.workloads import splash_traces


@pytest.fixture(scope="module")
def traces():
    return splash_traces("fft", 4, scale=0.3, seed=0)


def named_configs():
    return {
        "cohort": cohort_config([60, 20, 5, 120]),
        "msi": msi_fcfs_config(4),
        "pcc": pcc_config(4),
    }


class TestResultFidelity:
    def test_matches_direct_simulation(self, traces):
        cfg = cohort_config([60] * 4)
        runner = SweepRunner(jobs=1, cache_dir=None)
        result = runner.run_one(cfg, traces)
        stats = run_simulation(cfg, traces)
        assert result["final_cycle"] == stats.final_cycle
        assert result["execution_time"] == stats.execution_time
        for got, core in zip(result["cores"], stats.cores):
            assert got["hits"] == core.hits
            assert got["misses"] == core.misses
            assert got["total_memory_latency"] == core.total_memory_latency

    def test_stats_to_dict_is_json_native(self, traces):
        import json

        stats = run_simulation(cohort_config([60] * 4), traces)
        d = stats_to_dict(stats)
        assert json.loads(json.dumps(d)) == d


class TestParallelDeterminism:
    def test_jobs4_equals_jobs1(self, traces):
        serial = SweepRunner(jobs=1, cache_dir=None)
        parallel = SweepRunner(jobs=4, cache_dir=None)
        a = serial.run_systems(named_configs(), traces)
        b = parallel.run_systems(named_configs(), traces)
        assert a == b
        assert serial.cache_misses == parallel.cache_misses == 3

    def test_record_latencies_cross_process(self, traces):
        cfg = replace(cohort_config([60] * 4), check_coherence=True)
        a = SweepRunner(jobs=1, cache_dir=None).run_one(
            cfg, traces, record_latencies=True
        )
        b = SweepRunner(jobs=2, cache_dir=None).run_one(
            cfg, traces, record_latencies=True
        )
        assert a == b
        assert any(c["request_latencies"] for c in a["cores"])


class TestCache:
    def test_second_run_is_served_from_cache(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        first = SweepRunner(jobs=1, cache_dir=cache)
        a = first.run_systems(named_configs(), traces)
        assert (first.cache_hits, first.cache_misses) == (0, 3)
        second = SweepRunner(jobs=1, cache_dir=cache)
        b = second.run_systems(named_configs(), traces)
        assert (second.cache_hits, second.cache_misses) == (3, 0)
        assert a == b

    def test_in_memory_memo_within_one_runner(self, traces):
        runner = SweepRunner(jobs=1, cache_dir=None)
        cfg = cohort_config([60] * 4)
        a = runner.run_one(cfg, traces)
        b = runner.run_one(cfg, traces)
        assert a == b
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)

    def test_key_depends_on_config_and_traces(self, traces):
        cfg = cohort_config([60] * 4)
        base = SweepJob(cfg, tuple(traces)).digest()
        assert SweepJob(cohort_config([61] + [60] * 3), tuple(traces)).digest() != base
        assert SweepJob(cfg, tuple(traces[:3]) + (traces[0],)).digest() != base
        assert (
            SweepJob(replace(cfg, check_coherence=True), tuple(traces)).digest()
            != base
        )
        assert SweepJob(cfg, tuple(traces), record_latencies=True).digest() != base
        assert SweepJob(cfg, tuple(traces)).digest() == base

    def test_corrupt_cache_entry_is_recomputed(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        cfg = cohort_config([60] * 4)
        first = SweepRunner(jobs=1, cache_dir=cache)
        a = first.run_one(cfg, traces)
        key = SweepJob(cfg, tuple(traces)).digest()
        path = tmp_path / "sweeps" / f"{key}.json"
        path.write_text("{not json")
        second = SweepRunner(jobs=1, cache_dir=cache)
        b = second.run_one(cfg, traces)
        assert a == b
        assert second.cache_misses == 1

    def test_rejects_invalid_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_results_carry_stats_schema_version(self, traces):
        from repro.sim.stats import STATS_SCHEMA_VERSION

        result = SweepRunner(jobs=1, cache_dir=None).run_one(
            cohort_config([60] * 4), traces
        )
        assert result["schema"] == STATS_SCHEMA_VERSION

    def test_digest_depends_on_stats_schema_version(self, traces, monkeypatch):
        """A stats-schema bump must invalidate on-disk cache entries."""
        import repro.runner as runner_mod

        cfg = cohort_config([60] * 4)
        base = SweepJob(cfg, tuple(traces)).digest()
        monkeypatch.setattr(
            runner_mod, "STATS_SCHEMA_VERSION",
            runner_mod.STATS_SCHEMA_VERSION + 1,
        )
        assert SweepJob(cfg, tuple(traces)).digest() != base

    def test_stale_schema_cache_entry_is_not_replayed(self, traces, tmp_path,
                                                      monkeypatch):
        """Entries written under an older schema miss instead of serving
        dicts that lack the new telemetry fields."""
        import repro.runner as runner_mod

        cache = str(tmp_path / "sweeps")
        cfg = cohort_config([60] * 4)
        monkeypatch.setattr(runner_mod, "STATS_SCHEMA_VERSION", 1)
        old = SweepRunner(jobs=1, cache_dir=cache)
        old.run_one(cfg, traces)
        assert old.cache_misses == 1
        monkeypatch.undo()
        new = SweepRunner(jobs=1, cache_dir=cache)
        result = new.run_one(cfg, traces)
        assert new.cache_misses == 1  # the v1 entry did not hit
        assert result["schema"] == runner_mod.STATS_SCHEMA_VERSION

    def test_telemetry_counters(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        runner = SweepRunner(jobs=1, cache_dir=cache)
        runner.run_systems(named_configs(), traces)
        runner.run_systems(named_configs(), traces)
        tel = runner.telemetry()
        assert tel["cache_misses"] == 3
        assert tel["cache_hits"] == 3
        assert tel["cache_hit_rate"] == 0.5
        assert tel["jobs_executed"] == 3
        assert tel["exec_seconds"] > 0.0
        assert tel["parallel_batches"] == 0


class TestExperimentIntegration:
    def test_wcml_experiment_parallel_equals_serial(self, traces):
        from repro.experiments.wcml import run_wcml_experiment
        from repro.opt import GAConfig

        ga = GAConfig(population_size=6, generations=3, seed=1)
        kwargs = dict(critical=[True, True, False, False], scale=0.3,
                      ga_config=ga)
        serial = run_wcml_experiment(
            "fft", runner=SweepRunner(jobs=1, cache_dir=None), **kwargs
        )
        parallel = run_wcml_experiment(
            "fft", runner=SweepRunner(jobs=4, cache_dir=None), **kwargs
        )
        assert serial.to_dict() == parallel.to_dict()

    def test_performance_benchmark_parallel_equals_serial(self, traces):
        from repro.experiments.performance import run_performance_benchmark
        from repro.opt import GAConfig

        ga = GAConfig(population_size=6, generations=3, seed=1)
        kwargs = dict(critical=[True] * 4, scale=0.3, ga_config=ga)
        serial = run_performance_benchmark(
            "fft", runner=SweepRunner(jobs=1, cache_dir=None), **kwargs
        )
        parallel = run_performance_benchmark(
            "fft", runner=SweepRunner(jobs=4, cache_dir=None), **kwargs
        )
        assert serial.execution_time == parallel.execution_time
        assert serial.bus_utilization == parallel.bus_utilization
