"""Tests for the hardened shared cache tier (repro.runner).

The disk cache is shared by every shard in a fleet, so it must defend
itself: corrupt or mislabelled envelopes are moved to ``.quarantine/``
(evidence preserved, slot re-executed), a byte budget evicts
least-recently-used entries under a cross-process lock, and every
defensive action is visible in telemetry and the oplog.
"""

import io
import json
import os
import time

import pytest

from repro.obs.ops import OpLogger
from repro.runner import (
    CACHE_VERSION,
    QUARANTINE_DIR,
    SweepRunner,
)
from repro.serve import JobSpec

TINY = dict(benchmark="fft", thetas=[60, 20, 20, 20], scale=0.05, seed=0)


def tiny_job(offset=0):
    spec = dict(TINY, thetas=[60 + 10 * offset, 20, 20, 20])
    return JobSpec.from_dict(spec).to_sweep_job()


def populate(cache_dir, offset=0):
    """Run one tiny job against ``cache_dir``; return (digest, result)."""
    job = tiny_job(offset)
    runner = SweepRunner(jobs=1, cache_dir=cache_dir)
    (result,) = runner.run([job])
    return job.digest(), result


def entry_path(cache_dir, digest):
    return os.path.join(cache_dir, f"{digest}.json")


def quarantined_files(cache_dir):
    quarantine = os.path.join(cache_dir, QUARANTINE_DIR)
    if not os.path.isdir(quarantine):
        return []
    return sorted(os.listdir(quarantine))


class TestQuarantine:
    def test_truncated_file_is_quarantined_and_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, expected = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        raw = open(path).read()
        with open(path, "w") as fh:
            fh.write(raw[: len(raw) // 2])

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        (result,) = runner.run([tiny_job()])
        assert json.dumps(result, sort_keys=True) == (
            json.dumps(expected, sort_keys=True)
        )
        assert runner.cache_quarantined == 1
        assert runner.cache_misses == 1
        # Evidence preserved, slot rewritten with a fresh entry.
        assert len(quarantined_files(cache_dir)) == 1
        assert os.path.exists(path)
        assert json.load(open(path))["digest"] == digest

    def test_envelope_missing_keys_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        with open(path, "w") as fh:
            json.dump({"digest": "not-the-right-digest"}, fh)

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        runner.run([tiny_job()])
        assert runner.cache_quarantined == 1
        assert len(quarantined_files(cache_dir)) == 1

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        """A cache file renamed to another job's digest must not hit."""
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        doc = json.load(open(path))
        doc["digest"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(doc, fh)

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        runner.run([tiny_job()])
        assert runner.cache_quarantined == 1
        assert runner.cache_hits == 0

    def test_non_object_payload_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        with open(path, "w") as fh:
            json.dump([1, 2, 3], fh)

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        runner.run([tiny_job()])
        assert runner.cache_quarantined == 1

    def test_stale_schema_is_a_clean_miss_not_quarantine(self, tmp_path):
        """An envelope from an older cache era is stale, not damaged."""
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        doc = json.load(open(path))
        doc["cache_version"] = CACHE_VERSION - 1
        with open(path, "w") as fh:
            json.dump(doc, fh)

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        runner.run([tiny_job()])
        assert runner.cache_quarantined == 0
        assert quarantined_files(cache_dir) == []
        # Overwritten in place by the fresh store.
        assert json.load(open(path))["cache_version"] == CACHE_VERSION

    def test_quarantine_emits_an_oplog_event(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        with open(entry_path(cache_dir, digest), "w") as fh:
            fh.write("{ torn")

        oplog = OpLogger(stream=io.StringIO(), component="runner")
        runner = SweepRunner(jobs=1, cache_dir=cache_dir, oplog=oplog)
        runner.run([tiny_job()])
        assert oplog.event_counts.get("cache_quarantine") == 1

    def test_quarantined_files_leave_the_entry_scan(self, tmp_path):
        """``.quarantine/`` contents never count against the budget."""
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        with open(entry_path(cache_dir, digest), "w") as fh:
            fh.write("garbage")
        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        assert runner._cache_load(digest) is None
        # One fresh entry scan: only the (now absent) *.json files.
        assert runner.cache_size_bytes() == 0


class TestCacheBudget:
    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(
                jobs=1, cache_dir=str(tmp_path), cache_budget_bytes=-1
            )

    def test_zero_budget_means_unbounded(self, tmp_path):
        cache_dir = str(tmp_path)
        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        runner.run([tiny_job(i) for i in range(3)])
        assert runner.cache_evictions == 0
        assert len(os.listdir(cache_dir)) >= 3

    def test_budget_evicts_down_to_the_limit(self, tmp_path):
        cache_dir = str(tmp_path)
        # Size one entry first, then rerun with a two-entry budget.
        digest, _ = populate(cache_dir)
        entry_size = os.path.getsize(entry_path(cache_dir, digest))
        budget = int(entry_size * 2.5)

        runner = SweepRunner(
            jobs=1, cache_dir=cache_dir, cache_budget_bytes=budget
        )
        runner.run([tiny_job(i) for i in range(5)])
        assert runner.cache_evictions >= 2
        assert runner.cache_evicted_bytes >= 2 * entry_size * 0.5
        assert runner.cache_size_bytes() <= budget

    def test_eviction_is_least_recently_used(self, tmp_path):
        cache_dir = str(tmp_path)
        digests = [populate(cache_dir, i)[0] for i in range(3)]
        # Pin explicit mtimes: digests[1] is the oldest.
        now = time.time()
        order = {digests[1]: now - 300, digests[0]: now - 200,
                 digests[2]: now - 100}
        for digest, mtime in order.items():
            os.utime(entry_path(cache_dir, digest), (mtime, mtime))

        sizes = {
            digest: os.path.getsize(entry_path(cache_dir, digest))
            for digest in digests
        }
        budget = sizes[digests[0]] + sizes[digests[2]]
        runner = SweepRunner(
            jobs=1, cache_dir=cache_dir, cache_budget_bytes=budget
        )
        runner._enforce_cache_budget()
        assert not os.path.exists(entry_path(cache_dir, digests[1]))
        assert os.path.exists(entry_path(cache_dir, digests[0]))
        assert os.path.exists(entry_path(cache_dir, digests[2]))

    def test_keep_key_survives_even_over_budget(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        runner = SweepRunner(
            jobs=1, cache_dir=cache_dir, cache_budget_bytes=1
        )
        runner._enforce_cache_budget(keep_key=digest)
        assert os.path.exists(entry_path(cache_dir, digest))

    def test_load_touches_mtime_for_lru(self, tmp_path):
        """Loads refresh an entry so LRU is by *use*, not by write."""
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        path = entry_path(cache_dir, digest)
        stale = time.time() - 3600
        os.utime(path, (stale, stale))

        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        assert runner._cache_load(digest) is not None
        assert os.path.getmtime(path) > stale + 1800

    def test_eviction_emits_an_oplog_event(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        entry_size = os.path.getsize(entry_path(cache_dir, digest))
        oplog = OpLogger(stream=io.StringIO(), component="runner")
        runner = SweepRunner(
            jobs=1, cache_dir=cache_dir,
            cache_budget_bytes=int(entry_size * 1.5), oplog=oplog,
        )
        runner.run([tiny_job(i) for i in range(3)])
        assert oplog.event_counts.get("cache_evict", 0) >= 1

    def test_memory_memo_survives_disk_eviction(self, tmp_path):
        """The budget governs the shared disk tier, not warm memos."""
        cache_dir = str(tmp_path)
        job = tiny_job()
        runner = SweepRunner(jobs=1, cache_dir=cache_dir)
        (first,) = runner.run([job])
        os.unlink(entry_path(cache_dir, job.digest()))
        (second,) = runner.run([job])
        assert first == second
        assert runner.cache_hits == 1
        assert runner.jobs_executed == 1


class TestTelemetry:
    def test_counters_surface_in_telemetry(self, tmp_path):
        cache_dir = str(tmp_path)
        digest, _ = populate(cache_dir)
        with open(entry_path(cache_dir, digest), "w") as fh:
            fh.write("garbage")
        entry_size = 4096
        runner = SweepRunner(
            jobs=1, cache_dir=cache_dir, cache_budget_bytes=entry_size
        )
        runner.run([tiny_job()])
        doc = runner.telemetry()
        assert doc["cache_quarantined"] == 1
        assert doc["cache_budget_bytes"] == entry_size
        assert doc["cache_size_bytes"] <= entry_size
        assert "cache_evictions" in doc
        assert "cache_evicted_bytes" in doc
