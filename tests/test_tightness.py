"""Unit tests for the bound-tightness experiment (repro.experiments.tightness)."""

import pytest

from repro.params import MSI_THETA
from repro.experiments.tightness import (
    TightnessResult,
    adversarial_traces,
    measure_tightness,
)


class TestAdversarialTraces:
    def test_everyone_stores_the_same_line(self):
        traces = adversarial_traces(4, target_core=2, line_index=9)
        assert len(traces) == 4
        for tr in traces:
            assert len(tr) == 1
            assert tr[0].addr == 9 * 64
            assert tr[0].op.name == "STORE"

    def test_target_issues_last(self):
        traces = adversarial_traces(4, target_core=2)
        gaps = [tr[0].gap for tr in traces]
        assert gaps[2] == max(gaps)
        assert all(g == 0 for i, g in enumerate(gaps) if i != 2)


class TestMeasureTightness:
    def test_never_exceeds_bound(self):
        for thetas in ([50, 50, 50], [200, MSI_THETA, 30], [MSI_THETA] * 3):
            for target in range(3):
                r = measure_tightness(thetas, target)
                assert r.measured <= r.bound
                assert 0.0 < r.tightness <= 1.0

    def test_last_core_in_chain_is_tightest(self):
        results = [measure_tightness([100] * 4, t) for t in range(4)]
        assert results[3].tightness == max(r.tightness for r in results)

    def test_substantial_fraction_exercised(self):
        r = measure_tightness([100] * 4, target_core=3)
        assert r.tightness > 0.5

    def test_result_fields(self):
        r = measure_tightness([10, 10], 1)
        assert isinstance(r, TightnessResult)
        assert r.target_core == 1
        assert r.thetas == [10, 10]
