"""Failure injection: the library must fail loudly, not wrongly.

Exercises the defensive paths: the coherence oracle catching injected
corruption, configuration validation, simulation safety valves, and
misuse of the run-time APIs.
"""

from dataclasses import replace

import pytest

from repro.params import MSI_THETA, CacheGeometry, SimConfig, cohort_config
from repro.sim.cache import LineState
from repro.sim.kernel import SimulationLimitError
from repro.sim.system import CoherenceViolationError, System

from conftest import t


class TestOracleCatchesInjectedBugs:
    def test_corrupted_version_detected_on_read(self):
        """Flip a cached line's data version behind the protocol's back."""
        traces = [t([(0, "W", 1), (100, "R", 1)])]
        config = replace(cohort_config([100]), check_coherence=True)
        system = System(config, traces)

        def corrupt():
            line = system.caches[0].lookup(1)
            if line is not None:
                line.version += 40  # bit-flip / stale-data injection

        # The write fills at cycle 54; the re-read issues at cycle 100.
        system.kernel.schedule(60, system.PHASE_EFFECT, corrupt)
        with pytest.raises(CoherenceViolationError):
            system.run()

    def test_illegal_second_copy_detected_on_write(self):
        """Force a phantom copy into another cache: single-writer breaks."""
        traces = [t([(0, "W", 1), (30, "W", 1)]), t([(100, "R", 5)])]
        config = replace(cohort_config([100, 100]), check_coherence=True)
        system = System(config, traces)

        def inject():
            slot = system.caches[1].array.slot(1)
            slot.line_addr = 1
            slot.state = LineState.S
            slot.fill_cycle = system.kernel.now

        system.kernel.schedule(20, system.PHASE_EFFECT, inject)
        with pytest.raises(CoherenceViolationError):
            system.run()

    def test_store_in_shared_state_detected(self):
        traces = [t([(0, "R", 1), (10, "R", 1)])]
        config = replace(cohort_config([100]), check_coherence=True)
        system = System(config, traces)

        def inject():
            # Pretend the controller mistakenly performs a write in S.
            line = system.caches[0].lookup(1)
            if line is not None:
                with pytest.raises(CoherenceViolationError):
                    system._perform_write(0, line)

        system.kernel.schedule(60, system.PHASE_EFFECT, inject)
        system.run()


class TestConfigurationValidation:
    def test_trace_count_mismatch(self):
        with pytest.raises(ValueError):
            System(cohort_config([10, 10]), [t([(0, "R", 1)])])

    def test_system_single_use(self):
        system = System(cohort_config([10]), [t([(0, "R", 1)])])
        system.run()
        with pytest.raises(RuntimeError):
            system.run()

    def test_set_theta_validation_at_runtime(self):
        system = System(cohort_config([10]), [t([(0, "R", 1)])])
        with pytest.raises(ValueError):
            system.set_theta(0, 0)

    def test_switch_to_unprogrammed_mode_is_noop_per_core(self):
        """Cores without a LUT entry keep their θ (partial deployments)."""
        system = System(cohort_config([10, 20]), [t([]), t([])])
        system.caches[0].lut.program(2, MSI_THETA)
        system.switch_mode(2)
        assert system.caches[0].theta == MSI_THETA
        assert system.caches[1].theta == 20  # untouched


class TestSafetyValves:
    def test_max_cycles_aborts_runaway(self):
        # A one-cycle budget cannot complete a 54-cycle miss.
        config = replace(cohort_config([10]), max_cycles=10)
        system = System(config, [t([(0, "R", 1)])])
        with pytest.raises(SimulationLimitError):
            system.run()

    def test_zero_runahead_window_is_valid(self):
        config = replace(cohort_config([10]), runahead_window=0)
        stats = System(config, [t([(0, "R", 1), (0, "R", 1)])]).run()
        assert stats.core(0).hits == 1

    def test_negative_runahead_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(runahead_window=-1)

    def test_negative_dram_latency_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(dram_latency=-1)


class TestOracleOffByDefault:
    def test_injection_unnoticed_without_oracle(self):
        """check_coherence=False really does disable the checks."""
        traces = [t([(0, "W", 1), (5, "R", 1)])]
        system = System(cohort_config([100]), traces)  # oracle off

        def corrupt():
            line = system.caches[0].lookup(1)
            if line is not None:
                line.version += 40

        system.kernel.schedule(60, system.PHASE_EFFECT, corrupt)
        system.run()  # silently completes: benchmarking mode


class TestDegenerateWorkloads:
    def test_all_cores_empty(self):
        stats = System(cohort_config([10, 10]), [t([]), t([])]).run()
        assert stats.final_cycle == 0

    def test_single_access_every_core_same_line(self):
        traces = [t([(0, "W", 1)]) for _ in range(4)]
        config = replace(cohort_config([1, 1, 1, 1]), check_coherence=True)
        stats = System(config, traces).run()
        assert sum(c.misses for c in stats.cores) == 4

    def test_huge_gap(self):
        traces = [t([(1_000_000, "R", 1)])]
        stats = System(cohort_config([10]), traces).run()
        assert stats.core(0).finish_cycle >= 1_000_000

    def test_tiny_l1(self):
        tiny = CacheGeometry(size_bytes=2 * 64, line_bytes=64, ways=1)
        config = replace(
            cohort_config([10, 10]), l1=tiny, check_coherence=True
        )
        traces = [
            t([(0, "W", i % 5) for i in range(30)]),
            t([(0, "R", i % 5) for i in range(30)]),
        ]
        stats = System(config, traces).run()
        assert stats.core(0).accesses == 30
