"""Unit tests for cache storage structures (repro.sim.cache)."""

import pytest

from repro.params import CacheGeometry
from repro.sim.cache import (
    CacheLine,
    DirectMappedArray,
    LineState,
    SetAssociativeArray,
)


class TestCacheLine:
    def test_invalid_by_default(self):
        line = CacheLine()
        assert not line.valid
        assert not line.can_serve(store=False)

    def test_can_serve_loads_in_s_and_m(self):
        line = CacheLine(line_addr=1, state=LineState.S)
        assert line.can_serve(store=False)
        assert not line.can_serve(store=True)
        line.state = LineState.M
        assert line.can_serve(store=True)

    def test_frozen_line_serves_nothing(self):
        line = CacheLine(line_addr=1, state=LineState.M)
        line.pending_inv_since = 10
        line.handover_ready = True
        assert line.frozen
        assert not line.can_serve(store=False)
        assert not line.can_serve(store=True)

    def test_downgrade_handover_still_serves(self):
        """A line conceded to a *reader* keeps serving until the transfer."""
        line = CacheLine(line_addr=1, state=LineState.M)
        line.pending_inv_since = 10
        line.pending_is_downgrade = True
        line.handover_ready = True
        assert not line.frozen
        assert line.can_serve(store=False)
        assert line.can_serve(store=True)

    def test_invalidate_clears_everything_and_bumps_generation(self):
        line = CacheLine(line_addr=1, state=LineState.M, dirty=True)
        line.pending_inv_since = 5
        gen = line.generation
        line.invalidate()
        assert line.state == LineState.I
        assert not line.dirty
        assert line.pending_inv_since is None
        assert line.generation == gen + 1


class TestDirectMappedArray:
    def geom(self):
        return CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1)

    def test_rejects_set_associative(self):
        with pytest.raises(ValueError):
            DirectMappedArray(CacheGeometry(size_bytes=8 * 64, ways=2, line_bytes=64))

    def test_lookup_miss_on_empty(self):
        arr = DirectMappedArray(self.geom())
        assert arr.lookup(0) is None

    def test_fill_then_lookup(self):
        arr = DirectMappedArray(self.geom())
        slot = arr.install(5, LineState.S)
        assert arr.lookup(5) is slot

    def test_conflicting_lines_share_slot(self):
        arr = DirectMappedArray(self.geom())
        slot = arr.slot(1)
        assert arr.slot(5) is slot  # 1 and 5 map to set 1 of 4

    def test_victim_detection(self):
        arr = DirectMappedArray(self.geom())
        slot = arr.install(1, LineState.M)
        assert arr.victim(5) is slot
        assert arr.victim(1) is None  # same line: no victim

    def test_valid_lines_count(self):
        arr = DirectMappedArray(self.geom())
        assert len(arr) == 0
        arr.install(2, LineState.S)
        assert len(arr) == 1

    def test_len_is_maintained_not_scanned(self):
        """__len__ is an O(1) maintained counter, kept in sync by every
        sanctioned mutation path (install / invalidate / re-install)."""
        arr = DirectMappedArray(self.geom())
        arr.install(0, LineState.S)
        arr.install(1, LineState.M)
        assert len(arr) == 2
        assert len(arr) == sum(1 for _ in arr.valid_lines())
        # Invalidation through the line decrements via the owner backref.
        arr.slot(0).invalidate()
        assert len(arr) == 1
        # Double-invalidate must not double-decrement.
        arr.slot(0).invalidate()
        assert len(arr) == 1
        # Conflict install replaces the resident line: net count unchanged.
        arr.install(5, LineState.S)  # 5 maps to set 1, displacing line 1
        assert len(arr) == 1
        assert arr.lookup(1) is None and arr.lookup(5) is not None
        # Re-install of the same address keeps the count stable.
        arr.install(5, LineState.M)
        assert len(arr) == 1
        assert len(arr) == sum(1 for _ in arr.valid_lines())

    def test_install_to_invalid_state(self):
        arr = DirectMappedArray(self.geom())
        arr.install(3, LineState.M)
        assert len(arr) == 1
        arr.install(3, LineState.I)
        assert len(arr) == 0
        assert arr.lookup(3) is None

    def test_unowned_line_invalidate_is_safe(self):
        line = CacheLine(line_addr=7, state=LineState.S)
        line.invalidate()  # no owner array: must not raise
        assert not line.valid


class TestSetAssociativeArray:
    def geom(self):
        return CacheGeometry(size_bytes=2 * 2 * 64, line_bytes=64, ways=2)

    def test_insert_and_lookup(self):
        arr = SetAssociativeArray(self.geom())
        assert arr.insert(0, cycle=1) is None
        assert arr.lookup(0, cycle=2) is not None

    def test_insert_same_line_touches_not_evicts(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        assert arr.insert(0, cycle=5) is None
        assert arr.occupancy() == 1

    def test_lru_eviction(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)   # set 0
        arr.insert(2, cycle=2)   # set 0 (2 % 2 == 0)
        arr.lookup(0, cycle=3)   # touch 0: 2 becomes LRU
        victim = arr.insert(4, cycle=4)
        assert victim is not None and victim.line_addr == 2

    def test_peek_victim_matches_insert(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        arr.insert(2, cycle=2)
        assert arr.peek_victim(4) == 0
        victim = arr.insert(4, cycle=3)
        assert victim.line_addr == 0

    def test_peek_victim_none_when_space(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        assert arr.peek_victim(2) is None
        assert arr.peek_victim(0) is None  # already resident

    def test_remove(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        removed = arr.remove(0)
        assert removed is not None
        assert arr.lookup(0, 2) is None
        assert arr.remove(0) is None

    def test_occupancy_is_maintained_counter(self):
        """occupancy() is O(1): insert/evict/remove keep it in sync."""
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        arr.insert(2, cycle=2)
        assert arr.occupancy() == 2
        arr.insert(4, cycle=3)  # evicts LRU of set 0: net unchanged
        assert arr.occupancy() == 2
        arr.insert(1, cycle=4)  # set 1 had space
        assert arr.occupancy() == 3
        arr.remove(4)
        assert arr.occupancy() == 2
        arr.remove(4)  # absent: no change
        assert arr.occupancy() == 2
        assert arr.occupancy() == sum(len(s) for s in arr._sets)

    def test_untouch_lookup_does_not_update_lru(self):
        arr = SetAssociativeArray(self.geom())
        arr.insert(0, cycle=1)
        arr.insert(2, cycle=2)
        arr.lookup(0, cycle=9, touch=False)
        victim = arr.insert(4, cycle=10)
        assert victim.line_addr == 0  # still the LRU despite the peek
