"""Unit tests for the memory backend layer (repro.sim.backend)."""

from dataclasses import replace

import pytest

from repro.params import CacheGeometry, cohort_config, msi_fcfs_config
from repro.sim.backend import LLCWithDRAM, MemoryBackend, PerfectLLC, build_backend
from repro.sim.debug import ProtocolTracer
from repro.sim.dram import FixedLatencyDRAM
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

from conftest import run_checked, t


def build(config):
    return build_backend(config, FixedLatencyDRAM(config.dram_latency))


def tiny_llc_config(**kwargs):
    """Non-perfect 2-line LLC: misses and inclusion victims galore."""
    kwargs.setdefault("perfect_llc", False)
    kwargs.setdefault(
        "llc", CacheGeometry(size_bytes=2 * 64, line_bytes=64, ways=2)
    )
    kwargs.setdefault("dram_latency", 20)
    return replace(cohort_config([60] * 2), **kwargs)


class TestBuildBackend:
    def test_perfect_config_builds_perfect_backend(self):
        backend = build(cohort_config([60] * 4))
        assert isinstance(backend, PerfectLLC)
        assert backend.name == "perfect_llc"
        assert backend.llc.perfect

    def test_nonperfect_config_builds_dram_backend(self):
        backend = build(tiny_llc_config())
        assert isinstance(backend, LLCWithDRAM)
        assert backend.name == "llc_with_dram"
        assert backend.dram.latency == 20

    def test_abstract_probe_is_abstract(self):
        config = cohort_config([60] * 2)
        backend = MemoryBackend(config, build(config).llc)
        with pytest.raises(NotImplementedError):
            backend.ready_for_read(0)


class TestPerfectBackend:
    def test_always_ready_and_versioned(self):
        backend = build(cohort_config([60] * 4))
        assert backend.ready_for_read(12345)
        assert backend.version(12345) == 0
        backend.snarf(12345, 7, cycle=3)
        assert backend.version(12345) == 7

    def test_pending_writeback_blocks_sourcing(self):
        """A buffered write-back holds the freshest data for its line."""
        config = cohort_config([60] * 2)
        system = System(config, [t([]), t([])])
        backend = system.backend
        backend.enqueue_writeback(0, line_addr=5, version=3)
        assert backend.has_pending_writeback(5)
        assert not backend.ready_for_read(5)
        assert backend.ready_for_read(6)
        system.kernel.run(max_cycles=1000, until=lambda: False)
        assert not backend.has_pending_writeback(5)
        assert backend.ready_for_read(5)
        assert backend.version(5) == 3

    def test_duplicate_writeback_asserts(self):
        system = System(cohort_config([60] * 2), [t([]), t([])])
        system.backend.enqueue_writeback(0, line_addr=5, version=1)
        with pytest.raises(AssertionError):
            system.backend.enqueue_writeback(1, line_addr=5, version=2)


class TestWritebackDisciplines:
    def _spill_traces(self):
        # Lines 0 and 4 collide in the 4-set direct-mapped L1 below, so
        # each store evicts the previous line dirty; the following read
        # of the evicted line then *depends* on the write-back draining
        # (the backend refuses to source a line with a buffered
        # write-back), keeping every drain inside the simulated window.
        return [
            t([(0, "W", 0), (1, "W", 4), (1, "R", 0), (1, "R", 4)]),
            t([]),
        ]

    def _config(self, wb_on_bus):
        # runahead_window=0: each access waits for the previous miss, so
        # the reads really observe the evictions (no runahead hits).
        return replace(
            msi_fcfs_config(2),
            l1=CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1),
            wb_on_bus=wb_on_bus,
            runahead_window=0,
        )

    @pytest.mark.parametrize("wb_on_bus", [False, True])
    def test_dirty_eviction_emits_writeback_events(self, wb_on_bus):
        system = System(self._config(wb_on_bus), self._spill_traces())
        tracer = ProtocolTracer.attach(system)
        stats = system.run()
        wbs = tracer.filter(kind="writeback")
        dones = tracer.filter(kind="wb_done")
        assert stats.writebacks == len(wbs) > 0
        assert len(dones) == len(wbs)
        assert all(ev.payload["on_bus"] == wb_on_bus for ev in wbs)
        assert system.events.counts["writeback"] == len(wbs)

    def test_wb_on_bus_occupies_bus_slots(self):
        off = run_simulation(self._config(False), self._spill_traces())
        on = run_simulation(self._config(True), self._spill_traces())
        assert on.bus_grants.get("WRITEBACK", 0) > 0
        assert off.bus_grants.get("WRITEBACK", 0) == 0
        assert on.bus_busy_cycles > off.bus_busy_cycles


class TestDRAMBackend:
    def test_cold_miss_fetches_then_ready(self):
        config = tiny_llc_config()
        system = System(config, [t([]), t([])])
        backend = system.backend
        assert not backend.ready_for_read(0)  # starts the fetch
        assert system.events.counts["dram_fetch"] == 1
        assert not backend.ready_for_read(0)  # no duplicate fetch
        assert system.events.counts["dram_fetch"] == 1
        system.kernel.run(max_cycles=1000, until=lambda: False)
        assert backend.ready_for_read(0)

    def test_llc_eviction_back_invalidates_l1_copies(self):
        """Inclusion: an LLC victim's L1 copies are dropped, dirty data kept."""
        traces = [
            t([(0, "W", 0), (20, "R", 1), (20, "R", 2), (20, "R", 3)]),
            t([]),
        ]
        system, stats = run_checked(tiny_llc_config(), traces)
        counts = system.events.counts
        assert counts.get("back_invalidate", 0) > 0
        assert stats.back_invalidations == counts["back_invalidate"]
        assert stats.dram_fetches == counts["dram_fetch"]
        # The dirty line-0 version survived the back-invalidation to DRAM.
        assert system.backend.dram.peek_version(0) == 1

    def test_events_match_stats_on_real_workload(self):
        traces = splash_traces("ocean", 2, scale=0.25, seed=0)
        config = tiny_llc_config(
            llc=CacheGeometry(size_bytes=8 * 64, line_bytes=64, ways=2)
        )
        system, stats = run_checked(config, traces)
        counts = system.events.counts
        assert stats.dram_fetches == counts.get("dram_fetch", 0) > 0
        assert stats.back_invalidations == counts.get("back_invalidate", 0)
        assert stats.layer_counts().get("backend", 0) >= stats.dram_fetches

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_dram_backend_engines_agree(self, fast_path):
        traces = splash_traces("fft", 2, scale=0.25, seed=3)
        config = tiny_llc_config()
        stats = run_simulation(config, traces, fast_path=fast_path)
        reference = run_simulation(config, traces, fast_path=True)
        assert stats.final_cycle == reference.final_cycle
        assert [c.hits for c in stats.cores] == [
            c.hits for c in reference.cores
        ]
