"""Tests for the protocol tracer (repro.sim.debug)."""

from repro.params import MSI_THETA, cohort_config
from repro.sim.debug import ProtocolTracer, event_kinds, trace_run
from repro.sim.system import System

from conftest import t


def traced_system():
    traces = [
        t([(0, "W", 1), (5, "R", 1), (10, "R", 2)]),
        t([(30, "W", 1)]),
    ]
    system = System(cohort_config([40, 40]), traces)
    tracer = ProtocolTracer.attach(system)
    return system, tracer


class TestProtocolTracer:
    def test_captures_all_kinds(self):
        system, tracer = traced_system()
        system.run()
        counts = tracer.counts()
        assert counts["miss"] >= 3
        assert counts["fill"] == counts["miss"]
        assert counts["hit"] >= 1
        assert counts["grant"] > 0
        assert counts["timer_expiry"] >= 1

    def test_filter_by_core_and_line(self):
        system, tracer = traced_system()
        system.run()
        core1 = tracer.filter(core=1)
        assert core1 and all(ev.core == 1 for ev in core1)
        line1 = tracer.filter(line=1)
        assert line1 and all(ev.line == 1 for ev in line1)
        assert tracer.filter(kind="fill", core=1, line=1)

    def test_filter_by_time_window(self):
        system, tracer = traced_system()
        system.run()
        early = tracer.filter(until=10)
        late = tracer.filter(since=11)
        assert len(early) + len(late) == len(tracer.events)

    def test_worst_fill(self):
        system, tracer = traced_system()
        system.run()
        worst = tracer.worst_fill(core=1)
        assert worst is not None
        # c1's store waited for c0's 40-cycle timer.
        assert worst.payload["latency"] > 40

    def test_render_contains_events(self):
        system, tracer = traced_system()
        system.run()
        out = tracer.render(kind="fill")
        assert "fill" in out and "latency" in out

    def test_render_limit(self):
        system, tracer = traced_system()
        system.run()
        out = tracer.render(limit=2)
        assert "showing last 2" in out

    def test_explain_latency(self):
        system, tracer = traced_system()
        system.run()
        out = tracer.explain_latency(core=1, min_latency=40)
        assert "fill of line 1" in out
        assert "timer_expiry" in out

    def test_explain_latency_no_match(self):
        system, tracer = traced_system()
        system.run()
        assert "no matching fills" in tracer.explain_latency(0, 10**9)

    def test_max_events_bounds_memory(self):
        traces = [t([(0, "R", i) for i in range(20)])]
        system = System(cohort_config([10]), traces)
        tracer = ProtocolTracer.attach(system, max_events=5)
        system.run()
        assert len(tracer.events) == 5

    def test_trace_run_helper(self):
        traces = [t([(0, "W", 1)])]
        system = System(cohort_config([MSI_THETA]), traces)
        tracer = trace_run(system)
        assert tracer.counts()["fill"] == 1

    def test_no_listeners_no_overhead(self):
        traces = [t([(0, "W", 1)])]
        system = System(cohort_config([10]), traces)
        system.run()  # simply must not fail without listeners

    def test_event_kinds_documented(self):
        system, tracer = traced_system()
        system.run()
        for kind in tracer.counts():
            assert kind in event_kinds()

    def test_mode_switch_event(self):
        traces = [t([(0, "W", 1), (500, "W", 1)])]
        system = System(cohort_config([50]), traces)
        tracer = ProtocolTracer.attach(system)
        system.caches[0].lut.program(2, MSI_THETA)
        system.kernel.schedule(
            100, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        system.run()
        events = tracer.filter(kind="mode_switch")
        assert len(events) == 1
        assert events[0].payload["mode"] == 2
        assert events[0].payload["thetas"] == [MSI_THETA]


def spill_system():
    """Dirty L1 conflict evictions (lines 0/4 collide in a 4-set L1):
    every store evicts the previous line dirty and the following read
    waits on the write-back drain."""
    from dataclasses import replace

    from repro.params import CacheGeometry

    config = replace(
        cohort_config([40, 40]),
        l1=CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1),
        runahead_window=0,
    )
    traces = [
        t([(0, "W", 0), (1, "W", 4), (1, "R", 0), (1, "R", 4)]),
        t([]),
    ]
    return System(config, traces)


def backend_system():
    """A non-perfect two-line LLC: every working-set change needs a DRAM
    fetch and LLC evictions back-invalidate the L1 copies (inclusion)."""
    from dataclasses import replace

    from repro.params import CacheGeometry

    config = replace(
        cohort_config([40, 40]),
        perfect_llc=False,
        llc=CacheGeometry(size_bytes=2 * 64, line_bytes=64, ways=1),
        l1=CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1),
        runahead_window=0,
    )
    traces = [
        t([(0, "W", 0), (1, "W", 4), (1, "R", 0), (1, "R", 4),
           (1, "R", 1), (1, "R", 2), (1, "R", 0)]),
        t([(3, "R", 3)]),
    ]
    return System(config, traces)


class TestTracerBackendEvents:
    def test_writeback_events_captured(self):
        system = spill_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        counts = tracer.counts()
        assert counts["writeback"] >= 1
        assert counts["wb_done"] == counts["writeback"]
        for kind in ("writeback", "wb_done"):
            assert kind in event_kinds()

    def test_dram_and_back_invalidate_captured(self):
        system = backend_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        counts = tracer.counts()
        assert counts["dram_fetch"] >= 1
        assert counts["back_invalidate"] >= 1
        for kind in ("dram_fetch", "back_invalidate"):
            assert kind in event_kinds()

    def test_render_shows_backend_events(self):
        system = spill_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        out = tracer.render(kind="writeback")
        assert "writeback" in out and "on_bus=" in out
        line0 = tracer.render(line=0)
        assert "wb_done" in line0

        system = backend_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        out = tracer.render(kind="back_invalidate")
        assert "back_invalidate" in out and "dirty=" in out

    def test_explain_latency_interleaves_writeback_drain(self):
        """A read that waited on its line's write-back drain shows the
        wb_done event inside the fill's explanation.  (The write-back
        *enqueue* happens at the evicting store's fill, one cycle before
        this read even issues, so only the drain is in-window.)"""
        system = spill_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        out = tracer.explain_latency(core=0, min_latency=0)
        assert "fill of line" in out
        assert "wb_done" in out

    def test_explain_latency_includes_dram_fetch(self):
        system = backend_system()
        tracer = ProtocolTracer.attach(system)
        system.run()
        fetched_lines = {
            ev.line for ev in tracer.filter(kind="dram_fetch")
        }
        out = tracer.explain_latency(core=0, min_latency=0)
        assert fetched_lines and "dram_fetch" in out

    def test_explain_latency_shows_mode_switch_fills(self):
        """Requests issued after a mode switch still explain cleanly,
        and the switch itself renders on the timeline."""
        traces = [t([(0, "W", 1), (500, "W", 1)])]
        system = System(cohort_config([50]), traces)
        tracer = ProtocolTracer.attach(system)
        system.caches[0].lut.program(2, MSI_THETA)
        system.kernel.schedule(
            100, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        system.run()
        out = tracer.render(kind="mode_switch")
        assert "mode_switch" in out and "mode=2" in out
        explained = tracer.explain_latency(core=0, min_latency=0)
        assert "fill of line 1" in explained
