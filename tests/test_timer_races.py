"""Timer-expiry race tests (satellite of the layered-stack refactor).

A countdown-counter expiry is a scheduled kernel event; by the time it
fires, the world may have changed under it.  Two races matter:

* the expiry lands on the **same cycle as a mode switch** that
  reprograms (or disables) the very timer that armed it;
* the expiry lands on the **same cycle as an LLC back-invalidation**
  that destroys the pending copy it was armed for.

Both must stay coherent, live (no stuck requests) and cycle-identical
across the two engines (inline hit batching on and off).  The tests
*construct* the same-cycle collision from a probe run instead of
hard-coding cycle numbers: the probe measures when the interfering
event happens, and the real run re-arms the timer (or schedules the
switch) to land exactly there.
"""

from dataclasses import replace

import pytest

from repro.params import MSI_THETA, CacheGeometry, cohort_config
from repro.sim.debug import ProtocolTracer
from repro.sim.system import System
from repro.workloads import splash_traces

from conftest import t


def run_traced(config, traces, fast_path=True, setup=None):
    system = System(
        replace(config, check_coherence=True), traces, fast_path=fast_path
    )
    tracer = ProtocolTracer.attach(system)
    if setup is not None:
        setup(system)
    stats = system.run()
    return system, stats, tracer


def core_snapshot(stats):
    return [
        (c.hits, c.misses, c.upgrades, c.total_memory_latency, c.finish_cycle)
        for c in stats.cores
    ]


class TestExpiryVsModeSwitch:
    CONFIG = cohort_config([60] * 4)

    def _traces(self):
        return splash_traces("ocean", 4, scale=0.5, seed=0)

    def _expiry_cycle(self):
        """Probe: the cycle of a mid-run timer expiry (no switch)."""
        _, _, tracer = run_traced(self.CONFIG, self._traces())
        expiries = tracer.filter(kind="timer_expiry")
        assert expiries, "probe workload must produce timer expiries"
        return expiries[len(expiries) // 2].cycle

    @pytest.mark.parametrize("fast_path", [True, False])
    @pytest.mark.parametrize("switch_phase", ["before", "after"])
    def test_switch_to_msi_on_expiry_cycle(self, fast_path, switch_phase):
        """All cores drop to MSI on the exact cycle an expiry fires.

        ``before`` lands the switch in the same kernel phase as the
        expiry but ahead of it (pre-run schedules order first);
        ``after`` uses a later phase of the same cycle, so the expiry
        handler runs first and the switch reprograms a just-fired timer.
        """
        at = self._expiry_cycle()

        def setup(system):
            for cache in system.caches:
                cache.lut.program(1, 60)
                cache.lut.program(2, MSI_THETA)
            phase = (
                system.PHASE_EFFECT
                if switch_phase == "before"
                else system.PHASE_ARBITRATE
            )
            system.kernel.schedule(at, phase, lambda: system.switch_mode(2))

        system, stats, tracer = run_traced(
            self.CONFIG, self._traces(), fast_path=fast_path, setup=setup
        )
        switches = tracer.filter(kind="mode_switch")
        assert [ev.cycle for ev in switches] == [at]
        assert switches[0].payload["thetas"] == [MSI_THETA] * 4
        # Liveness: every access of every core completed.
        for i, trace in enumerate(self._traces()):
            assert stats.core(i).accesses == len(trace)
        # The collision really happened: the prefix up to ``at`` matches
        # the probe, so the expiry armed before the switch still fires
        # on the switch cycle itself (timers already pending keep their
        # deadlines across a mode switch; only *new* snoops see MSI).
        expiry_cycles = [
            ev.cycle for ev in tracer.filter(kind="timer_expiry")
        ]
        assert at in expiry_cycles

    @pytest.mark.parametrize("switch_phase", ["before", "after"])
    def test_switch_race_is_engine_invariant(self, switch_phase):
        """Both engines agree cycle-for-cycle through the race."""
        at = self._expiry_cycle()

        def setup(system):
            for cache in system.caches:
                cache.lut.program(1, 60)
                cache.lut.program(2, MSI_THETA)
            phase = (
                system.PHASE_EFFECT
                if switch_phase == "before"
                else system.PHASE_ARBITRATE
            )
            system.kernel.schedule(at, phase, lambda: system.switch_mode(2))

        runs = [
            run_traced(
                self.CONFIG, self._traces(), fast_path=fp, setup=setup
            )[1]
            for fp in (True, False)
        ]
        assert runs[0].final_cycle == runs[1].final_cycle
        assert core_snapshot(runs[0]) == core_snapshot(runs[1])


class TestExpiryVsBackInvalidate:
    """An LLC inclusion victim dies on the cycle its timer expires.

    Scenario (probe-aligned): core 0 (timed) owns line 0 dirty; core 1
    requests it, arming core 0's countdown timer; core 2's misses on
    lines 1 and 2 overflow the one-set LLC, whose victim is line 0 —
    back-invalidating core 0's pending copy.  The probe runs with a
    huge θ (the timer never fires first) to measure the fill cycle F
    and the back-invalidation cycle B; the real run uses θ = B - F so
    the expiry lands exactly on the back-invalidation cycle.
    """

    HUGE_THETA = 60_000  # fits the 16-bit register, far past the probe run

    def _config(self, theta):
        return cohort_config(
            [theta, MSI_THETA, MSI_THETA],
            perfect_llc=False,
            llc=CacheGeometry(size_bytes=2 * 64, line_bytes=64, ways=2),
            dram_latency=30,
        )

    def _traces(self):
        return [
            t([(0, "W", 0)]),          # owner: dirty line 0
            t([(150, "R", 0)]),        # requester: arms the timer
            t([(160, "R", 1), (20, "R", 2)]),  # evictor: overflows the LLC
        ]

    def _probe(self):
        _, stats, tracer = run_traced(
            self._config(self.HUGE_THETA), self._traces()
        )
        fills = tracer.filter(kind="fill", core=0, line=0)
        backs = tracer.filter(kind="back_invalidate", core=0, line=0)
        assert fills and backs, "probe must back-invalidate the owned line"
        fill_cycle, back_cycle = fills[0].cycle, backs[0].cycle
        assert back_cycle > fill_cycle
        # The requester's fill is released *by* the back-invalidation,
        # i.e. the timer really was still pending when the victim died.
        requester_fills = tracer.filter(kind="fill", core=1, line=0)
        assert requester_fills and requester_fills[0].cycle >= back_cycle
        return fill_cycle, back_cycle

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_expiry_on_back_invalidate_cycle(self, fast_path):
        fill_cycle, back_cycle = self._probe()
        theta = back_cycle - fill_cycle  # expiry at fill + θ == B
        system, stats, tracer = run_traced(
            self._config(theta), self._traces(), fast_path=fast_path
        )
        # Prefixes are identical up to B, so the collision still happens
        # there — now with the expiry scheduled for the very same cycle.
        backs = tracer.filter(kind="back_invalidate", core=0, line=0)
        assert backs and backs[0].cycle == back_cycle
        # Whichever side wins the intra-cycle order, any expiry that
        # still fires for the line fires on that cycle, not later.
        for ev in tracer.filter(kind="timer_expiry", core=0, line=0):
            assert ev.cycle == back_cycle
        # Liveness + coherence: every access completed, oracle was on.
        for i, trace in enumerate(self._traces()):
            assert stats.core(i).accesses == len(trace)

    def test_back_invalidate_race_is_engine_invariant(self):
        fill_cycle, back_cycle = self._probe()
        theta = back_cycle - fill_cycle
        runs = [
            run_traced(self._config(theta), self._traces(), fast_path=fp)[1]
            for fp in (True, False)
        ]
        assert runs[0].final_cycle == runs[1].final_cycle
        assert core_snapshot(runs[0]) == core_snapshot(runs[1])
