"""Unit tests for the unified event bus (repro.sim.events)."""

from repro.params import cohort_config
from repro.sim.events import (
    EVENT_KINDS,
    LAYER_OF,
    EventBus,
)
from repro.sim.kernel import EventKernel
from repro.sim.system import System
from repro.workloads import splash_traces

from conftest import t


class Recorder:
    def __init__(self):
        self.seen = []

    def __call__(self, cycle, kind, payload):
        self.seen.append((cycle, kind, dict(payload)))


def make_bus():
    return EventBus(EventKernel())


class TestSubscriptions:
    def test_subscribe_all_receives_everything(self):
        bus = make_bus()
        rec = bus.subscribe(Recorder())
        bus.emit("miss", core=0)
        bus.emit("grant", core=1)
        assert [(k, p) for _, k, p in rec.seen] == [
            ("miss", {"core": 0}),
            ("grant", {"core": 1}),
        ]

    def test_by_kind_subscription_filters(self):
        bus = make_bus()
        rec = bus.subscribe(Recorder(), kinds=("grant",))
        bus.emit("miss", core=0)
        bus.emit("grant", core=1)
        assert [k for _, k, _ in rec.seen] == ["grant"]

    def test_by_kind_listeners_notified_before_subscribe_all(self):
        bus = make_bus()
        order = []
        bus.subscribe(lambda c, k, p: order.append("all"))
        bus.subscribe(lambda c, k, p: order.append("by_kind"), kinds=("fill",))
        bus.emit("fill", core=0)
        assert order == ["by_kind", "all"]

    def test_unsubscribe_removes_every_registration(self):
        bus = make_bus()
        rec = Recorder()
        bus.subscribe(rec)
        bus.subscribe(rec, kinds=("fill", "grant"))
        bus.unsubscribe(rec)
        bus.emit("fill", core=0)
        bus.emit("grant", core=0)
        assert rec.seen == []

    def test_listener_may_unsubscribe_itself_mid_event(self):
        """Regression: emit iterates a snapshot, so a subscriber that
        unsubscribes itself (one-shot listener) must not silence other
        listeners of the same event or corrupt the iteration."""
        bus = make_bus()
        seen = []

        def one_shot(cycle, kind, payload):
            seen.append(("one_shot", kind))
            bus.unsubscribe(one_shot)

        bus.subscribe(one_shot)
        after = bus.subscribe(Recorder())
        bus.emit("fill", core=0)
        bus.emit("fill", core=1)
        assert seen == [("one_shot", "fill")]
        assert [p["core"] for _, _, p in after.seen] == [0, 1]

    def test_by_kind_listener_may_unsubscribe_itself_mid_event(self):
        bus = make_bus()
        seen = []

        def one_shot(cycle, kind, payload):
            seen.append(kind)
            bus.unsubscribe(one_shot)

        bus.subscribe(one_shot, kinds=("fill",))
        rest = bus.subscribe(Recorder(), kinds=("fill",))
        bus.emit("fill", core=0)
        bus.emit("fill", core=1)
        assert seen == ["fill"]
        assert len(rest.seen) == 2

    def test_listener_may_subscribe_another_mid_event(self):
        """A listener attaching a new listener mid-event must not make
        the new one see the *current* event."""
        bus = make_bus()
        late = Recorder()

        def attacher(cycle, kind, payload):
            if not late.seen and late not in bus.listeners:
                bus.subscribe(late)

        bus.subscribe(attacher)
        bus.emit("fill", core=0)
        bus.emit("grant", core=1)
        assert [k for _, k, _ in late.seen] == ["grant"]

    def test_events_stamp_current_kernel_cycle(self):
        kernel = EventKernel()
        bus = EventBus(kernel)
        rec = bus.subscribe(Recorder())
        kernel.schedule(7, 0, lambda: bus.emit("fill", core=0))
        kernel.run(max_cycles=100, until=lambda: False)
        assert rec.seen == [(7, "fill", {"core": 0})]


class TestHotFlag:
    def test_idle_bus_is_cold(self):
        assert not make_bus().hot

    def test_subscribe_all_heats(self):
        bus = make_bus()
        rec = bus.subscribe(Recorder())
        assert bus.hot
        bus.unsubscribe(rec)
        assert not bus.hot

    def test_hit_by_kind_heats_other_kinds_do_not(self):
        bus = make_bus()
        rec = bus.subscribe(Recorder(), kinds=("grant",))
        assert not bus.hot
        bus.subscribe(rec, kinds=("hit",))
        assert bus.hot
        bus.unsubscribe(rec)
        assert not bus.hot

    def test_legacy_listeners_append_heats(self):
        """The pre-bus ``system.listeners.append(tracer)`` idiom."""
        bus = make_bus()
        rec = Recorder()
        bus.listeners.append(rec)
        assert bus.hot
        bus.listeners.remove(rec)
        assert not bus.hot
        bus.listeners.append(rec)
        bus.listeners.clear()
        assert not bus.hot


class TestCountsAndLayers:
    def test_counts_tally_without_subscribers(self):
        bus = make_bus()
        bus.emit("grant", core=0)
        bus.emit("grant", core=1)
        bus.emit("fill", core=0)
        assert bus.counts == {"grant": 2, "fill": 1}

    def test_every_stock_kind_has_a_layer(self):
        assert set(EVENT_KINDS) == set(LAYER_OF)
        assert set(LAYER_OF.values()) == {
            "core",
            "bus",
            "protocol",
            "backend",
            "system",
            "fault",
        }

    def test_layer_counts_aggregate(self):
        bus = make_bus()
        bus.emit("miss", core=0)
        bus.emit("grant", core=0)
        bus.emit("fill", core=0)
        bus.emit("timer_expiry", core=0)
        bus.emit("custom_kind")
        assert bus.layer_counts() == {
            "core": 1,
            "bus": 1,
            "protocol": 2,
            "other": 1,
        }


class TestSystemIntegration:
    def test_system_publishes_layer_counts(self):
        traces = splash_traces("ocean", 4, scale=0.25, seed=0)
        system = System(cohort_config([60] * 4), traces)
        stats = system.run()
        layers = stats.layer_counts()
        assert layers["core"] > 0  # misses
        assert layers["bus"] > 0  # grants
        assert layers["protocol"] > 0  # fills (+ expiries)

    def test_hit_events_materialise_only_when_hot(self):
        traces = [t([(0, "R", 0), (1, "R", 0), (1, "R", 0)])]
        cold = System(cohort_config([60]), traces)
        cold_stats = cold.run()
        assert cold_stats.core(0).hits > 0
        assert "hit" not in cold.events.counts

        hot = System(cohort_config([60]), traces)
        rec = hot.events.subscribe(Recorder())
        hot_stats = hot.run()
        hit_events = [e for e in rec.seen if e[1] == "hit"]
        assert len(hit_events) == hot_stats.core(0).hits
        assert hot.events.counts["hit"] == hot_stats.core(0).hits
