"""Tests for operational observability (repro.obs.ops).

Covers the structured JSON-lines logger, trace-id contract, service
lifecycle trace export, SLO computation, and the ``cohort obs``
CLI (tail / report / slo) including the shipped ``slo`` gate spec
passing on a healthy oplog and failing on a synthetic p99 violation.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.obs import (
    OPLOG_SCHEMA,
    OpLogger,
    build_service_trace,
    compute_slo,
    new_trace_id,
    read_oplog,
    valid_trace_id,
)
from repro.obs.ops import exact_percentile, format_event
from repro.obs.schema import validate_trace_events
from repro.obs.validate import validate_file


class TestTraceIds:
    def test_new_trace_id_is_valid_and_unique(self):
        ids = {new_trace_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(valid_trace_id(t) for t in ids)

    @pytest.mark.parametrize("good", [
        "a", "A-b_c.d", "0" * 64, "deadbeef", "x.y-z_0",
    ])
    def test_accepts_header_charset(self, good):
        assert valid_trace_id(good)

    @pytest.mark.parametrize("bad", [
        "", "a" * 65, "has space", "semi;colon", "new\nline",
        None, 42, b"bytes", "ünïcode",
    ])
    def test_rejects_out_of_contract_values(self, bad):
        assert not valid_trace_id(bad)


class TestOpLogger:
    def test_sinkless_logger_is_disabled_but_counts(self):
        log = OpLogger()
        assert not log.enabled
        log.emit("admit", trace_id="t1")
        log.emit("admit", trace_id="t2")
        log.emit("retire", status="done")
        assert log.events_emitted == 3
        assert log.event_counts == {"admit": 2, "retire": 1}

    def test_writes_schema_tagged_sorted_json_lines(self, tmp_path):
        path = tmp_path / "op.jsonl"
        with OpLogger(path=str(path), clock=lambda: 123.5) as log:
            record = log.emit("admit", trace_id="t", job_id="j")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc == record
        assert doc["schema"] == OPLOG_SCHEMA
        assert doc["ts"] == 123.5
        assert doc["component"] == "serve"
        assert doc["event"] == "admit"
        assert lines[0] == json.dumps(doc, sort_keys=True)

    def test_none_fields_are_dropped(self, tmp_path):
        path = tmp_path / "op.jsonl"
        with OpLogger(path=str(path)) as log:
            log.emit("admit", trace_id=None, job_id="j")
        (doc,) = read_oplog(str(path))
        assert "trace_id" not in doc
        assert doc["job_id"] == "j"

    def test_component_override_per_event(self):
        log = OpLogger(component="serve")
        record = log.emit("execute", component="runner")
        assert record["component"] == "runner"
        assert log.emit("admit")["component"] == "serve"

    def test_rejects_both_path_and_stream(self, tmp_path):
        import io

        with pytest.raises(ValueError):
            OpLogger(path=str(tmp_path / "x"), stream=io.StringIO())

    def test_append_mode_across_logger_instances(self, tmp_path):
        path = tmp_path / "op.jsonl"
        with OpLogger(path=str(path)) as log:
            log.emit("admit")
        with OpLogger(path=str(path)) as log:
            log.emit("retire")
        events = read_oplog(str(path))
        assert [e["event"] for e in events] == ["admit", "retire"]

    def test_concurrent_emits_produce_whole_lines(self, tmp_path):
        path = tmp_path / "op.jsonl"
        log = OpLogger(path=str(path))

        def worker(n):
            for i in range(50):
                log.emit("tick", worker=n, i=i)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        events = read_oplog(str(path))
        assert len(events) == 200
        assert log.events_emitted == 200
        assert all(e["event"] == "tick" for e in events)

    def test_read_oplog_reports_torn_line_number(self, tmp_path):
        path = tmp_path / "op.jsonl"
        path.write_text('{"event": "a"}\n\n{"torn\n')
        with pytest.raises(ValueError, match=r"op\.jsonl:3"):
            read_oplog(str(path))

    def test_oplog_validates_via_schema_registry(self, tmp_path):
        path = tmp_path / "op.jsonl"
        with OpLogger(path=str(path)) as log:
            log.emit("admit", trace_id=new_trace_id(), job_id="j-1")
            log.emit("batch", queue_wait_ms=3.5, batch=1)
        assert validate_file(str(path)) == []

    def test_validate_flags_bad_record_with_line(self, tmp_path):
        path = tmp_path / "op.jsonl"
        good = json.dumps(
            {"schema": OPLOG_SCHEMA, "ts": 1.0,
             "component": "serve", "event": "admit"}
        )
        bad = json.dumps({"schema": OPLOG_SCHEMA, "ts": 1.0})
        path.write_text(good + "\n" + bad + "\n")
        errors = validate_file(str(path))
        assert errors and any(":2:" in err for err in errors)

    def test_validate_empty_file_errors(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        errors = validate_file(str(path))
        assert any("no JSON records" in err for err in errors)


def service_row(job_id, submitted, dispatched, executed, finished, **over):
    """One retire-time trace row as BatchingService records it."""
    row = {
        "trace_id": "trace-" + job_id,
        "job_id": job_id,
        "status": "done",
        "digest": "d" * 16,
        "submitted_at": submitted,
        "dispatched_at": dispatched,
        "executed_at": executed,
        "finished_at": finished,
    }
    row.update(over)
    return row


class TestServiceTrace:
    def test_empty_rows_still_valid_document(self):
        doc = build_service_trace([])
        assert validate_trace_events(doc) == []
        assert doc["traceEvents"][0]["name"] == "process_name"

    def test_spans_carry_trace_id_and_phases(self):
        doc = build_service_trace(
            [service_row("j1", 10.0, 10.01, 10.05, 10.06)]
        )
        assert validate_trace_events(doc) == []
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        job = [e for e in slices if e["cat"] == "service"]
        phases = [e for e in slices if e["cat"] == "service_phase"]
        assert len(job) == 1
        assert job[0]["args"]["trace_id"] == "trace-j1"
        assert job[0]["ts"] == 0 and job[0]["dur"] == 60000
        assert [e["name"] for e in phases] == ["queue", "execute", "respond"]
        assert all(e["args"]["trace_id"] == "trace-j1" for e in phases)
        assert all(e["pid"] == 1 for e in slices)

    def test_overlapping_requests_pack_separate_tracks(self):
        rows = [
            service_row("a", 0.0, 0.1, 0.5, 0.6),
            service_row("b", 0.2, 0.3, 0.5, 0.7),  # overlaps a
            service_row("c", 1.0, 1.1, 1.2, 1.3),  # after both
        ]
        doc = build_service_trace(rows)
        assert validate_trace_events(doc) == []
        by_job = {
            e["args"]["job_id"]: e["tid"]
            for e in doc["traceEvents"]
            if e.get("cat") == "service"
        }
        assert by_job["a"] != by_job["b"]
        assert by_job["c"] == by_job["a"]  # lowest free track reused
        lanes = [
            e for e in doc["traceEvents"] if e.get("name") == "thread_name"
        ]
        assert len(lanes) == 2

    def test_zero_length_phases_are_skipped(self):
        doc = build_service_trace(
            [service_row("j", 5.0, 5.0, 5.0, 5.2)]
        )
        phases = [
            e["name"] for e in doc["traceEvents"]
            if e.get("cat") == "service_phase"
        ]
        assert phases == ["respond"]


def lifecycle_events(n, queue_wait_ms=10.0, status="done", trace=None):
    """A healthy admit/batch/execute/retire quartet per request."""
    events = []
    for i in range(n):
        tid = trace or f"t{i}"
        events.append({"event": "admit", "trace_id": tid, "job_id": f"j{i}"})
        events.append({"event": "batch", "trace_id": tid,
                       "queue_wait_ms": queue_wait_ms})
        events.append({"event": "execute", "trace_id": tid,
                       "component": "runner"})
        events.append({"event": "retire", "trace_id": tid, "status": status})
    return events


class TestComputeSlo:
    def test_empty_oplog_yields_zeroes(self):
        metrics = compute_slo([])
        assert metrics["requests_admitted"] == 0
        assert metrics["error_ratio"] == 0.0
        assert metrics["availability"] == 0.0
        assert metrics["queue_wait_ms_p99"] == 0.0
        assert metrics["distinct_trace_ids"] == 0

    def test_healthy_run(self):
        metrics = compute_slo(lifecycle_events(4, queue_wait_ms=8.0))
        assert metrics["requests_admitted"] == 4
        assert metrics["requests_completed"] == 4
        assert metrics["requests_failed"] == 0
        assert metrics["error_ratio"] == 0.0
        assert metrics["availability"] == 1.0
        assert metrics["queue_wait_ms_p99"] == 8.0
        assert metrics["warm_hit_rate"] == 0.0
        assert metrics["distinct_trace_ids"] == 4

    def test_failures_and_cache_hits(self):
        events = lifecycle_events(3)
        events[-1]["status"] = "failed"  # last retire
        events.append({"event": "cache_hit", "trace_id": "t0",
                       "component": "runner"})
        metrics = compute_slo(events)
        assert metrics["requests_failed"] == 1
        assert metrics["error_ratio"] == pytest.approx(1 / 3)
        assert metrics["availability"] == pytest.approx(2 / 3)
        assert metrics["warm_hit_rate"] == pytest.approx(1 / 4)

    def test_rejections_and_quarantines_counted(self):
        events = [
            {"event": "reject", "reason": "queue_full", "jobs": 3},
            {"event": "reject", "reason": "draining"},
            {"event": "worker_quarantine", "slot": 0, "attempt": 1},
        ]
        metrics = compute_slo(events)
        assert metrics["submissions_rejected"] == 2
        assert metrics["jobs_rejected"] == 4
        assert metrics["worker_quarantines"] == 1

    def test_percentiles_are_exact_nearest_rank(self):
        events = []
        for wait in range(1, 101):  # 1..100 ms
            events.append({"event": "batch", "queue_wait_ms": float(wait)})
        metrics = compute_slo(events)
        assert metrics["queue_wait_ms_p50"] == 50.0
        assert metrics["queue_wait_ms_p95"] == 95.0
        assert metrics["queue_wait_ms_p99"] == 99.0
        assert metrics["queue_wait_ms_max"] == 100


class TestExactPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert exact_percentile(values, 0.0) == 10.0
        assert exact_percentile(values, 0.25) == 10.0
        assert exact_percentile(values, 0.5) == 20.0
        assert exact_percentile(values, 1.0) == 40.0

    def test_empty_and_bad_q(self):
        assert exact_percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            exact_percentile([1.0], 1.5)


class TestFormatEvent:
    def test_compact_line_truncates_digest(self):
        line = format_event(
            {"ts": 0.0, "component": "serve", "event": "retire",
             "trace_id": "t", "digest": "a" * 40, "status": "done"}
        )
        assert "serve:retire" in line
        assert "trace_id=t" in line
        assert "digest=" + "a" * 12 in line
        assert "a" * 13 not in line

    def test_missing_fields_degrade_gracefully(self):
        line = format_event({})
        assert line.startswith("--:--:--")
        assert "?:?" in line


def write_oplog(path, events):
    """Write raw event dicts as a schema-tagged oplog file."""
    with OpLogger(path=str(path)) as log:
        for event in events:
            fields = dict(event)
            name = fields.pop("event")
            log.emit(name, **fields)


class TestObsCli:
    def test_tail_prints_last_lines(self, tmp_path, capsys):
        path = tmp_path / "op.jsonl"
        write_oplog(path, lifecycle_events(3))
        assert main(["obs", "tail", str(path), "-n", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        assert "retire" in out[-1]

    def test_report_counts_by_component(self, tmp_path, capsys):
        path = tmp_path / "op.jsonl"
        write_oplog(path, lifecycle_events(2))
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "8 events" in out
        assert "runner" in out and "execute" in out
        assert "availability=1.0000" in out

    def test_slo_gate_passes_on_healthy_run(self, tmp_path, capsys):
        path = tmp_path / "op.jsonl"
        write_oplog(path, lifecycle_events(5, queue_wait_ms=12.0))
        manifest = tmp_path / "slo.manifest.json"
        rc = main([
            "obs", "slo", str(path),
            "--manifest-out", str(manifest), "--gate",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS spec=slo" in out
        doc = json.loads(manifest.read_text())
        assert doc["kind"] == "slo"
        assert doc["metrics"]["requests_admitted"] == 5
        assert validate_file(str(manifest)) == []

    def test_slo_gate_fails_on_p99_violation(self, tmp_path, capsys):
        path = tmp_path / "op.jsonl"
        write_oplog(path, lifecycle_events(5, queue_wait_ms=120000.0))
        rc = main(["obs", "slo", str(path), "--gate"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "queue_wait_p99" in out

    def test_slo_gate_param_override_tightens_objective(self, tmp_path):
        path = tmp_path / "op.jsonl"
        write_oplog(path, lifecycle_events(5, queue_wait_ms=50.0))
        assert main(["obs", "slo", str(path), "--gate"]) == 0
        rc = main([
            "obs", "slo", str(path), "--gate",
            "--param", "queue_wait_p99_ms=10",
        ])
        assert rc == 1

    def test_slo_gate_flags_lost_requests(self, tmp_path, capsys):
        path = tmp_path / "op.jsonl"
        events = lifecycle_events(3)
        events = [e for e in events if e["event"] != "retire"]
        events.append({"event": "retire", "trace_id": "t0", "status": "done"})
        write_oplog(path, events)
        rc = main(["obs", "slo", str(path), "--gate"])
        assert rc == 1
        assert "no_lost_requests" in capsys.readouterr().out
