"""Property-based validation of the protocol engine and the analysis.

Random traces and configurations drive the simulator with the
golden-value oracle enabled; the paper's key claims are then checked:

* coherence is never violated (single writer, reads see latest write);
* under RROF + CoHoRT, every measured per-request latency respects the
  Equation-1 bound;
* experimental hits dominate the statically guaranteed hits, and the
  measured task memory latency stays below the analytical WCML bound
  (predictability — the headline property of Figure 5).
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MSI_THETA, MemOp, cohort_config, msi_fcfs_config
from repro.analysis import build_profiles, cohort_bounds, wcl_miss
from repro.sim.system import System
from repro.sim.trace import Trace

LINE = 64


def random_traces(seed, num_cores, n, shared_lines, private_lines, write_pct, gap_max):
    rng = np.random.default_rng(seed)
    traces = []
    for core in range(num_cores):
        gaps = rng.integers(0, gap_max + 1, size=n)
        is_shared = rng.random(n) < 0.5
        shared_idx = rng.integers(0, shared_lines, size=n)
        private_idx = rng.integers(0, private_lines, size=n)
        addrs = np.where(
            is_shared,
            shared_idx * LINE,
            (1000 + core * 512 + private_idx) * LINE,
        )
        ops = np.where(
            rng.random(n) < write_pct, int(MemOp.STORE), int(MemOp.LOAD)
        )
        traces.append(Trace.from_arrays(gaps, ops, addrs))
    return traces


theta_strategy = st.sampled_from([MSI_THETA, 1, 5, 20, 60, 150, 400])


@st.composite
def workload(draw):
    seed = draw(st.integers(0, 10_000))
    num_cores = draw(st.integers(2, 4))
    n = draw(st.integers(10, 80))
    shared_lines = draw(st.integers(1, 6))
    private_lines = draw(st.integers(1, 16))
    write_pct = draw(st.sampled_from([0.0, 0.2, 0.5, 0.9]))
    gap_max = draw(st.sampled_from([0, 3, 10]))
    thetas = [draw(theta_strategy) for _ in range(num_cores)]
    return seed, num_cores, n, shared_lines, private_lines, write_pct, gap_max, thetas


@given(w=workload())
@settings(max_examples=120, deadline=None)
def test_cohort_random_traces_are_coherent_and_bounded(w):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = replace(
        cohort_config(thetas), check_coherence=True
    )
    system = System(config, traces, record_latencies=True)
    stats = system.run()  # raises CoherenceViolationError on any violation

    sw = config.latencies.slot_width
    for i in range(num_cores):
        bound = wcl_miss(thetas, i, sw)
        core = stats.core(i)
        assert core.max_request_latency <= bound, (
            f"core {i}: measured {core.max_request_latency} > Eq.1 bound "
            f"{bound} (thetas={thetas}, seed={seed})"
        )
        assert core.accesses == len(traces[i])


@given(w=workload())
@settings(max_examples=80, deadline=None)
def test_guaranteed_hits_and_wcml_bound_dominate_measurement(w):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = replace(cohort_config(thetas), check_coherence=True)
    stats = System(config, traces).run()

    profiles = build_profiles(traces, config.l1, config.latencies.hit)
    bounds = cohort_bounds(thetas, profiles, config.latencies)
    for i in range(num_cores):
        core = stats.core(i)
        # The static analysis is conservative: it never promises more hits
        # than any actual execution delivers...
        assert bounds[i].m_hit <= core.hits, (
            f"core {i}: guaranteed {bounds[i].m_hit} hits but measured "
            f"{core.hits} (thetas={thetas}, seed={seed})"
        )
        # ...and the analytical WCML dominates the measured memory latency.
        assert core.total_memory_latency <= bounds[i].wcml, (
            f"core {i}: measured WCML {core.total_memory_latency} > bound "
            f"{bounds[i].wcml} (thetas={thetas}, seed={seed})"
        )


@given(w=workload())
@settings(max_examples=50, deadline=None)
def test_msi_fcfs_random_traces_are_coherent(w):
    seed, num_cores, n, shared, private, wr, gap_max, _ = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = replace(msi_fcfs_config(num_cores), check_coherence=True)
    stats = System(config, traces).run()
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(w=workload(), dram_latency=st.sampled_from([20, 100]))
@settings(max_examples=40, deadline=None)
def test_non_perfect_llc_random_traces_are_coherent(w, dram_latency):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    from repro.params import CacheGeometry

    tiny_llc = CacheGeometry(size_bytes=64 * 64, line_bytes=64, ways=4)
    config = replace(
        cohort_config(thetas),
        check_coherence=True,
        perfect_llc=False,
        llc=tiny_llc,
        dram_latency=dram_latency,
    )
    stats = System(config, traces).run()
    assert stats.dram_fetches > 0
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(w=workload(), dram_latency=st.sampled_from([20, 100]))
@settings(max_examples=40, deadline=None)
def test_non_perfect_llc_respects_extended_bound(w, dram_latency):
    """Our non-perfect-LLC extension of Equation 1 dominates measurement."""
    from repro.params import CacheGeometry
    from repro.analysis import wcl_miss_nonperfect

    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    tiny_llc = CacheGeometry(size_bytes=64 * 64, line_bytes=64, ways=4)
    config = replace(
        cohort_config(thetas),
        check_coherence=True,
        perfect_llc=False,
        llc=tiny_llc,
        dram_latency=dram_latency,
    )
    stats = System(config, traces, record_latencies=True).run()
    sw = config.latencies.slot_width
    for i in range(num_cores):
        bound = wcl_miss_nonperfect(thetas, i, sw, dram_latency)
        assert stats.core(i).max_request_latency <= bound, (
            f"core {i}: {stats.core(i).max_request_latency} > {bound} "
            f"(thetas={thetas}, seed={seed}, D={dram_latency})"
        )


@given(w=workload())
@settings(max_examples=40, deadline=None)
def test_wb_on_bus_random_traces_are_coherent(w):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = replace(cohort_config(thetas), check_coherence=True, wb_on_bus=True)
    stats = System(config, traces).run()
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(w=workload())
@settings(max_examples=30, deadline=None)
def test_pcc_random_traces_are_coherent(w):
    seed, num_cores, n, shared, private, wr, gap_max, _ = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    from repro.params import pcc_config

    config = replace(pcc_config(num_cores), check_coherence=True)
    stats = System(config, traces).run()
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(w=workload(), theta=st.sampled_from([20, 100, 300]))
@settings(max_examples=30, deadline=None)
def test_pendulum_random_traces_are_coherent_and_bounded(w, theta):
    seed, num_cores, n, shared, private, wr, gap_max, _ = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    from repro.params import pendulum_config
    from repro.analysis import wcl_miss_pendulum

    critical = [i % 2 == 0 for i in range(num_cores)]
    config = replace(
        pendulum_config(critical, theta=theta), check_coherence=True
    )
    stats = System(config, traces, record_latencies=True).run()
    n_cr = sum(critical)
    sw = config.latencies.slot_width
    bound = wcl_miss_pendulum(num_cores, n_cr, theta, sw, critical=True)
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])
        if critical[i]:
            assert stats.core(i).max_request_latency <= bound, (
                f"Cr core {i}: {stats.core(i).max_request_latency} > "
                f"{bound} (critical={critical}, theta={theta}, seed={seed})"
            )


@given(w=workload())
@settings(max_examples=40, deadline=None)
def test_rrof_no_core_served_twice_over_a_waiting_elder(w):
    """RROF fairness, observable form: while one request is pending on a
    line, every other core completes at most two requests *on that line*
    (one possibly granted just before us plus one legal overtake — after
    completing, a core rotates behind every still-waiting requester, so
    it cannot leapfrog the same elder twice)."""
    from repro.sim.debug import ProtocolTracer

    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = replace(cohort_config(thetas), check_coherence=True)
    system = System(config, traces)
    tracer = ProtocolTracer.attach(system)
    system.run()

    fills = tracer.filter(kind="fill")
    for fill in fills:
        latency = fill.payload["latency"]
        start = fill.cycle - latency
        for other in range(num_cores):
            if other == fill.core:
                continue
            other_fills = [
                ev
                for ev in fills
                if ev.core == other
                and ev.line == fill.line
                and start < ev.cycle < fill.cycle
            ]
            assert len(other_fills) <= 2, (
                f"core {other} filled line {fill.line} "
                f"{len(other_fills)} times while core {fill.core} waited "
                f"(thetas={thetas}, seed={seed})"
            )


@given(w=workload())
@settings(max_examples=30, deadline=None)
def test_determinism_same_seed_same_result(w):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    config = cohort_config(thetas)
    a = System(config, traces).run()
    b = System(config, traces).run()
    assert a.final_cycle == b.final_cycle
    for x, y in zip(a.cores, b.cores):
        assert (x.hits, x.misses, x.total_memory_latency) == (
            y.hits,
            y.misses,
            y.total_memory_latency,
        )


@given(
    w=workload(),
    protocol=st.sampled_from(["cohort", "msi_fcfs"]),
    runahead=st.sampled_from([0, 4, 16]),
)
@settings(max_examples=80, deadline=None)
def test_fast_path_is_cycle_identical_to_event_per_access(w, protocol, runahead):
    """The batched-hit fast path must be indistinguishable from the seed
    engine (one heap event per access): identical final cycle and
    per-core statistics, with the coherence oracle enabled on both."""
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    if protocol == "cohort":
        config = replace(cohort_config(thetas), check_coherence=True)
    else:
        config = replace(msi_fcfs_config(num_cores), check_coherence=True)
    config = replace(config, runahead_window=runahead)
    fast = System(config, traces, record_latencies=True, fast_path=True).run()
    slow = System(config, traces, record_latencies=True, fast_path=False).run()
    assert fast.final_cycle == slow.final_cycle, (
        f"fast {fast.final_cycle} != slow {slow.final_cycle} "
        f"(protocol={protocol}, ra={runahead}, thetas={thetas}, seed={seed})"
    )
    for i in range(num_cores):
        f, s = fast.core(i), slow.core(i)
        assert (
            f.accesses,
            f.hits,
            f.misses,
            f.upgrades,
            f.runahead_hits,
            f.total_memory_latency,
            f.max_request_latency,
            f.finish_cycle,
        ) == (
            s.accesses,
            s.hits,
            s.misses,
            s.upgrades,
            s.runahead_hits,
            s.total_memory_latency,
            s.max_request_latency,
            s.finish_cycle,
        ), f"core {i} diverged (protocol={protocol}, ra={runahead}, seed={seed})"


@given(w=workload())
@settings(max_examples=30, deadline=None)
def test_runahead_never_changes_correctness_only_timing(w):
    seed, num_cores, n, shared, private, wr, gap_max, thetas = w
    traces = random_traces(seed, num_cores, n, shared, private, wr, gap_max)
    base = replace(cohort_config(thetas), check_coherence=True)
    with_ra = System(replace(base, runahead_window=8), traces).run()
    without = System(replace(base, runahead_window=0), traces).run()
    for i in range(num_cores):
        assert with_ra.core(i).accesses == without.core(i).accesses == len(traces[i])
