"""Gate-engine semantics: specs, assertions, severities, CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_document
from repro.qa import (
    GateQuestion,
    GateSpec,
    RunManifest,
    available_specs,
    evaluate_spec,
    load_spec,
    write_manifest,
)
from repro.qa.gates import escalate


def manifest(metrics, **overrides):
    fields = dict(kind="bench", label="unit", metrics=metrics)
    fields.update(overrides)
    return RunManifest(**fields)


def spec_of(*questions, params=None, requires_baseline=False):
    return GateSpec.from_dict({
        "name": "unit", "version": "1",
        "params": params or {},
        "requires_baseline": requires_baseline,
        "questions": list(questions),
    })


Q_FLOOR = {
    "id": "floor", "question": "above floor?",
    "check": "metrics['rate']",
    "assertion": "result >= (1.0 - params['tol']) * baseline",
    "severity": "high", "category": "performance",
}


class TestShippedSpecs:
    def test_all_seven_ship(self):
        assert available_specs() == [
            "capacity", "chaos", "faults", "promotion", "serve", "slo",
            "throughput",
        ]

    def test_specs_load_and_have_questions(self):
        for name in available_specs():
            spec = load_spec(name)
            assert spec.questions, name

    def test_unknown_spec_lists_available(self):
        with pytest.raises(FileNotFoundError, match="throughput"):
            load_spec("nonesuch")


class TestAssertionSemantics:
    def test_band_edge_passes_exactly_at_floor(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        base = manifest({"rate": 1000.0})
        at_floor = manifest({"rate": 800.0})
        below = manifest({"rate": 799.9})
        assert evaluate_spec(spec, at_floor, base).exit_code == 0
        assert evaluate_spec(spec, below, base).exit_code == 1

    def test_param_override_changes_decision(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        base = manifest({"rate": 1000.0})
        cand = manifest({"rate": 700.0})
        assert evaluate_spec(spec, cand, base).exit_code == 1
        assert evaluate_spec(
            spec, cand, base, params={"tol": 0.5}
        ).exit_code == 0

    def test_unknown_param_override_is_rejected(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        with pytest.raises(ValueError, match="unknown param"):
            evaluate_spec(
                spec, manifest({"rate": 1.0}), manifest({"rate": 1.0}),
                params={"tolerance": 0.5},
            )

    def test_missing_baseline_key_is_escalated_error(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        base = manifest({})  # no 'rate'
        cand = manifest({"rate": 800.0})
        report = evaluate_spec(spec, cand, base)
        (outcome,) = report.outcomes
        assert outcome.status == "error"
        assert outcome.declared_severity == "high"
        assert outcome.severity == "critical"
        assert report.exit_code == 1

    def test_none_metric_is_error_not_pass(self):
        # NaN metrics are stored as None in the canonical manifest form;
        # comparing None must fail loudly, never silently pass.
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        base = manifest({"rate": 1000.0})
        cand = manifest({"rate": float("nan")})
        report = evaluate_spec(spec, cand, base)
        assert report.outcomes[0].status == "error"
        assert report.exit_code == 1

    def test_warn_failure_does_not_gate(self):
        question = dict(Q_FLOOR, severity="warn")
        spec = spec_of(question, params={"tol": 0.2})
        report = evaluate_spec(
            spec, manifest({"rate": 1.0}), manifest({"rate": 1000.0})
        )
        assert report.outcomes[0].status == "fail"
        assert not report.outcomes[0].gating
        assert report.exit_code == 0

    def test_warn_error_escalates_to_gating_high(self):
        question = dict(Q_FLOOR, severity="warn")
        spec = spec_of(question, params={"tol": 0.2})
        report = evaluate_spec(
            spec, manifest({}), manifest({"rate": 1000.0})
        )
        assert report.outcomes[0].severity == "high"
        assert report.exit_code == 1

    def test_pair_question_without_baseline_is_skipped(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        report = evaluate_spec(spec, manifest({"rate": 1.0}))
        assert report.outcomes[0].status == "skipped"
        assert report.exit_code == 0

    def test_requires_baseline_spec_refuses_single_manifest(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2},
                       requires_baseline=True)
        with pytest.raises(ValueError, match="requires"):
            evaluate_spec(spec, manifest({"rate": 1.0}))

    def test_escalation_ladder(self):
        assert escalate("info") == "warn"
        assert escalate("warn") == "high"
        assert escalate("high") == "critical"
        assert escalate("critical") == "critical"

    def test_question_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            GateQuestion(id="x", question="?", check="1",
                         assertion="result", severity="fatal")

    def test_report_document_validates(self):
        spec = spec_of(Q_FLOOR, params={"tol": 0.2})
        report = evaluate_spec(
            spec, manifest({"rate": 1.0}), manifest({"rate": 1.0})
        )
        assert validate_document(report.to_dict()) == []


class TestLegacyGateParity:
    """The shipped specs reproduce the historical ad-hoc decisions."""

    def bench_pair(self, **candidate_overrides):
        metrics = {
            "total_accesses": 98304,
            "cohort_cycles": 76904,
            "msi_fcfs_cycles": 66496,
            "cohort_accesses_per_second": 396052.0,
            "msi_fcfs_accesses_per_second": 487944.0,
            "telemetry_cycles": 76904,
            "lockstep_cycles_digest": "1" * 64,
            "lockstep_speedup": 5.6,
            "lockstep_accesses_per_second": 3553186.0,
        }
        base = manifest(dict(metrics), label="artifact")
        cand_metrics = dict(
            metrics,
            telemetry_on_rate=400000.0,
            telemetry_off_rate=410000.0,
        )
        cand_metrics.update(candidate_overrides)
        return base, manifest(cand_metrics, label="candidate")

    def test_identical_measurement_passes(self):
        base, cand = self.bench_pair()
        spec = load_spec("throughput")
        assert evaluate_spec(spec, cand, base).exit_code == 0

    def test_cycle_drift_fails(self):
        base, cand = self.bench_pair(cohort_cycles=76000)
        assert evaluate_spec(
            load_spec("throughput"), cand, base
        ).exit_code == 1

    def test_throughput_band_edges(self):
        spec = load_spec("throughput")
        base, at_floor = self.bench_pair(
            cohort_accesses_per_second=0.8 * 396052.0
        )
        _, below = self.bench_pair(
            cohort_accesses_per_second=0.79 * 396052.0
        )
        assert evaluate_spec(spec, at_floor, base).exit_code == 0
        assert evaluate_spec(spec, below, base).exit_code == 1

    def test_telemetry_overhead_budget(self):
        spec = load_spec("throughput")
        base, ok = self.bench_pair(
            telemetry_on_rate=80.0, telemetry_off_rate=100.0
        )
        _, slow = self.bench_pair(
            telemetry_on_rate=79.0, telemetry_off_rate=100.0
        )
        assert evaluate_spec(spec, ok, base).exit_code == 0
        assert evaluate_spec(spec, slow, base).exit_code == 1

    def test_lockstep_identity_and_speedup_floor(self):
        spec = load_spec("throughput")
        base, diverged = self.bench_pair(lockstep_cycles_digest="2" * 64)
        _, slow = self.bench_pair(lockstep_speedup=4.9)
        assert evaluate_spec(spec, diverged, base).exit_code == 1
        assert evaluate_spec(spec, slow, base).exit_code == 1

    def test_missing_artifact_lockstep_section_fails(self):
        # legacy: "artifact has no 'lockstep' section" was a failure
        base, cand = self.bench_pair()
        base.metrics = {
            k: v for k, v in base.metrics.items()
            if not k.startswith("lockstep")
        }
        assert evaluate_spec(
            load_spec("throughput"), cand, base
        ).exit_code == 1

    def faults_manifest(self, silent):
        return manifest({
            "campaigns": 7,
            "injections": 14,
            "detected": 5,
            "survived": 2 - silent,
            "silent_corruptions": silent,
        }, kind="faults")

    def test_faults_zero_silent_corruption_passes(self):
        report = evaluate_spec(load_spec("faults"), self.faults_manifest(0))
        assert report.exit_code == 0

    def test_faults_any_silent_corruption_fails(self):
        report = evaluate_spec(load_spec("faults"), self.faults_manifest(1))
        assert report.exit_code == 1

    def serve_manifest(self, **overrides):
        metrics = {
            "round1_failures": 0, "round2_failures": 0,
            "client_mismatches": 0, "round2_hit_rate": 1.0,
            "drain_exit_code": 0, "final_snapshot_written": True,
            "trace_propagation_ok": True,
        }
        metrics.update(overrides)
        return manifest(metrics, kind="serve_smoke")

    def test_serve_clean_run_passes(self):
        assert evaluate_spec(
            load_spec("serve"), self.serve_manifest()
        ).exit_code == 0

    def test_serve_cold_warm_round_floor(self):
        assert evaluate_spec(
            load_spec("serve"), self.serve_manifest(round2_hit_rate=0.9)
        ).exit_code == 0
        assert evaluate_spec(
            load_spec("serve"), self.serve_manifest(round2_hit_rate=0.83)
        ).exit_code == 1

    def test_serve_dirty_drain_fails(self):
        assert evaluate_spec(
            load_spec("serve"), self.serve_manifest(drain_exit_code=143)
        ).exit_code == 1

    def test_serve_broken_trace_propagation_fails(self):
        assert evaluate_spec(
            load_spec("serve"),
            self.serve_manifest(trace_propagation_ok=False),
        ).exit_code == 1


class TestGateCli:
    def simulate(self, tmp_path, name, theta0):
        path = tmp_path / name
        rc = main([
            "simulate", "-b", "fft",
            "-t", str(theta0), "20", "20", "20",
            "--scale", "0.1", "--manifest-out", str(path),
        ])
        assert rc == 0
        return str(path)

    def test_diff_identical_manifests_passes(self, tmp_path, capsys):
        a = self.simulate(tmp_path, "a.json", 100)
        b = self.simulate(tmp_path, "b.json", 100)
        assert main(["gate", "diff", a, b]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_cycle_drift(self, tmp_path, capsys):
        a = self.simulate(tmp_path, "a.json", 100)
        b = self.simulate(tmp_path, "b.json", 50)
        report_out = tmp_path / "verdict.json"
        rc = main([
            "gate", "diff", a, b, "--report-out", str(report_out)
        ])
        assert rc == 1
        assert "cycle_identity" in capsys.readouterr().out
        doc = json.loads(report_out.read_text())
        assert doc["passed"] is False
        assert validate_document(doc) == []

    def test_promote_installs_candidate_on_pass(self, tmp_path):
        a = self.simulate(tmp_path, "a.json", 100)
        b = self.simulate(tmp_path, "b.json", 100)
        assert main(["gate", "promote", a, b]) == 0
        assert open(a).read() == open(b).read()

    def test_promote_refuses_failing_candidate(self, tmp_path, capsys):
        a = self.simulate(tmp_path, "a.json", 100)
        before = open(a).read()
        b = self.simulate(tmp_path, "b.json", 50)
        assert main(["gate", "promote", a, b]) == 1
        assert open(a).read() == before
        assert "promotion refused" in capsys.readouterr().err

    def test_gate_run_with_spec_and_param(self, tmp_path, capsys):
        m = manifest({
            "campaigns": 1, "injections": 1, "detected": 1,
            "survived": 0, "silent_corruptions": 0,
        }, kind="faults")
        path = tmp_path / "faults.json"
        write_manifest(m, str(path))
        rc = main([
            "gate", "run", "--spec", "faults", "--manifest", str(path),
        ])
        assert rc == 0

    def test_gate_run_missing_baseline_for_pair_spec(self, tmp_path, capsys):
        m = manifest({"x": 1})
        path = tmp_path / "m.json"
        write_manifest(m, str(path))
        rc = main([
            "gate", "run", "--spec", "throughput", "--manifest", str(path),
        ])
        assert rc == 2
        assert "baseline" in capsys.readouterr().err

    def test_gate_list(self, capsys):
        assert main(["gate", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("faults", "promotion", "serve", "slo", "throughput"):
            assert name in out

    def test_metrics_summarises_manifest_and_verdict(
        self, tmp_path, capsys
    ):
        a = self.simulate(tmp_path, "a.json", 100)
        capsys.readouterr()
        assert main(["metrics", a]) == 0
        assert "run manifest" in capsys.readouterr().out
