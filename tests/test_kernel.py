"""Unit tests for the event kernel (repro.sim.kernel)."""

import pytest

from repro.sim.kernel import (
    PHASE_ARBITRATE,
    PHASE_CORE,
    PHASE_EFFECT,
    EventKernel,
    SimulationLimitError,
)


class TestEventKernel:
    def test_runs_in_cycle_order(self):
        k = EventKernel()
        log = []
        k.schedule(5, PHASE_EFFECT, lambda: log.append(5))
        k.schedule(1, PHASE_EFFECT, lambda: log.append(1))
        k.schedule(3, PHASE_EFFECT, lambda: log.append(3))
        k.run(100, until=lambda: False)
        assert log == [1, 3, 5]

    def test_phase_order_within_cycle(self):
        k = EventKernel()
        log = []
        k.schedule(2, PHASE_ARBITRATE, lambda: log.append("arb"))
        k.schedule(2, PHASE_CORE, lambda: log.append("core"))
        k.schedule(2, PHASE_EFFECT, lambda: log.append("effect"))
        k.run(100, until=lambda: False)
        assert log == ["effect", "core", "arb"]

    def test_fifo_within_same_cycle_and_phase(self):
        k = EventKernel()
        log = []
        for i in range(5):
            k.schedule(1, PHASE_CORE, lambda i=i: log.append(i))
        k.run(100, until=lambda: False)
        assert log == [0, 1, 2, 3, 4]

    def test_events_can_schedule_events(self):
        k = EventKernel()
        log = []

        def first():
            log.append("first")
            k.schedule(k.now + 2, PHASE_EFFECT, lambda: log.append("second"))

        k.schedule(1, PHASE_EFFECT, first)
        final = k.run(100, until=lambda: False)
        assert log == ["first", "second"]
        assert final == 3

    def test_cannot_schedule_in_the_past(self):
        k = EventKernel()
        k.schedule(5, PHASE_EFFECT, lambda: None)
        k.run(100, until=lambda: False)
        with pytest.raises(ValueError):
            k.schedule(2, PHASE_EFFECT, lambda: None)

    def test_until_predicate_stops_processing(self):
        k = EventKernel()
        log = []
        k.schedule(1, PHASE_EFFECT, lambda: log.append(1))
        k.schedule(2, PHASE_EFFECT, lambda: log.append(2))
        k.run(100, until=lambda: len(log) >= 1)
        assert log == [1]

    def test_max_cycles_guard(self):
        k = EventKernel()

        def forever():
            k.schedule(k.now + 10, PHASE_EFFECT, forever)

        k.schedule(0, PHASE_EFFECT, forever)
        with pytest.raises(SimulationLimitError):
            k.run(50, until=lambda: False)

    def test_now_tracks_current_cycle(self):
        k = EventKernel()
        seen = []
        k.schedule(7, PHASE_EFFECT, lambda: seen.append(k.now))
        k.run(100, until=lambda: False)
        assert seen == [7]
