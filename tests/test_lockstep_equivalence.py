"""Cross-engine equivalence of the lock-step multi-config engine.

The lock-step engine (:mod:`repro.sim.lockstep`) amortises one trace
decode across many configurations; its contract is that every result is
*bit-identical* to the per-event engines.  These tests check that
contract property-style — randomized timer vectors over all registered
protocols and arbiters, compared as full ``stats_to_dict`` documents —
plus the peeling rules (unsupported configs and armed fault plans run
on the per-event path transparently) and the sweep runner's same-trace
group routing.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.params import (
    MSI_THETA,
    ArbiterKind,
    cohort_config,
    msi_fcfs_config,
)
from repro.runner import SweepJob, SweepRunner, stats_to_dict
from repro.sim.lockstep import (
    lockstep_unsupported_reason,
    run_lockstep_batch,
    run_simulation_lockstep,
)
from repro.sim.system import run_simulation
from repro.workloads import splash_traces, timer_sweep, uniform_shared_mix


@pytest.fixture(scope="module")
def traces():
    return uniform_shared_mix(4, 400, seed=3)


def random_thetas(rng) -> list:
    grid = [MSI_THETA, 1, 3, 9, 27, 81, 243, 1000]
    return [int(grid[rng.integers(0, len(grid))]) for _ in range(4)]


class TestRandomizedCrossEngine:
    """seed == fast == lockstep on randomized configurations."""

    @pytest.mark.parametrize("trial", range(6))
    def test_random_timer_vectors_all_engines_agree(self, traces, trial):
        rng = np.random.default_rng(100 + trial)
        config = cohort_config(random_thetas(rng))
        seed = run_simulation(config, traces, fast_path=False)
        fast = run_simulation(config, traces, fast_path=True)
        lock = run_simulation_lockstep(config, traces)
        assert stats_to_dict(seed) == stats_to_dict(fast)
        assert stats_to_dict(fast) == stats_to_dict(lock)

    @pytest.mark.parametrize("protocol", ["timed_msi", "msi", "pmsi"])
    @pytest.mark.parametrize(
        "arbiter", [ArbiterKind.RROF, ArbiterKind.FCFS, ArbiterKind.TDM]
    )
    def test_protocol_arbiter_matrix(self, traces, protocol, arbiter):
        thetas = [60, 20, MSI_THETA, 5]
        if protocol != "timed_msi":
            thetas = [MSI_THETA] * 4
        config = replace(
            cohort_config(thetas), protocol=protocol, arbiter=arbiter
        )
        fast = run_simulation(config, traces, fast_path=True)
        lock = run_simulation_lockstep(config, traces)
        assert stats_to_dict(fast) == stats_to_dict(lock)

    def test_record_latencies_survive_lockstep(self, traces):
        config = cohort_config([60, 20, 20, 20])
        fast = run_simulation(config, traces, record_latencies=True)
        lock = run_simulation_lockstep(config, traces, record_latencies=True)
        assert stats_to_dict(fast) == stats_to_dict(lock)


class TestBatchPeeling:
    def test_batch_peels_unsupported_configs_in_slot(self, traces):
        supported = cohort_config([60, 20, 20, 20])
        checked = replace(cohort_config([30] * 4), check_coherence=True)
        pmsi = replace(msi_fcfs_config(4), protocol="pmsi")
        assert lockstep_unsupported_reason(supported) is None
        assert lockstep_unsupported_reason(checked) is not None
        # PMSI keeps the standard hit predicate, so it is lock-steppable.
        assert lockstep_unsupported_reason(pmsi) is None
        batch = run_lockstep_batch([supported, checked, pmsi], traces)
        for config, stats in zip([supported, checked, pmsi], batch):
            direct = run_simulation(config, traces)
            assert stats_to_dict(stats) == stats_to_dict(direct)

    def test_fault_plans_peel_and_match_the_event_path(self):
        """FI campaign smoke: an armed plan runs per-event, same result."""
        from repro.fi import FaultPlan

        traces = splash_traces("fft", 4, scale=0.2, seed=0)
        config = cohort_config([100, 20, 20, 20])
        baseline = run_simulation(config, traces)
        plan = FaultPlan.generate(
            seed=11, horizon=baseline.final_cycle, num_cores=4, n_faults=2
        )
        batch = run_lockstep_batch(
            [config, config], traces, fault_plans=[None, plan]
        )
        clean = run_simulation(config, traces)
        faulted = run_simulation(config, traces, fault_plan=plan)
        assert stats_to_dict(batch[0]) == stats_to_dict(clean)
        assert stats_to_dict(batch[1]) == stats_to_dict(faulted)


class TestSweepRunnerRouting:
    def make_jobs(self, traces, thetas_list):
        return [
            SweepJob(cohort_config(th), tuple(traces)) for th in thetas_list
        ]

    def test_same_trace_group_runs_in_lockstep(self, traces):
        runner = SweepRunner(jobs=1, cache_dir=None)
        assert runner.engine == "lockstep"
        jobs = self.make_jobs(
            traces, [[60] * 4, [20] * 4, [5, 60, 200, MSI_THETA]]
        )
        results = runner.run(jobs)
        assert runner.lockstep_groups == 1
        assert runner.lockstep_jobs == 3
        assert runner.jobs_executed == 3
        tele = runner.telemetry()
        assert tele["engine"] == "lockstep"
        assert tele["lockstep_group_sizes"] == {"3": 1}
        assert tele["trace_decode_misses"] >= 0
        for job, result in zip(jobs, results):
            direct = run_simulation(job.config, job.traces)
            assert result == stats_to_dict(direct)

    def test_unsupported_jobs_are_peeled_to_the_normal_path(self, traces):
        runner = SweepRunner(jobs=1, cache_dir=None)
        checked = replace(cohort_config([30] * 4), check_coherence=True)
        jobs = self.make_jobs(traces, [[60] * 4, [20] * 4])
        jobs.append(SweepJob(checked, tuple(traces)))
        runner.run(jobs)
        assert runner.lockstep_jobs == 2
        assert runner.lockstep_peeled == 1
        assert runner.jobs_executed == 3

    def test_engine_fast_and_seed_bypass_grouping(self, traces):
        for engine in ("fast", "seed"):
            runner = SweepRunner(jobs=1, cache_dir=None, engine=engine)
            results = runner.run(self.make_jobs(traces, [[60] * 4, [20] * 4]))
            assert runner.lockstep_groups == 0
            for thetas, result in zip([[60] * 4, [20] * 4], results):
                direct = run_simulation(cohort_config(thetas), traces)
                assert result == stats_to_dict(direct)

    def test_lockstep_results_fill_the_shared_cache(self, traces, tmp_path):
        cache = str(tmp_path / "sweeps")
        first = SweepRunner(jobs=1, cache_dir=cache)
        jobs = self.make_jobs(traces, [[60] * 4, [20] * 4])
        first.run(jobs)
        assert first.lockstep_jobs == 2
        second = SweepRunner(jobs=1, cache_dir=cache, engine="fast")
        second.run(jobs)
        assert second.cache_hits == 2
        assert second.jobs_executed == 0

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SweepRunner(jobs=1, cache_dir=None, engine="warp")


class TestTimerSweepWorkload:
    """The benchmark workload has the regime it advertises."""

    def test_hit_dominated_and_deterministic(self):
        a = timer_sweep(2, 20_000, seed=5)
        b = timer_sweep(2, 20_000, seed=5)
        for ta, tb in zip(a, b):
            assert ta.content_digest() == tb.content_digest()
        stats = run_simulation(cohort_config([60, 60]), a)
        hits = sum(c.hits for c in stats.cores)
        misses = sum(c.misses for c in stats.cores)
        assert misses / (hits + misses) < 0.02
