"""Unit tests for the hardware cost model (Section III-B claims)."""

import pytest

from repro.params import CacheGeometry, SimConfig
from repro.sim.hardware_cost import (
    controller_cost,
    per_line_overhead,
    system_cost,
)


class TestPaperClaims:
    def test_three_percent_per_line(self):
        """16 bits per 64-byte line is ~3% (the paper's number)."""
        assert per_line_overhead(CacheGeometry()) == pytest.approx(0.03125)

    def test_eighty_bit_lut_for_five_levels(self):
        cost = controller_cost(CacheGeometry(), num_modes=5)
        assert cost.lut_bits == 80

    def test_counter_per_line(self):
        geom = CacheGeometry()  # 256 lines
        cost = controller_cost(geom, num_modes=5)
        assert cost.counter_bits == 16 * 256

    def test_total_relative_overhead_is_small(self):
        """Whole-controller overhead stays in the low single digits."""
        cost = system_cost(SimConfig(), num_modes=5)
        assert cost.relative_overhead < 0.04
        assert cost.relative_overhead > 0.03

    def test_total_bits_scale_with_cores(self):
        small = system_cost(SimConfig(num_cores=2), num_modes=5)
        large = system_cost(SimConfig(num_cores=4), num_modes=5)
        assert large.total_bits == 2 * small.total_bits

    def test_validates_mode_count(self):
        with pytest.raises(ValueError):
            controller_cost(CacheGeometry(), num_modes=0)

    def test_bigger_lines_lower_relative_cost(self):
        small = per_line_overhead(CacheGeometry(line_bytes=32,
                                                size_bytes=8192))
        large = per_line_overhead(CacheGeometry(line_bytes=128,
                                                size_bytes=32768))
        assert large < small
