"""Tests for the serving layer (repro.serve).

Unit tests drive :class:`BatchingService` directly on an event loop;
integration tests run a real :class:`ServerThread` on an ephemeral port
and talk to it over HTTP with :class:`ServeClient` — the same path the
``cohort submit`` CLI and the CI smoke script use.
"""

import asyncio
import json

import pytest

from repro.obs import SERVE_METRICS_SCHEMA, classify, summarise
from repro.runner import SweepRunner
from repro.serve import (
    BackpressureError,
    BatchingService,
    JobSpec,
    JobSpecError,
    QueueFullError,
    ServeClient,
    ServerThread,
)

TINY = dict(benchmark="fft", thetas=[60, 20, 20, 20], scale=0.05, seed=0)


def tiny_spec(**overrides):
    doc = dict(TINY)
    doc.update(overrides)
    return JobSpec.from_dict(doc)


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = tiny_spec(protocol="timed_msi", record_latencies=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(dict(TINY, benchmark="linpack"))

    def test_rejects_bad_thetas(self):
        for bad in ([], "60", [60, "x"], [True, 20], None):
            with pytest.raises(JobSpecError):
                JobSpec.from_dict(dict(TINY, thetas=bad))

    def test_rejects_unknown_fields(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(dict(TINY, exfiltrate="yes"))

    def test_rejects_non_object(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict([1, 2, 3])

    def test_spec_key_is_content_addressed(self):
        assert tiny_spec().spec_key() == tiny_spec().spec_key()
        assert tiny_spec().spec_key() != tiny_spec(seed=1).spec_key()

    def test_to_sweep_job_matches_direct_construction(self):
        from repro.params import cohort_config
        from repro.runner import SweepJob
        from repro.workloads import splash_traces

        job = tiny_spec().to_sweep_job()
        direct = SweepJob(
            cohort_config([60, 20, 20, 20]),
            tuple(splash_traces("fft", 4, scale=0.05, seed=0)),
        )
        assert job.digest() == direct.digest()


class TestBatchingService:
    def _service(self, **kwargs):
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("batch_window", 0.01)
        kwargs.setdefault("queue_limit", 8)
        return BatchingService(SweepRunner(jobs=1, cache_dir=None), **kwargs)

    def test_submissions_coalesce_into_one_batch(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec(seed=s) for s in range(3)])
            while any(r.status != "done" for r in records):
                await asyncio.sleep(0.01)
            await service.drain()
            return service, records

        service, records = asyncio.run(scenario())
        assert service.batches == 1
        assert service.jobs_completed == 3
        assert {r.status for r in records} == {"done"}
        assert all(r.result["final_cycle"] > 0 for r in records)
        assert all(r.digest for r in records)

    def test_queue_limit_rejects_with_retry_after(self):
        async def scenario():
            service = self._service(queue_limit=2)
            # Batcher NOT started: submissions stay queued.
            service.submit([tiny_spec(seed=1), tiny_spec(seed=2)])
            with pytest.raises(QueueFullError) as excinfo:
                service.submit([tiny_spec(seed=3)])
            return service, excinfo.value

        service, err = asyncio.run(scenario())
        assert err.retry_after == service.retry_after > 0
        assert service.jobs_rejected == 1
        assert service.jobs_submitted == 2

    def test_oversized_submission_is_all_or_nothing(self):
        async def scenario():
            service = self._service(queue_limit=3)
            with pytest.raises(QueueFullError):
                service.submit([tiny_spec(seed=s) for s in range(4)])
            return service

        service = asyncio.run(scenario())
        assert service.queue_depth == 0
        assert service.jobs_rejected == 4

    def test_duplicate_jobs_hit_the_runner_cache(self, tmp_path):
        async def scenario():
            runner = SweepRunner(jobs=1, cache_dir=str(tmp_path / "sweeps"))
            service = BatchingService(
                runner, max_batch=2, batch_window=0.01, queue_limit=8
            )
            await service.start()
            first = service.submit([tiny_spec()])
            await self._wait_done(first)
            second = service.submit([tiny_spec(), tiny_spec()])
            await self._wait_done(second)
            await service.drain()
            return service, first + second

        service, records = asyncio.run(scenario())
        assert service.runner.cache_misses == 1
        assert service.runner.cache_hits == 2
        results = [r.result for r in records]
        assert results[0] == results[1] == results[2]

    @staticmethod
    async def _wait_done(records):
        while any(r.status not in ("done", "failed") for r in records):
            await asyncio.sleep(0.01)

    def test_drain_finishes_queued_jobs_then_refuses(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec()])
            await service.drain()
            assert records[0].status == "done"
            from repro.serve import DrainingError

            with pytest.raises(DrainingError):
                service.submit([tiny_spec(seed=9)])
            return service

        service = asyncio.run(scenario())
        assert service.draining

    def test_failed_batch_reports_per_job_error(self):
        async def scenario():
            service = self._service()
            await service.start()
            # Bypass from_dict validation to reach the execution path
            # with a spec the workload layer rejects.
            bad = JobSpec(benchmark="fft", thetas=(60, -7, 20, 20), scale=0.05)
            records = service.submit([bad])
            await self._wait_done(records)
            await service.drain()
            return records

        records = asyncio.run(scenario())
        assert records[0].status == "failed"
        assert records[0].error

    def test_oplog_covers_reject_and_drain(self, tmp_path):
        from repro.obs import read_oplog, OpLogger

        async def scenario():
            service = self._service(
                queue_limit=1,
                oplog=OpLogger(path=str(tmp_path / "op.jsonl")),
            )
            # Batcher not yet started: the queue slot stays taken.
            records = service.submit([tiny_spec()], trace_id="tr-ok")
            with pytest.raises(QueueFullError):
                service.submit([tiny_spec(seed=7)], trace_id="tr-full")
            await service.start()
            await self._wait_done(records)
            await service.drain()
            return service

        service = asyncio.run(scenario())
        service.oplog.close()
        events = read_oplog(service.oplog.path)
        by_event = {}
        for doc in events:
            by_event.setdefault(doc["event"], []).append(doc)
        assert by_event["admit"][0]["trace_id"] == "tr-ok"
        reject = by_event["reject"][0]
        assert reject["reason"] == "queue_full"
        assert reject["trace_id"] == "tr-full"
        assert "drain" in by_event and "drained" in by_event

    def test_metrics_shape_and_summary(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec()])
            await self._wait_done(records)
            await service.drain()
            return service.metrics()

        doc = json.loads(json.dumps(asyncio.run(scenario())))
        assert doc["schema"] == SERVE_METRICS_SCHEMA
        assert classify(doc) == "serve_metrics"
        assert doc["service"]["jobs_completed"] == 1
        assert doc["service"]["batches"] == 1
        assert doc["runner"]["cache_misses"] == 1
        text = summarise(doc)
        assert "serve metrics" in text and "completed=1" in text


class TestHTTPServer:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("serve-cache")
        runner = SweepRunner(jobs=1, cache_dir=str(cache))
        with ServerThread(
            runner=runner, max_batch=4, batch_window=0.01, queue_limit=16
        ) as thread:
            yield thread

    @pytest.fixture(scope="class")
    def client(self, server):
        return ServeClient(server.base_url, timeout=30.0)

    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["queue_limit"] == 16

    def test_submit_and_poll_roundtrip(self, client):
        records = client.submit_and_wait([TINY], timeout=120)
        assert records[0]["status"] == "done"
        direct = SweepRunner(jobs=1, cache_dir=None).run(
            [tiny_spec().to_sweep_job()]
        )[0]
        assert records[0]["result"] == direct
        assert records[0]["digest"] == tiny_spec().to_sweep_job().digest()

    def test_invalid_spec_is_400(self, client):
        from repro.serve import ServeClientError

        with pytest.raises(ServeClientError) as excinfo:
            client.submit([dict(TINY, benchmark="nope")])
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        from repro.serve import ServeClientError

        with pytest.raises(ServeClientError) as excinfo:
            client.job("no-such-id")
        assert excinfo.value.status == 404

    def test_unknown_route_and_method(self, client):
        status, _, _ = client._request("GET", "/nope")
        assert status == 404
        status, _, _ = client._request("DELETE", "/jobs")
        assert status == 405

    def test_metrics_over_http(self, client):
        # Runs after submissions in this class: counters are live.
        doc = client.metrics()
        assert doc["schema"] == SERVE_METRICS_SCHEMA
        assert doc["service"]["jobs_submitted"] >= 1

    def test_malformed_json_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request(
                "POST", "/jobs", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()


class TestTraceContextOverHTTP:
    @pytest.fixture()
    def traced_server(self, tmp_path):
        from repro.obs import OpLogger

        oplog = OpLogger(path=str(tmp_path / "op.jsonl"))
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path / "cache"))
        with ServerThread(
            runner=runner, max_batch=4, batch_window=0.01,
            queue_limit=16, oplog=oplog,
        ) as thread:
            yield thread

    def test_one_trace_id_end_to_end(self, traced_server):
        """The acceptance path: one id in the HTTP response header and
        body, the result envelope, the oplog, and the exported trace."""
        from repro.obs import read_oplog

        client = ServeClient(traced_server.base_url, timeout=30.0)
        supplied = "trace-e2e-0001"
        records = client.submit_and_wait(
            [TINY], timeout=120, trace_id=supplied
        )
        assert records[0]["status"] == "done"
        assert records[0]["trace_id"] == supplied  # result envelope
        status, headers, doc = client._request(
            "GET", f"/jobs/{records[0]['id']}"
        )
        assert status == 200 and doc["trace_id"] == supplied
        service = traced_server.service
        service.oplog.close()
        events = read_oplog(service.oplog.path)
        chain = [e["event"] for e in events if e.get("trace_id") == supplied]
        assert "admit" in chain and "batch" in chain and "retire" in chain
        assert "execute" in chain or "cache_hit" in chain  # runner side
        trace_doc = service.service_trace()
        spans = [
            e for e in trace_doc["traceEvents"]
            if e.get("args", {}).get("trace_id") == supplied
        ]
        assert spans, "exported service trace lost the trace id"

    def test_response_header_echoes_trace_id(self, traced_server):
        client = ServeClient(traced_server.base_url, timeout=30.0)
        status, headers, doc = client._request(
            "POST", "/jobs", {"jobs": [TINY]},
            extra_headers={"X-Trace-Id": "my.trace-42"},
        )
        assert status == 202
        lower = {k.lower(): v for k, v in headers.items()}
        assert lower["x-trace-id"] == "my.trace-42"
        assert doc["trace_id"] == "my.trace-42"
        assert all(j["trace_id"] == "my.trace-42" for j in doc["jobs"])

    def test_invalid_header_gets_fresh_id_not_an_error(self, traced_server):
        from repro.obs import valid_trace_id

        client = ServeClient(traced_server.base_url, timeout=30.0)
        status, headers, doc = client._request(
            "POST", "/jobs", {"jobs": [TINY]},
            extra_headers={"X-Trace-Id": "bad id with spaces"},
        )
        assert status == 202
        minted = doc["trace_id"]
        assert minted != "bad id with spaces"
        assert valid_trace_id(minted)

    def test_error_responses_carry_trace_id(self, traced_server):
        client = ServeClient(traced_server.base_url, timeout=30.0)
        status, headers, doc = client._request(
            "POST", "/jobs", {"jobs": [dict(TINY, benchmark="nope")]},
            extra_headers={"X-Trace-Id": "err-trace"},
        )
        assert status == 400
        assert doc["trace_id"] == "err-trace"
        lower = {k.lower(): v for k, v in headers.items()}
        assert lower["x-trace-id"] == "err-trace"

    def test_client_oplog_records_submission(self, traced_server, tmp_path):
        from repro.obs import OpLogger, read_oplog

        log_path = tmp_path / "client.jsonl"
        client = ServeClient(
            traced_server.base_url, timeout=30.0,
            oplog=OpLogger(path=str(log_path), component="client"),
        )
        client.submit([TINY], trace_id="client-side-1")
        client.oplog.close()
        events = read_oplog(str(log_path))
        kinds = [e["event"] for e in events]
        assert kinds == ["client_submit", "client_accepted"]
        assert all(e["trace_id"] == "client-side-1" for e in events)
        assert all(e["component"] == "client" for e in events)


class TestPrometheusOverHTTP:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("prom-cache")
        runner = SweepRunner(jobs=1, cache_dir=str(cache))
        with ServerThread(
            runner=runner, max_batch=4, batch_window=0.01, queue_limit=16
        ) as thread:
            client = ServeClient(thread.base_url, timeout=30.0)
            client.submit_and_wait([TINY], timeout=120)
            yield thread

    @staticmethod
    def _get(server, path, accept=None):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            headers = {"Accept": accept} if accept else {}
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            body = response.read().decode()
            return response.status, dict(response.getheaders()), body
        finally:
            conn.close()

    def test_format_query_param_switches_to_exposition(self, server):
        from repro.obs import parse_prometheus_text

        status, headers, body = self._get(
            server, "/metrics?format=prometheus"
        )
        assert status == 200
        lower = {k.lower(): v for k, v in headers.items()}
        assert lower["content-type"].startswith("text/plain; version=0.0.4")
        families = parse_prometheus_text(body)
        labels, value = families["cohort_serve_jobs_completed_total"][0]
        assert value >= 1.0
        assert labels["service"]
        assert "cohort_serve_queue_wait_ms_bucket" in families

    def test_accept_header_negotiates_exposition(self, server):
        from repro.obs import parse_prometheus_text

        status, _, body = self._get(server, "/metrics", accept="text/plain")
        assert status == 200
        assert parse_prometheus_text(body)

    def test_json_stays_the_default_and_byte_compatible(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == SERVE_METRICS_SCHEMA
        status, _, body = self._get(
            server, "/metrics", accept="application/json"
        )
        assert json.loads(body)["schema"] == SERVE_METRICS_SCHEMA

    def test_exposition_numbers_match_json(self, server):
        from repro.obs import parse_prometheus_text

        _, _, json_body = self._get(server, "/metrics")
        _, _, prom_body = self._get(server, "/metrics?format=prometheus")
        doc = json.loads(json_body)
        families = parse_prometheus_text(prom_body)
        assert (
            families["cohort_serve_jobs_submitted_total"][0][1]
            == float(doc["service"]["jobs_submitted"])
        )
        assert (
            families["cohort_runner_cache_misses_total"][0][1]
            == float(doc["runner"]["cache_misses"])
        )


class TestClientBackoff:
    def test_delay_doubles_with_attempts_within_jitter(self):
        for attempt, base in ((1, 1.0), (2, 2.0), (3, 4.0)):
            for _ in range(50):
                delay = ServeClient._backoff_delay(1.0, attempt, 30.0)
                assert 0.75 * base <= delay <= 1.25 * base

    def test_delay_clamped_to_max_backoff(self):
        for _ in range(50):
            assert ServeClient._backoff_delay(100.0, 5, 2.5) == 2.5

    def test_zero_hint_still_yields_positive_delay(self):
        delay = ServeClient._backoff_delay(0.0, 1, 30.0)
        assert 0.001 <= delay <= 0.00125 + 1e-9

    def test_jitter_actually_varies(self):
        draws = {
            round(ServeClient._backoff_delay(1.0, 1, 30.0), 6)
            for _ in range(50)
        }
        assert len(draws) > 1


class TestBackpressureOverHTTP:
    def test_full_queue_returns_429_then_recovers(self):
        # A server whose batcher can drain only slowly.  An oversized
        # all-or-nothing burst guarantees a 429 + Retry-After whatever
        # the drain speed; the per-spec loop then rides bounded retries
        # through any organic saturation until every job lands.
        runner = SweepRunner(jobs=1, cache_dir=None)
        with ServerThread(
            runner=runner, max_batch=1, batch_window=0.0, queue_limit=2
        ) as thread:
            client = ServeClient(thread.base_url, timeout=30.0)
            with pytest.raises(BackpressureError) as excinfo:
                client.submit([dict(TINY, seed=90 + s) for s in range(3)])
            assert excinfo.value.retry_after > 0
            assert excinfo.value.status == 429
            specs = [dict(TINY, seed=s) for s in range(12)]
            accepted = []
            for spec in specs:
                accepted.extend(
                    client.submit([spec], max_retries=50, backoff=0.05)
                )
            records = client.wait(
                [doc["id"] for doc in accepted], timeout=300
            )
            assert all(r["status"] == "done" for r in records.values())
            metrics = client.metrics()
            assert metrics["service"]["jobs_rejected"] >= 3
            assert metrics["service"]["jobs_completed"] == len(specs)


class TestBatchPolling:
    """POST /jobs/poll and the batched client paths built on it."""

    def test_poll_jobs_returns_known_and_rejects_unknown(self):
        with ServerThread(runner=SweepRunner(jobs=1, cache_dir=None)) as t:
            client = ServeClient(t.base_url, timeout=30.0)
            accepted = client.submit([dict(TINY, seed=s) for s in range(3)])
            ids = [doc["id"] for doc in accepted]
            client.wait(ids, timeout=300)
            records = client.poll_jobs(ids)
            assert set(records) == set(ids)
            assert all(r["status"] == "done" for r in records.values())
            assert all("result" in r for r in records.values())
            slim = client.poll_jobs(ids, include_result=False)
            assert all("result" not in r for r in slim.values())
            from repro.serve import ServeClientError

            with pytest.raises(ServeClientError) as excinfo:
                client.poll_jobs(ids + ["nope"])
            assert excinfo.value.status == 404

    def test_wait_falls_back_when_batch_endpoint_is_missing(self):
        # A server that 404s /jobs/poll (an old deployment): wait must
        # still finish via per-job GETs.
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class OldServer(BaseHTTPRequestHandler):
            def _reply(self, status, doc):
                body = json.dumps(doc).encode()
                self.send_response(status)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                self._reply(404, {"error": "no route"})

            def do_GET(self):
                job_id = self.path.rsplit("/", 1)[-1]
                self._reply(200, {"id": job_id, "status": "done"})

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), OldServer)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{server.server_address[1]}", timeout=5.0
            )
            records = client.wait(["a", "b", "c"], timeout=10.0)
            assert set(records) == {"a", "b", "c"}
        finally:
            server.shutdown()


class TestWaitDeadline:
    def test_deadline_is_enforced_inside_one_pass(self):
        # Pre-fix, the deadline was only checked *between* full passes
        # over the pending list, and each pass issued one blocking GET
        # per job: 8 pending jobs at 0.15s each meant a 0.4s timeout
        # returned after ~1.2s.  The fix checks the deadline before
        # every HTTP round-trip, so the overrun is bounded by one
        # request, not by the fan-out.
        import threading
        import time as _time
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class SlowJobServer(BaseHTTPRequestHandler):
            def _reply(self, status, doc):
                body = json.dumps(doc).encode()
                self.send_response(status)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self):  # no batch endpoint: force per-job GETs
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                self._reply(404, {"error": "no route"})

            def do_GET(self):
                _time.sleep(0.15)
                job_id = self.path.rsplit("/", 1)[-1]
                self._reply(200, {"id": job_id, "status": "running"})

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), SlowJobServer)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{server.server_address[1]}", timeout=5.0
            )
            start = _time.monotonic()
            with pytest.raises(TimeoutError) as excinfo:
                client.wait(
                    [f"job-{i}" for i in range(8)], timeout=0.4, poll=0.01
                )
            elapsed = _time.monotonic() - start
        finally:
            server.shutdown()
        assert "still pending" in str(excinfo.value)
        assert elapsed < 1.0, (
            f"wait overran its 0.4s deadline by {elapsed - 0.4:.2f}s — "
            "deadline not enforced inside the polling pass"
        )


class _SteppedTime:
    """``time``-module stand-in: steppable wall clock, real monotonic."""

    def __init__(self):
        import time as _real

        self._real = _real
        self.offset = 0.0

    def time(self):
        return self._real.time() + self.offset

    def monotonic(self):
        return self._real.monotonic()

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestMonotonicDurations:
    def test_wall_clock_step_cannot_corrupt_queue_wait_or_duration(
        self, tmp_path, monkeypatch
    ):
        # An NTP step of +1h between admission and execution must not
        # show up in queue-wait or duration_ms: both derive from the
        # monotonic clock; the wall clock is display/journal only.
        import repro.serve.service as service_mod
        from repro.obs import OpLogger

        clock = _SteppedTime()
        monkeypatch.setattr(service_mod, "time", clock)
        oplog_path = tmp_path / "serve.oplog.jsonl"

        async def scenario():
            service = BatchingService(
                SweepRunner(jobs=1, cache_dir=None),
                max_batch=4, batch_window=0.01, queue_limit=8,
                oplog=OpLogger(path=str(oplog_path), component="serve"),
            )
            records = service.submit([tiny_spec()])
            clock.offset = 3600.0  # the NTP step lands mid-queue
            await service.start()
            while any(r.status not in ("done", "failed") for r in records):
                await asyncio.sleep(0.01)
            await service.drain()
            return service, records

        service, records = asyncio.run(scenario())
        assert records[0].status == "done"
        assert service._queue_wait_ms.max < 60_000
        assert service.metrics()["service"]["queue_wait_ms_p95"] < 60_000
        retires = [
            json.loads(line)
            for line in oplog_path.read_text().splitlines()
            if '"retire"' in line
        ]
        assert retires
        assert all(0 <= e["duration_ms"] < 60_000 for e in retires)
        # Wall-clock journal fields keep the stepped time (display).
        assert records[0].finished_at - records[0].submitted_at >= 3600


class TestAtomicAdmission:
    def test_concurrent_bursts_never_overshoot_queue_limit(self):
        # submit() is loop-atomic (no awaits between the limit check
        # and the final append), so interleaved oversize bursts admit
        # at most queue_limit jobs and reject the rest whole.
        async def scenario():
            service = BatchingService(
                SweepRunner(jobs=1, cache_dir=None),
                max_batch=4, batch_window=0.01, queue_limit=8,
            )

            async def burst(seed0):
                await asyncio.sleep(0)
                try:
                    return service.submit(
                        [tiny_spec(seed=seed0 + i) for i in range(6)]
                    )
                except QueueFullError as exc:
                    return exc

            results = await asyncio.gather(burst(0), burst(100))
            return service, results

        service, results = asyncio.run(scenario())
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        admitted = [r for r in results if isinstance(r, list)]
        assert len(rejected) == 1 and len(admitted) == 1
        assert service.max_queue_depth <= 8
        assert service.queue_depth == 6
