"""Tests for the serving layer (repro.serve).

Unit tests drive :class:`BatchingService` directly on an event loop;
integration tests run a real :class:`ServerThread` on an ephemeral port
and talk to it over HTTP with :class:`ServeClient` — the same path the
``cohort submit`` CLI and the CI smoke script use.
"""

import asyncio
import json

import pytest

from repro.obs import SERVE_METRICS_SCHEMA, classify, summarise
from repro.runner import SweepRunner
from repro.serve import (
    BackpressureError,
    BatchingService,
    JobSpec,
    JobSpecError,
    QueueFullError,
    ServeClient,
    ServerThread,
)

TINY = dict(benchmark="fft", thetas=[60, 20, 20, 20], scale=0.05, seed=0)


def tiny_spec(**overrides):
    doc = dict(TINY)
    doc.update(overrides)
    return JobSpec.from_dict(doc)


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = tiny_spec(protocol="timed_msi", record_latencies=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(dict(TINY, benchmark="linpack"))

    def test_rejects_bad_thetas(self):
        for bad in ([], "60", [60, "x"], [True, 20], None):
            with pytest.raises(JobSpecError):
                JobSpec.from_dict(dict(TINY, thetas=bad))

    def test_rejects_unknown_fields(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(dict(TINY, exfiltrate="yes"))

    def test_rejects_non_object(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict([1, 2, 3])

    def test_spec_key_is_content_addressed(self):
        assert tiny_spec().spec_key() == tiny_spec().spec_key()
        assert tiny_spec().spec_key() != tiny_spec(seed=1).spec_key()

    def test_to_sweep_job_matches_direct_construction(self):
        from repro.params import cohort_config
        from repro.runner import SweepJob
        from repro.workloads import splash_traces

        job = tiny_spec().to_sweep_job()
        direct = SweepJob(
            cohort_config([60, 20, 20, 20]),
            tuple(splash_traces("fft", 4, scale=0.05, seed=0)),
        )
        assert job.digest() == direct.digest()


class TestBatchingService:
    def _service(self, **kwargs):
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("batch_window", 0.01)
        kwargs.setdefault("queue_limit", 8)
        return BatchingService(SweepRunner(jobs=1, cache_dir=None), **kwargs)

    def test_submissions_coalesce_into_one_batch(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec(seed=s) for s in range(3)])
            while any(r.status != "done" for r in records):
                await asyncio.sleep(0.01)
            await service.drain()
            return service, records

        service, records = asyncio.run(scenario())
        assert service.batches == 1
        assert service.jobs_completed == 3
        assert {r.status for r in records} == {"done"}
        assert all(r.result["final_cycle"] > 0 for r in records)
        assert all(r.digest for r in records)

    def test_queue_limit_rejects_with_retry_after(self):
        async def scenario():
            service = self._service(queue_limit=2)
            # Batcher NOT started: submissions stay queued.
            service.submit([tiny_spec(seed=1), tiny_spec(seed=2)])
            with pytest.raises(QueueFullError) as excinfo:
                service.submit([tiny_spec(seed=3)])
            return service, excinfo.value

        service, err = asyncio.run(scenario())
        assert err.retry_after == service.retry_after > 0
        assert service.jobs_rejected == 1
        assert service.jobs_submitted == 2

    def test_oversized_submission_is_all_or_nothing(self):
        async def scenario():
            service = self._service(queue_limit=3)
            with pytest.raises(QueueFullError):
                service.submit([tiny_spec(seed=s) for s in range(4)])
            return service

        service = asyncio.run(scenario())
        assert service.queue_depth == 0
        assert service.jobs_rejected == 4

    def test_duplicate_jobs_hit_the_runner_cache(self, tmp_path):
        async def scenario():
            runner = SweepRunner(jobs=1, cache_dir=str(tmp_path / "sweeps"))
            service = BatchingService(
                runner, max_batch=2, batch_window=0.01, queue_limit=8
            )
            await service.start()
            first = service.submit([tiny_spec()])
            await self._wait_done(first)
            second = service.submit([tiny_spec(), tiny_spec()])
            await self._wait_done(second)
            await service.drain()
            return service, first + second

        service, records = asyncio.run(scenario())
        assert service.runner.cache_misses == 1
        assert service.runner.cache_hits == 2
        results = [r.result for r in records]
        assert results[0] == results[1] == results[2]

    @staticmethod
    async def _wait_done(records):
        while any(r.status not in ("done", "failed") for r in records):
            await asyncio.sleep(0.01)

    def test_drain_finishes_queued_jobs_then_refuses(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec()])
            await service.drain()
            assert records[0].status == "done"
            from repro.serve import DrainingError

            with pytest.raises(DrainingError):
                service.submit([tiny_spec(seed=9)])
            return service

        service = asyncio.run(scenario())
        assert service.draining

    def test_failed_batch_reports_per_job_error(self):
        async def scenario():
            service = self._service()
            await service.start()
            # Bypass from_dict validation to reach the execution path
            # with a spec the workload layer rejects.
            bad = JobSpec(benchmark="fft", thetas=(60, -7, 20, 20), scale=0.05)
            records = service.submit([bad])
            await self._wait_done(records)
            await service.drain()
            return records

        records = asyncio.run(scenario())
        assert records[0].status == "failed"
        assert records[0].error

    def test_metrics_shape_and_summary(self):
        async def scenario():
            service = self._service()
            await service.start()
            records = service.submit([tiny_spec()])
            await self._wait_done(records)
            await service.drain()
            return service.metrics()

        doc = json.loads(json.dumps(asyncio.run(scenario())))
        assert doc["schema"] == SERVE_METRICS_SCHEMA
        assert classify(doc) == "serve_metrics"
        assert doc["service"]["jobs_completed"] == 1
        assert doc["service"]["batches"] == 1
        assert doc["runner"]["cache_misses"] == 1
        text = summarise(doc)
        assert "serve metrics" in text and "completed=1" in text


class TestHTTPServer:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("serve-cache")
        runner = SweepRunner(jobs=1, cache_dir=str(cache))
        with ServerThread(
            runner=runner, max_batch=4, batch_window=0.01, queue_limit=16
        ) as thread:
            yield thread

    @pytest.fixture(scope="class")
    def client(self, server):
        return ServeClient(server.base_url, timeout=30.0)

    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["queue_limit"] == 16

    def test_submit_and_poll_roundtrip(self, client):
        records = client.submit_and_wait([TINY], timeout=120)
        assert records[0]["status"] == "done"
        direct = SweepRunner(jobs=1, cache_dir=None).run(
            [tiny_spec().to_sweep_job()]
        )[0]
        assert records[0]["result"] == direct
        assert records[0]["digest"] == tiny_spec().to_sweep_job().digest()

    def test_invalid_spec_is_400(self, client):
        from repro.serve import ServeClientError

        with pytest.raises(ServeClientError) as excinfo:
            client.submit([dict(TINY, benchmark="nope")])
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        from repro.serve import ServeClientError

        with pytest.raises(ServeClientError) as excinfo:
            client.job("no-such-id")
        assert excinfo.value.status == 404

    def test_unknown_route_and_method(self, client):
        status, _, _ = client._request("GET", "/nope")
        assert status == 404
        status, _, _ = client._request("DELETE", "/jobs")
        assert status == 405

    def test_metrics_over_http(self, client):
        # Runs after submissions in this class: counters are live.
        doc = client.metrics()
        assert doc["schema"] == SERVE_METRICS_SCHEMA
        assert doc["service"]["jobs_submitted"] >= 1

    def test_malformed_json_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request(
                "POST", "/jobs", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()


class TestBackpressureOverHTTP:
    def test_full_queue_returns_429_then_recovers(self):
        # A server whose batcher can drain only slowly: saturate the
        # admission queue, observe 429 + Retry-After, then retry in.
        runner = SweepRunner(jobs=1, cache_dir=None)
        with ServerThread(
            runner=runner, max_batch=1, batch_window=0.0, queue_limit=2
        ) as thread:
            client = ServeClient(thread.base_url, timeout=30.0)
            specs = [dict(TINY, seed=s) for s in range(12)]
            accepted, rejections = [], 0
            for spec in specs:
                try:
                    accepted.extend(client.submit([spec]))
                except BackpressureError as exc:
                    rejections += 1
                    assert exc.retry_after > 0
                    accepted.extend(
                        client.submit([spec], max_retries=50, backoff=0.05)
                    )
            assert rejections >= 1
            records = client.wait(
                [doc["id"] for doc in accepted], timeout=300
            )
            assert all(r["status"] == "done" for r in records.values())
            metrics = client.metrics()
            assert metrics["service"]["jobs_rejected"] >= rejections
            assert metrics["service"]["jobs_completed"] == len(specs)
