"""Tests for run metrics: histograms and samplers (repro.obs.metrics)."""

import pytest

from repro.params import MSI_THETA, cohort_config
from repro.obs import MetricsCollector, log2_bucket
from repro.obs.metrics import SAMPLE_SERIES, LatencyHistogram, bucket_range
from repro.sim.system import System
from repro.workloads import splash_traces

from conftest import t


def run_with_metrics(config, traces, sample_every=0):
    system = System(config, traces)
    metrics = MetricsCollector.attach(system, sample_every=sample_every)
    stats = system.run()
    return system, stats, metrics


class TestLog2Buckets:
    @pytest.mark.parametrize("latency,bucket", [
        (0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4),
        (255, 8), (256, 9),
    ])
    def test_bucket_of(self, latency, bucket):
        assert log2_bucket(latency) == bucket

    def test_bucket_range_round_trips(self):
        for bucket in range(12):
            lo, hi = bucket_range(bucket)
            assert log2_bucket(lo) == bucket
            assert log2_bucket(hi) == bucket

    def test_histogram_aggregates(self):
        hist = LatencyHistogram()
        for latency in (3, 5, 5, 100):
            hist.add(latency)
        assert hist.total == 4
        assert hist.sum == 113
        assert hist.max == 100
        assert hist.mean == pytest.approx(113 / 4)
        d = hist.to_dict()
        assert d["buckets"] == {"2": 1, "3": 2, "7": 1}

    def test_percentile_conservative_upper_bound(self):
        hist = LatencyHistogram()
        for latency in (3, 5, 5, 100):
            hist.add(latency)
        # Bucket uppers: bucket 2 -> 3, bucket 3 -> 7, bucket 7 -> 127.
        assert hist.percentile(0.0) == 3
        assert hist.percentile(0.25) == 3
        assert hist.percentile(0.5) == 7
        assert hist.percentile(0.75) == 7
        assert hist.percentile(1.0) == 127
        # Conservative: the estimate never undershoots the true value.
        assert hist.percentile(1.0) >= hist.max

    def test_percentile_empty_and_bad_q(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.5) == 0
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_percentile_extremes_on_empty(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.0) == 0
        assert hist.percentile(1.0) == 0
        assert hist.max == 0
        assert hist.mean == 0.0

    def test_single_bucket_every_quantile_is_its_upper_bound(self):
        hist = LatencyHistogram()
        for latency in (4, 5, 6, 7):  # all land in bucket 3
            hist.add(latency)
        upper = bucket_range(3)[1]
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == upper
        assert hist.max == 7
        assert hist.sum == 22

    def test_single_observation(self):
        hist = LatencyHistogram()
        hist.add(0)
        assert hist.total == 1
        assert hist.percentile(0.0) == 0
        assert hist.percentile(1.0) == 0
        assert hist.to_dict()["buckets"] == {"0": 1}


class TestHistogramMerge:
    def _fed(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.add(value)
        return hist

    def test_merge_is_exact(self):
        """Merging equals feeding every observation into one histogram."""
        left = self._fed([1, 3, 3, 90])
        right = self._fed([2, 90, 4000])
        direct = self._fed([1, 3, 3, 90, 2, 90, 4000])
        merged = left.merge(right)
        assert merged is left  # in place, chains
        assert merged.to_dict() == direct.to_dict()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert merged.percentile(q) == direct.percentile(q)

    def test_merge_empty_is_identity_both_ways(self):
        hist = self._fed([5, 9])
        before = hist.to_dict()
        assert hist.merge(LatencyHistogram()).to_dict() == before
        empty = LatencyHistogram()
        assert empty.merge(hist).to_dict() == before

    def test_merge_tracks_max(self):
        low, high = self._fed([3]), self._fed([1000])
        assert low.merge(high).max == 1000
        high2 = self._fed([1000])
        assert high2.merge(self._fed([3])).max == 1000

    def test_from_dict_round_trips(self):
        hist = self._fed([3, 5, 5, 100])
        rebuilt = LatencyHistogram.from_dict(hist.to_dict())
        assert rebuilt.to_dict() == hist.to_dict()
        assert rebuilt.percentile(0.5) == hist.percentile(0.5)

    def test_from_dict_ignores_unknown_keys_and_defaults(self):
        rebuilt = LatencyHistogram.from_dict({"mean": 9.0, "novel": True})
        assert rebuilt.total == 0
        assert rebuilt.to_dict()["buckets"] == {}


class TestHistogramCollection:
    def test_one_histogram_per_core(self):
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.2)
        _, stats, metrics = run_with_metrics(config, traces)
        for core in range(4):
            hist = metrics.histograms[(core, 0)]
            assert hist.total == stats.cores[core].misses
            assert hist.max == stats.cores[core].max_request_latency

    def test_mode_keyed_after_switch(self):
        traces = [t([(0, "W", 1), (500, "W", 2)])]
        system = System(cohort_config([50]), traces)
        metrics = MetricsCollector.attach(system)
        system.caches[0].lut.program(2, MSI_THETA)
        system.kernel.schedule(
            100, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        system.run()
        assert (0, 0) in metrics.histograms
        assert (0, 2) in metrics.histograms
        rows = metrics.histograms_to_dict()
        assert [(r["core"], r["mode"]) for r in rows] == [(0, 0), (0, 2)]


class TestSampler:
    def test_sampling_disabled_by_default(self):
        config = cohort_config([60, 60])
        traces = splash_traces("ocean", 2, scale=0.2)
        _, _, metrics = run_with_metrics(config, traces)
        assert metrics.samples == []

    def test_rejects_negative_cadence(self):
        with pytest.raises(ValueError):
            MetricsCollector(sample_every=-1)

    def test_sample_rows_carry_every_series(self):
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.2)
        _, stats, metrics = run_with_metrics(config, traces, sample_every=100)
        assert metrics.samples
        for row in metrics.samples:
            for series in SAMPLE_SERIES:
                assert series in row
            assert 0 <= row["miss_rate"] <= 1.0
            assert row["protected_lines"] >= 0
            assert row["wb_queue_depth"] >= 0
        cycles = [row["cycle"] for row in metrics.samples]
        assert cycles == sorted(cycles)
        assert all(c <= stats.final_cycle for c in cycles)

    def test_windowed_bus_utilisation_averages_to_total(self):
        """Summing busy cycles recovered from the windows matches the
        stats counter for the covered prefix of the run."""
        config = cohort_config([60] * 4)
        traces = splash_traces("ocean", 4, scale=0.2)
        _, stats, metrics = run_with_metrics(config, traces, sample_every=50)
        recovered = 0.0
        last = 0
        for row in metrics.samples:
            recovered += row["bus_utilization"] * (row["cycle"] - last)
            last = row["cycle"]
        assert recovered <= stats.bus_busy_cycles
        assert recovered == pytest.approx(stats.bus_busy_cycles, rel=0.1)

    def test_protected_lines_observed_under_timers(self):
        traces = [
            t([(0, "W", 1), (5, "R", 1)]),
            t([(30, "W", 1)]),
        ]
        _, _, metrics = run_with_metrics(
            cohort_config([40, 40]), traces, sample_every=5
        )
        assert any(row["protected_lines"] > 0 for row in metrics.samples)

    def test_wb_queue_depth_observed(self):
        from dataclasses import replace

        from repro.params import CacheGeometry

        # Lines 0 and 4 collide in a 4-set direct-mapped L1: each store
        # evicts the previous line dirty and the next read waits for the
        # write-back to drain, keeping the queue visibly occupied.
        config = replace(
            cohort_config([60, 60]),
            l1=CacheGeometry(size_bytes=4 * 64, line_bytes=64, ways=1),
            runahead_window=0,
        )
        traces = [
            t([(0, "W", 0), (1, "W", 4), (1, "R", 0), (1, "R", 4)]),
            t([]),
        ]
        _, stats, metrics = run_with_metrics(config, traces, sample_every=1)
        assert stats.writebacks > 0
        assert any(row["wb_queue_depth"] > 0 for row in metrics.samples)

    def test_to_dict_is_json_ready(self):
        import json

        config = cohort_config([60, 60])
        traces = splash_traces("ocean", 2, scale=0.2)
        _, _, metrics = run_with_metrics(config, traces, sample_every=200)
        doc = json.loads(json.dumps(metrics.to_dict()))
        assert doc["sample_every"] == 200
        assert doc["histograms"] and doc["samples"]
