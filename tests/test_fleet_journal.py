"""Tests for the write-ahead intake journal (repro.serve.fleet).

The journal is the fleet's durability story: an accepted 202 must
survive shard crashes, supervisor crashes and torn writes.  Unit tests
drive :class:`WriteAheadJournal` directly; the integration test
SIGKILLs a real shard with journaled work outstanding and requires the
replacement fleet state to replay it.  Every journal file the fleet
writes must validate against the registered schema
(``repro.serve/intake_journal/1``) through the stock validator CLI.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.obs.schema import INTAKE_JOURNAL_SCHEMA, validate_document
from repro.serve import FleetThread, ServeClient, WriteAheadJournal

TINY = dict(benchmark="fft", thetas=[60, 20, 20, 20], scale=0.05, seed=0)


def job_doc(job_id, spec=None):
    return {
        "id": job_id,
        "spec": dict(spec or TINY),
        "trace_id": f"trace-{job_id}",
        "submitted_at": 1000.0,
    }


class TestJournalRoundTrip:
    def test_admit_then_retire_leaves_nothing_live(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "shard.jsonl"))
        journal.admit(job_doc("a"), shard=0)
        journal.admit(job_doc("b"), shard=0)
        assert journal.live_count == 2
        assert journal.retire("a")
        assert journal.retire("b")
        assert journal.live_count == 0
        journal.close()

    def test_truncates_file_when_drained(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        journal = WriteAheadJournal(str(path))
        journal.admit(job_doc("a"), shard=0)
        assert path.stat().st_size > 0
        journal.retire("a")
        assert path.stat().st_size == 0
        assert journal.truncations == 1
        journal.close()

    def test_retire_of_unknown_id_is_a_noop(self, tmp_path):
        journal = WriteAheadJournal(str(tmp_path / "shard.jsonl"))
        assert not journal.retire("ghost")
        assert journal.retires == 0
        journal.close()

    def test_recovery_round_trips_the_live_set(self, tmp_path):
        """A fresh instance over the same file sees identical state."""
        path = str(tmp_path / "shard.jsonl")
        first = WriteAheadJournal(path)
        first.admit(job_doc("a"), shard=1)
        first.admit(job_doc("b", dict(TINY, seed=7)), shard=1)
        first.retire("a")
        first.close()

        second = WriteAheadJournal(path)
        assert second.live_count == 1
        (live,) = second.live_jobs()
        assert live["id"] == "b"
        assert live["spec"]["seed"] == 7
        assert live["trace_id"] == "trace-b"
        second.close()

    def test_recovered_journal_continues_the_sequence(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        first = WriteAheadJournal(path)
        first.admit(job_doc("a"), shard=0)
        first.close()
        second = WriteAheadJournal(path)
        second.admit(job_doc("b"), shard=0)
        second.close()
        seqs = [
            json.loads(line)["seq"]
            for line in open(path)
        ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestJournalTornLines:
    def test_torn_trailing_line_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        journal = WriteAheadJournal(path)
        journal.admit(job_doc("a"), shard=0)
        journal.admit(job_doc("b"), shard=0)
        journal.close()
        # Simulate a crash mid-append: the final line is cut short.
        with open(path) as fh:
            content = fh.read()
        with open(path, "w") as fh:
            fh.write(content[: len(content) - 25])

        recovered = WriteAheadJournal(path)
        assert recovered.torn_lines == 1
        assert [doc["id"] for doc in recovered.live_jobs()] == ["a"]
        recovered.close()

    def test_garbage_lines_are_counted_and_skipped(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        with open(path, "w") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"op": "admit", "seq": 0,
                                 "schema": INTAKE_JOURNAL_SCHEMA,
                                 "ts": 1.0, "shard": 0,
                                 "job": job_doc("ok")}) + "\n")
            fh.write("[1, 2, 3]\n")
        journal = WriteAheadJournal(path)
        assert journal.torn_lines == 2
        assert journal.live_count == 1
        journal.close()


class TestJournalSchema:
    def test_every_record_validates_against_the_registry(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        journal = WriteAheadJournal(path)
        journal.admit(job_doc("a"), shard=2)
        journal.admit(job_doc("b"), shard=2)
        journal.retire("a")
        journal.close()
        with open(path) as fh:
            for line in fh:
                record = json.loads(line)
                assert record["schema"] == INTAKE_JOURNAL_SCHEMA
                assert validate_document(record) == []

    def test_validator_cli_accepts_a_real_journal(self, tmp_path):
        """``python -m repro.obs.validate`` passes a journal file."""
        path = str(tmp_path / "shard.jsonl")
        journal = WriteAheadJournal(path)
        journal.admit(job_doc("a"), shard=0)
        journal.close()
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", path],
            capture_output=True, text=True,
            env=dict(os.environ, PYTHONPATH=os.pathsep.join(
                p for p in (os.environ.get("PYTHONPATH"),
                            os.path.join(os.path.dirname(__file__),
                                         "..", "src")) if p
            )),
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_validator_rejects_a_malformed_record(self):
        bad = {
            "schema": INTAKE_JOURNAL_SCHEMA,
            "op": "promote",  # not in the enum
            "seq": 0,
            "ts": 1.0,
        }
        assert validate_document(bad)


class TestJournalReplayIntegration:
    def test_sigkill_with_live_journal_replays_every_job(self, tmp_path):
        """Kill a shard holding journaled work; nothing may be lost."""
        fleet = FleetThread(
            shards=2,
            fleet_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"),
            batch_window=0.02,
            health_interval=0.1,
            heartbeat_timeout=0.5,
            heartbeat_deadline=1.5,
            restart_backoff_base=0.2,
        )
        fleet.start()
        try:
            client = ServeClient(fleet.base_url, connect_retries=5)
            specs = [
                dict(TINY, thetas=[60 + 10 * i, 20, 20, 20])
                for i in range(6)
            ]
            accepted = client.submit(specs)
            ids = [doc["id"] for doc in accepted]
            # The journals hold every accepted job until it retires.
            supervisor = fleet.supervisor
            journal_live = sum(
                shard.journal.live_count for shard in supervisor.shards
            )
            assert journal_live == len(specs)
            victim = supervisor.shards[0]
            victim_live = [
                doc["id"] for doc in victim.journal.live_jobs()
            ]
            os.kill(victim.pid, signal.SIGKILL)
            records = client.wait(ids, timeout=300)
            assert all(
                records[job_id]["status"] == "done" for job_id in ids
            )
            # The killed shard's journaled jobs were replayed, and every
            # journal drained once the work retired.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(
                    shard.journal.live_count == 0
                    for shard in supervisor.shards
                ):
                    break
                time.sleep(0.2)
            assert all(
                shard.journal.live_count == 0
                for shard in supervisor.shards
            )
            if victim_live:
                assert supervisor.replayed_jobs >= len(victim_live)
        finally:
            fleet.stop()
