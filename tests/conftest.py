"""Shared helpers for the test-suite."""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

import pytest

from repro.params import (
    CacheGeometry,
    LatencyParams,
    MemOp,
    SimConfig,
    cohort_config,
)
from repro.sim.system import System
from repro.sim.trace import Trace

LINE = 64


def t(entries: Sequence[Tuple[int, str, int]]) -> Trace:
    """Build a trace from ``(gap, 'R'|'W', line_index)`` tuples.

    Addresses are given as *line indices* and scaled by the line size.
    """
    gaps = [e[0] for e in entries]
    ops = [int(MemOp.STORE) if e[1] == "W" else int(MemOp.LOAD) for e in entries]
    addrs = [e[2] * LINE for e in entries]
    return Trace.from_arrays(gaps, ops, addrs)


def empty_trace() -> Trace:
    return Trace.from_arrays([], [], [])


def run_checked(
    config: SimConfig,
    traces: Sequence[Trace],
    record_latencies: bool = True,
):
    """Run a simulation with the coherence oracle enabled."""
    config = replace(config, check_coherence=True)
    system = System(config, traces, record_latencies=record_latencies)
    stats = system.run()
    return system, stats


def quad_config(
    thetas: Sequence[int],
    runahead: int = 8,
    **kwargs,
) -> SimConfig:
    """Four-core CoHoRT config with paper-default parameters."""
    return cohort_config(list(thetas), runahead_window=runahead, **kwargs)


@pytest.fixture
def latencies() -> LatencyParams:
    return LatencyParams()


@pytest.fixture
def l1_geometry() -> CacheGeometry:
    return CacheGeometry()
