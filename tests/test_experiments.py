"""Integration tests for the experiment drivers (repro.experiments).

Small-scale versions of the paper's experiments, asserting the *shape*
of the results the evaluation section reports.
"""

import math

import pytest

from repro.opt import GAConfig
from repro.experiments import (
    FIG5_CONFIGS,
    cohort_addresses_all,
    format_table,
    geomean,
    ratio_summary,
    render_table_i,
    run_mode_switch_experiment,
    run_performance_benchmark,
    run_wcml_experiment,
)

FAST_GA = GAConfig(population_size=10, generations=6, seed=1)


@pytest.fixture(scope="module")
def fig5_all_cr():
    return run_wcml_experiment(
        "fft", FIG5_CONFIGS["all_cr"], scale=0.5, seed=0, ga_config=FAST_GA
    )


class TestFig5:
    def test_three_systems_reported(self, fig5_all_cr):
        assert [s.name for s in fig5_all_cr.systems] == [
            "CoHoRT",
            "PCC",
            "PENDULUM",
        ]

    def test_experimental_within_analytical(self, fig5_all_cr):
        """The predictability claim: solid bars under the T bars."""
        for system in fig5_all_cr.systems:
            assert system.within_bounds(), system.name

    def test_cohort_bounds_tightest(self, fig5_all_cr):
        assert fig5_all_cr.bound_ratio("PCC", "CoHoRT") > 1.0
        assert fig5_all_cr.bound_ratio("PENDULUM", "CoHoRT") > \
            fig5_all_cr.bound_ratio("PCC", "CoHoRT")

    def test_table_renders(self, fig5_all_cr):
        text = fig5_all_cr.to_table()
        assert "CoHoRT" in text and "PENDULUM" in text

    def test_ncr_cores_unbounded_under_pendulum(self):
        exp = run_wcml_experiment(
            "lu", FIG5_CONFIGS["2cr_2ncr"], scale=0.4, seed=0,
            ga_config=FAST_GA,
        )
        pend = exp.system("PENDULUM")
        assert math.isinf(pend.analytical[2])
        assert math.isinf(pend.analytical[3])
        assert math.isfinite(pend.analytical[0])

    def test_lone_cr_core_gets_very_tight_bound(self):
        """Figure 5c: with MSI co-runners, c0's bound collapses to
        arbitration latency plus its (large-timer) guaranteed hits."""
        exp = run_wcml_experiment(
            "cholesky", FIG5_CONFIGS["1cr_3ncr"], scale=0.4, seed=0,
            ga_config=FAST_GA,
        )
        cohort = exp.system("CoHoRT")
        pend = exp.system("PENDULUM")
        assert cohort.analytical[0] < pend.analytical[0] / 4


class TestFig6:
    def test_ordering_cohort_fastest_pendulum_slowest(self):
        result = run_performance_benchmark(
            "lu", [True] * 4, scale=0.5, seed=0, ga_config=FAST_GA
        )
        norm = result.normalised()
        assert norm["MSI-FCFS"] == 1.0
        assert norm["CoHoRT"] < norm["PENDULUM"]
        assert norm["PCC"] < norm["PENDULUM"]
        # CoHoRT stays close to the COTS baseline (paper: ~1.03x).
        assert norm["CoHoRT"] < 1.35


class TestFig7:
    @pytest.fixture(scope="class")
    def experiment(self):
        return run_mode_switch_experiment(
            benchmark="fft",
            scale=0.4,
            seed=0,
            ga_config=FAST_GA,
            run_measured=False,
        )

    def test_four_modes_in_table(self, experiment):
        assert experiment.mode_table.modes == [1, 2, 3, 4]

    def test_mode1_timers_all_timed(self, experiment):
        assert all(th != -1 for th in experiment.mode_table.thetas[1])

    def test_mode4_only_c0_timed(self, experiment):
        thetas = experiment.mode_table.thetas[4]
        assert thetas[0] != -1
        assert all(th == -1 for th in thetas[1:])

    def test_stage1_schedulable_without_switching(self, experiment):
        assert experiment.stages[0].ok_without

    def test_later_stages_unschedulable_without_switching(self, experiment):
        assert not experiment.stages[1].ok_without
        assert not experiment.stages[2].ok_without

    def test_switching_restores_schedulability(self, experiment):
        for stage in experiment.stages[1:]:
            assert stage.ok_with
            assert stage.mode_with > 1
            assert stage.degraded  # degraded, not suspended

    def test_modes_escalate_monotonically(self, experiment):
        modes = [s.mode_with for s in experiment.stages]
        assert modes == sorted(modes)

    def test_table_renders(self, experiment):
        assert "stage" in experiment.to_table()


class TestTableI:
    def test_render(self):
        text = render_table_i()
        assert "CoHoRT" in text and "PENDULUM" in text

    def test_cohort_is_the_only_full_row(self):
        assert cohort_addresses_all()


class TestReportHelpers:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [None, True]])
        assert "a" in out and "2.50" in out and "-" in out and "yes" in out

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([math.inf]) == math.inf

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([0.0, 1.0])

    def test_ratio_summary_skips_unbounded(self):
        assert ratio_summary([2.0, math.inf], [1.0, 1.0]) == pytest.approx(2.0)
