"""Property tests for run-time protocol switching (Section VI).

Mode switches reprogram timer registers while traffic is in flight; the
protocol must stay coherent and live through arbitrary switch times and
directions (timed→MSI and MSI→timed).
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MSI_THETA, cohort_config
from repro.sim.system import System

from test_system_properties import random_traces

theta_values = st.sampled_from([MSI_THETA, 1, 10, 80, 300])


@st.composite
def switching_case(draw):
    seed = draw(st.integers(0, 5000))
    num_cores = draw(st.integers(2, 4))
    n = draw(st.integers(20, 60))
    initial = [draw(theta_values) for _ in range(num_cores)]
    switches = []
    for _ in range(draw(st.integers(1, 3))):
        at = draw(st.integers(1, 5000))
        thetas = [draw(theta_values) for _ in range(num_cores)]
        switches.append((at, thetas))
    return seed, num_cores, n, initial, switches


@given(case=switching_case())
@settings(max_examples=40, deadline=None)
def test_runtime_theta_switches_stay_coherent(case):
    seed, num_cores, n, initial, switches = case
    traces = random_traces(seed, num_cores, n, 3, 8, 0.5, 4)
    config = replace(cohort_config(initial), check_coherence=True)
    system = System(config, traces)
    for at, thetas in switches:
        def apply(thetas=thetas):
            for core_id, theta in enumerate(thetas):
                system.set_theta(core_id, theta)
        system.kernel.schedule(at, system.PHASE_EFFECT, apply)
    stats = system.run()  # oracle raises on any coherence violation
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(case=switching_case())
@settings(max_examples=25, deadline=None)
def test_degrading_everyone_to_msi_mid_run_is_safe(case):
    """The paper's degraded mode: all cores fall back to MSI mid-flight."""
    seed, num_cores, n, initial, switches = case
    traces = random_traces(seed, num_cores, n, 3, 8, 0.5, 4)
    config = replace(cohort_config(initial), check_coherence=True)
    system = System(config, traces)
    at = switches[0][0]
    system.kernel.schedule(
        at,
        system.PHASE_EFFECT,
        lambda: [system.set_theta(c, MSI_THETA) for c in range(num_cores)],
    )
    stats = system.run()
    for i in range(num_cores):
        assert stats.core(i).accesses == len(traces[i])


@given(case=switching_case())
@settings(max_examples=25, deadline=None)
def test_mode_switch_via_luts_matches_set_theta(case):
    """switch_mode through the LUTs equals programming θ directly."""
    seed, num_cores, n, initial, switches = case
    traces = random_traces(seed, num_cores, n, 3, 8, 0.5, 4)
    at, target = switches[0]

    def run_with_lut():
        system = System(cohort_config(initial), traces)
        for core_id, cache in enumerate(system.caches):
            cache.lut.program(1, initial[core_id])
            cache.lut.program(2, target[core_id])
        system.kernel.schedule(
            at, system.PHASE_EFFECT, lambda: system.switch_mode(2)
        )
        return system.run()

    def run_with_set_theta():
        system = System(cohort_config(initial), traces)
        system.kernel.schedule(
            at,
            system.PHASE_EFFECT,
            lambda: [
                system.set_theta(c, target[c]) for c in range(num_cores)
            ],
        )
        return system.run()

    a = run_with_lut()
    b = run_with_set_theta()
    assert a.final_cycle == b.final_cycle
    for x, y in zip(a.cores, b.cores):
        assert (x.hits, x.misses, x.total_memory_latency) == (
            y.hits, y.misses, y.total_memory_latency,
        )
