"""Unit tests for the schedulability analysis (repro.analysis.schedulability)."""

import math

import pytest

from repro.params import MSI_THETA, CacheGeometry, LatencyParams
from repro.analysis import (
    build_profiles,
    cohort_bounds,
    first_feasible_mode,
    schedulability_report,
    tightening_headroom,
)
from repro.mcs import Task, TaskSet
from repro.opt.engine import ModeTable

from conftest import t


@pytest.fixture
def setup():
    traces = [
        t([(0, "R", 1), (1, "R", 1), (2, "W", 2), (1, "W", 2)]),
        t([(0, "W", 3), (1, "W", 3)]),
        t([(0, "R", 4), (1, "R", 4)]),
    ]
    profiles = build_profiles(traces, CacheGeometry())
    tasks = TaskSet(
        (
            Task("hi", 3, traces[0]),
            Task("mid", 2, traces[1]),
            Task("lo", 1, traces[2]),
        )
    )
    table = ModeTable(
        thetas={
            1: [60, 40, 20],
            2: [80, 40, MSI_THETA],
            3: [200, MSI_THETA, MSI_THETA],
        }
    )
    return tasks, table, profiles, LatencyParams()


class TestSchedulabilityReport:
    def test_loose_requirement_feasible_at_mode_1(self, setup):
        tasks, table, profiles, lat = setup
        bound1 = cohort_bounds(table.thetas[1], profiles, lat)[0].wcml
        report = schedulability_report(
            tasks, table, profiles, lat, [bound1 * 2, None, None]
        )
        assert report.schedulable
        assert report.first_feasible == 1
        assert report.modes[0].min_slack > 0

    def test_tight_requirement_needs_escalation(self, setup):
        tasks, table, profiles, lat = setup
        bound1 = cohort_bounds(table.thetas[1], profiles, lat)[0].wcml
        bound3 = cohort_bounds(table.thetas[3], profiles, lat)[0].wcml
        gamma = (bound1 + bound3) / 2
        report = schedulability_report(
            tasks, table, profiles, lat, [gamma, None, None]
        )
        assert report.schedulable
        assert report.first_feasible > 1
        assert not report.modes[0].feasible

    def test_impossible_requirement_unschedulable(self, setup):
        tasks, table, profiles, lat = setup
        report = schedulability_report(
            tasks, table, profiles, lat, [1.0, None, None]
        )
        assert not report.schedulable
        assert report.first_feasible is None

    def test_degraded_cores_exempt(self, setup):
        tasks, table, profiles, lat = setup
        # An impossible requirement on the *low*-criticality core: modes
        # that degrade it must still be feasible.
        report = schedulability_report(
            tasks, table, profiles, lat, [None, None, 1.0]
        )
        assert 2 in report.feasible_modes
        assert 3 in report.feasible_modes
        assert not report.modes[0].feasible

    def test_slack_sign_matches_feasibility(self, setup):
        tasks, table, profiles, lat = setup
        bound1 = cohort_bounds(table.thetas[1], profiles, lat)[0].wcml
        report = schedulability_report(
            tasks, table, profiles, lat, [bound1, None, None]
        )
        assert report.modes[0].slack[0] == pytest.approx(0.0)
        assert report.modes[0].feasible

    def test_requirement_length_validated(self, setup):
        tasks, table, profiles, lat = setup
        with pytest.raises(ValueError):
            schedulability_report(tasks, table, profiles, lat, [None])


class TestFirstFeasibleMode:
    def test_matches_report(self, setup):
        tasks, table, profiles, lat = setup
        bound1 = cohort_bounds(table.thetas[1], profiles, lat)[0].wcml
        assert first_feasible_mode(
            tasks, table, profiles, lat, [bound1 * 1.5, None, None]
        ) == 1


class TestTighteningHeadroom:
    def test_lowest_mode_is_unity(self, setup):
        tasks, table, profiles, lat = setup
        headroom = tightening_headroom(tasks, table, profiles, lat, core_id=0)
        assert headroom[1] == pytest.approx(1.0)

    def test_headroom_grows_with_mode(self, setup):
        tasks, table, profiles, lat = setup
        headroom = tightening_headroom(tasks, table, profiles, lat, core_id=0)
        assert headroom[3] > headroom[1]

    def test_degraded_modes_excluded(self, setup):
        tasks, table, profiles, lat = setup
        headroom = tightening_headroom(tasks, table, profiles, lat, core_id=2)
        assert set(headroom) == {1}  # the level-1 core degrades at mode 2+

    def test_explicit_base(self, setup):
        tasks, table, profiles, lat = setup
        headroom = tightening_headroom(
            tasks, table, profiles, lat, core_id=0, base_requirement=1e9
        )
        assert all(math.isfinite(v) and v > 1 for v in headroom.values())

    def test_invalid_base_rejected(self, setup):
        tasks, table, profiles, lat = setup
        with pytest.raises(ValueError):
            tightening_headroom(
                tasks, table, profiles, lat, core_id=0, base_requirement=0
            )
