"""Run-time mode switching (Section VI).

The controller is the hardware/software co-design piece of the paper:
when a high-criticality core's WCML bound no longer fits its (tightened)
requirement, the system escalates to a higher mode — degrading
lower-criticality cores to MSI by reprogramming their timer registers
from the Mode-Switch LUT — *without suspending them*.

:class:`ModeSwitchController` owns the per-mode analytical bounds and
implements the escalation policy of the Figure 7 experiment: pick the
lowest mode at which every still-guaranteed core meets its requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.params import LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcml import CoreBound, cohort_bounds
from repro.mcs.task import TaskSet
from repro.opt.engine import ModeTable
from repro.sim.system import System


class UnschedulableError(RuntimeError):
    """No mode satisfies the current requirement vector."""


@dataclass(frozen=True)
class ModeDecision:
    """Outcome of one controller evaluation."""

    mode: int
    bounds: List[CoreBound]
    #: Cores degraded to MSI at this mode.
    degraded: List[int]


class ModeSwitchController:
    """Chooses operating modes and programs the timer LUTs."""

    def __init__(
        self,
        tasks: TaskSet,
        mode_table: ModeTable,
        profiles: Sequence[IsolationProfile],
        latencies: LatencyParams,
    ) -> None:
        if len(profiles) != len(tasks):
            raise ValueError("one isolation profile per task/core required")
        self.tasks = tasks
        self.mode_table = mode_table
        self.profiles = list(profiles)
        self.latencies = latencies
        self._bounds_cache: Dict[int, List[CoreBound]] = {}
        self.current_mode = min(mode_table.modes) if mode_table.modes else 1

    # -- analysis --------------------------------------------------------------

    def bounds_at(self, mode: int) -> List[CoreBound]:
        """Per-core analytical WCML bounds under the mode's timer vector."""
        if mode not in self.mode_table.thetas:
            raise KeyError(f"mode {mode} is not in the mode table")
        if mode not in self._bounds_cache:
            self._bounds_cache[mode] = cohort_bounds(
                self.mode_table.thetas[mode], self.profiles, self.latencies
            )
        return self._bounds_cache[mode]

    def satisfied_at(
        self, mode: int, requirements: Sequence[Optional[float]]
    ) -> bool:
        """Do all still-guaranteed cores meet ``requirements`` at ``mode``?

        Degraded cores (criticality < mode) lose their hit guarantees and
        are not held to a requirement — the whole point of the scheme is
        that they keep running rather than being suspended.
        """
        bounds = self.bounds_at(mode)
        for core_id, gamma in enumerate(requirements):
            if gamma is None:
                continue
            if not self.tasks[core_id].guaranteed_at(mode):
                continue
            if bounds[core_id].wcml > gamma:
                return False
        return True

    def required_mode(
        self, requirements: Sequence[Optional[float]]
    ) -> ModeDecision:
        """The lowest mode satisfying the requirement vector.

        Raises :class:`UnschedulableError` when even the highest mode
        (every lower-criticality core degraded) does not fit.
        """
        if len(requirements) != len(self.tasks):
            raise ValueError("one requirement slot per core required")
        for mode in self.mode_table.modes:
            if self.satisfied_at(mode, requirements):
                degraded = [
                    i
                    for i, task in enumerate(self.tasks)
                    if not task.guaranteed_at(mode)
                ]
                return ModeDecision(
                    mode=mode, bounds=self.bounds_at(mode), degraded=degraded
                )
        raise UnschedulableError(
            f"no mode in {self.mode_table.modes} satisfies {requirements}"
        )

    # -- actuation ----------------------------------------------------------------

    def program_luts(self, system: System) -> None:
        """Write every mode's timer into the per-core Mode-Switch LUTs."""
        for core_id, cache in enumerate(system.caches):
            for mode, theta in self.mode_table.lut_entries(core_id).items():
                cache.lut.program(mode, theta)

    def apply(self, system: System, mode: int) -> None:
        """Switch the running system to ``mode`` (reprograms θ registers)."""
        if mode not in self.mode_table.thetas:
            raise KeyError(f"mode {mode} is not in the mode table")
        system.switch_mode(mode)
        self.current_mode = mode

    def react(
        self,
        system: System,
        requirements: Sequence[Optional[float]],
    ) -> ModeDecision:
        """Controller main loop step: evaluate, escalate/relax, actuate."""
        decision = self.required_mode(requirements)
        if decision.mode != self.current_mode:
            self.apply(system, decision.mode)
        return decision
