"""The mixed-criticality task model of Section II.

A task τ_j is the tuple ⟨l_j, Λ_j, Γ_j^m⟩: its criticality level, its
total number of memory accesses, and its WCML requirement at each
operating mode.  A core inherits the criticality of the task it runs;
in the evaluation (and here) tasks are pinned one-per-core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import Trace


@dataclass(frozen=True)
class Task:
    """One mixed-criticality task."""

    name: str
    criticality: int
    trace: Trace
    #: Γ_j^m: WCML requirement per mode (cycles); missing modes = no
    #: requirement at that mode.
    requirements: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.criticality < 1:
            raise ValueError("criticality levels start at 1")
        for mode, gamma in self.requirements.items():
            if mode < 1:
                raise ValueError("modes are numbered from 1")
            if gamma <= 0:
                raise ValueError("WCML requirements must be positive")

    @property
    def num_accesses(self) -> int:
        """Λ_j: the task's total number of memory accesses."""
        return len(self.trace)

    def requirement(self, mode: int) -> Optional[float]:
        """Γ_j^m, or None if the task has no requirement at this mode."""
        return self.requirements.get(mode)

    def guaranteed_at(self, mode: int) -> bool:
        """Whether the task still runs time-based coherence at ``mode``.

        At mode *m*, cores with criticality below *m* degrade to MSI
        (Section II's mode-switching model).
        """
        return self.criticality >= mode


@dataclass(frozen=True)
class TaskSet:
    """Tasks pinned one-per-core (index = core id)."""

    tasks: Sequence[Task]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a task set needs at least one task")

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, core_id: int) -> Task:
        return self.tasks[core_id]

    def __iter__(self):
        return iter(self.tasks)

    @property
    def criticalities(self) -> List[int]:
        return [t.criticality for t in self.tasks]

    @property
    def traces(self) -> List[Trace]:
        return [t.trace for t in self.tasks]

    @property
    def num_levels(self) -> int:
        """L: the highest criticality level in the set."""
        return max(t.criticality for t in self.tasks)

    def requirements_at(self, mode: int) -> List[Optional[float]]:
        """Per-core Γ^m vector at ``mode`` (None where degraded/absent)."""
        return [
            t.requirement(mode) if t.guaranteed_at(mode) else None
            for t in self.tasks
        ]

    def timed_at(self, mode: int) -> List[bool]:
        """Which cores run time-based coherence at ``mode``."""
        return [t.guaranteed_at(mode) for t in self.tasks]
