"""Task-to-core schedules: cores inherit the running task's criticality.

Section II: "At any time instance, the core inherits the criticality of
the task running on the core in this instance" — tasks of different
criticality may time-share a core.  This module models per-core task
*sequences* and provides per-task WCML bounds, so requirements can be
checked for each task individually rather than per core.

Per-task analysis is conservative: each task's trace is analysed from a
cold cache (warm-up state left by the previous task is ignored), so the
guaranteed-hit count can only under-approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.params import MSI_THETA, CacheGeometry, LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcl import wcl_miss
from repro.analysis.wcml import CoreBound, wcml_snoop, wcml_timed
from repro.mcs.task import Task
from repro.sim.trace import Trace


@dataclass(frozen=True)
class CoreSchedule:
    """An ordered sequence of tasks executed back-to-back on one core."""

    tasks: Sequence[Task]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a core schedule needs at least one task")

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def trace(self) -> Trace:
        """The concatenated trace the core replays."""
        trace = self.tasks[0].trace
        for task in self.tasks[1:]:
            trace = trace.concat(task.trace)
        return trace

    @property
    def boundaries(self) -> List[int]:
        """Access-index start of each task within the concatenated trace."""
        starts, pos = [], 0
        for task in self.tasks:
            starts.append(pos)
            pos += task.num_accesses
        return starts

    def active_task(self, access_index: int) -> Task:
        """The task executing the given access index."""
        if access_index < 0:
            raise IndexError("access index must be non-negative")
        pos = 0
        for task in self.tasks:
            if access_index < pos + task.num_accesses:
                return task
            pos += task.num_accesses
        raise IndexError(
            f"access index {access_index} beyond the schedule "
            f"({pos} accesses)"
        )

    def criticality_at(self, access_index: int) -> int:
        """The criticality the core inherits at this point of execution."""
        return self.active_task(access_index).criticality

    @property
    def max_criticality(self) -> int:
        return max(task.criticality for task in self.tasks)


@dataclass(frozen=True)
class TaskBound:
    """Analytical WCML bound of one scheduled task."""

    core_id: int
    task: Task
    bound: CoreBound

    def meets(self, mode: int) -> Optional[bool]:
        """Whether the task's Γ at ``mode`` is met (None = no requirement)."""
        gamma = self.task.requirement(mode)
        if gamma is None:
            return None
        return self.bound.wcml <= gamma


def per_task_bounds(
    schedules: Sequence[CoreSchedule],
    thetas: Sequence[int],
    geometry: CacheGeometry,
    latencies: LatencyParams,
) -> List[TaskBound]:
    """WCML bounds for every task of every core schedule.

    Each task is analysed on its own trace (cold start — conservative);
    the per-request WCL comes from Equation 1 with the given co-runner
    timer vector, which is assumed constant across the hyper-period.
    """
    if len(schedules) != len(thetas):
        raise ValueError("one schedule and one theta per core required")
    sw = latencies.slot_width
    bounds: List[TaskBound] = []
    for core_id, (schedule, theta) in enumerate(zip(schedules, thetas)):
        wcl = wcl_miss(list(thetas), core_id, sw)
        for task in schedule:
            lam = task.num_accesses
            if theta == MSI_THETA:
                core_bound = CoreBound(
                    core_id, wcml_snoop(lam, wcl), wcl, 0, lam
                )
            else:
                profile = IsolationProfile(task.trace, geometry, latencies.hit)
                counts = profile.analyze(theta, wcl)
                core_bound = CoreBound(
                    core_id,
                    wcml_timed(counts.m_hit, counts.m_miss, wcl, latencies.hit),
                    wcl,
                    counts.m_hit,
                    counts.m_miss,
                )
            bounds.append(TaskBound(core_id=core_id, task=task,
                                    bound=core_bound))
    return bounds


def schedule_traces(schedules: Sequence[CoreSchedule]) -> List[Trace]:
    """The concatenated per-core traces ready for the simulator."""
    return [s.trace for s in schedules]
