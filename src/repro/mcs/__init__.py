"""Mixed-criticality system model: tasks, modes and the switch controller."""

from repro.mcs.controller import (
    ModeDecision,
    ModeSwitchController,
    UnschedulableError,
)
from repro.mcs.schedule import (
    CoreSchedule,
    TaskBound,
    per_task_bounds,
    schedule_traces,
)
from repro.mcs.task import Task, TaskSet

__all__ = [
    "Task",
    "TaskSet",
    "ModeDecision",
    "ModeSwitchController",
    "UnschedulableError",
    "CoreSchedule",
    "TaskBound",
    "per_task_bounds",
    "schedule_traces",
]
