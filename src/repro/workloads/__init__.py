"""Workload generators: SPLASH-2-like benchmarks and synthetic mixes."""

from repro.workloads.characterize import (
    WorkloadProfile,
    characterize,
    characterize_suite,
    suite_table,
)
from repro.workloads.splash import (
    SPLASH_BENCHMARKS,
    benchmark_names,
    splash_traces,
)
from repro.workloads.synthetic import (
    LINE,
    PRIVATE_BASE,
    SHARED_BASE,
    TraceBuilder,
    private_base,
    timer_sweep,
    uniform_shared_mix,
)

__all__ = [
    "WorkloadProfile",
    "characterize",
    "characterize_suite",
    "suite_table",
    "SPLASH_BENCHMARKS",
    "benchmark_names",
    "splash_traces",
    "LINE",
    "PRIVATE_BASE",
    "SHARED_BASE",
    "TraceBuilder",
    "private_base",
    "timer_sweep",
    "uniform_shared_mix",
]
