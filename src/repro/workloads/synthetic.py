"""Synthetic trace building blocks.

The paper evaluates on SPLASH-2 binaries; this reproduction substitutes
deterministic synthetic traces with the same *coherence-visible*
structure (see DESIGN.md).  This module provides the reusable pattern
primitives; :mod:`repro.workloads.splash` composes them into the named
benchmarks.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.params import MemOp
from repro.sim.trace import Trace

#: Default cache-line size used for address arithmetic.
LINE = 64
#: Word size: accesses are word-granular, so sequential sweeps touch each
#: 64-byte line eight times — the spatial locality the timers protect.
WORD = 8

#: Base byte address of the per-thread private regions.
PRIVATE_BASE = 1 << 24
#: Byte stride between consecutive threads' private regions.
PRIVATE_STRIDE = 1 << 22
#: Base byte address of the shared regions.
SHARED_BASE = 1 << 30


def private_base(thread: int) -> int:
    """Base address of a thread's private region."""
    return PRIVATE_BASE + thread * PRIVATE_STRIDE


class TraceBuilder:
    """Incrementally composes a :class:`Trace` from access patterns."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self._gaps: List[int] = []
        self._ops: List[int] = []
        self._addrs: List[int] = []
        self._pending_gap = 0

    def __len__(self) -> int:
        return len(self._gaps)

    # -- primitive -----------------------------------------------------------

    def access(self, addr: int, store: bool = False, gap: int = 0) -> "TraceBuilder":
        """Append one access after ``gap`` compute cycles."""
        self._gaps.append(int(gap) + self._pending_gap)
        self._pending_gap = 0
        self._ops.append(int(MemOp.STORE) if store else int(MemOp.LOAD))
        self._addrs.append(int(addr))
        return self

    # -- patterns -------------------------------------------------------------

    def sequential(
        self,
        base: int,
        count: int,
        stride: int = WORD,
        store: bool = False,
        gap: int = 2,
    ) -> "TraceBuilder":
        """A streaming sweep of ``count`` words: ``base, base+stride, ...``.

        With the default word stride, every 64-byte line is touched eight
        consecutive times — the spatial reuse a timer window protects.
        """
        for i in range(count):
            self.access(base + i * stride, store=store, gap=gap)
        return self

    def stencil_sweep(
        self,
        base: int,
        cells: int,
        row_bytes: int,
        gap: int = 2,
    ) -> "TraceBuilder":
        """Per cell: read centre/east/north/south words, write the centre."""
        for i in range(cells):
            cell = base + i * WORD
            self.access(cell, gap=gap)
            self.access(cell - row_bytes if cell >= row_bytes else cell, gap=0)
            self.access(cell + row_bytes, gap=0)
            self.access(cell, store=True, gap=1)
        return self

    def random_region(
        self,
        base: int,
        region_bytes: int,
        count: int,
        write_ratio: float = 0.0,
        gap_max: int = 4,
    ) -> "TraceBuilder":
        """Uniform random word accesses within a region."""
        words = max(1, region_bytes // WORD)
        offsets = self.rng.integers(0, words, size=count)
        writes = self.rng.random(count) < write_ratio
        gaps = self.rng.integers(0, gap_max + 1, size=count)
        for off, wr, g in zip(offsets, writes, gaps):
            self.access(base + int(off) * WORD, store=bool(wr), gap=int(g))
        return self

    def zipf_region(
        self,
        base: int,
        region_bytes: int,
        count: int,
        a: float = 1.3,
        write_ratio: float = 0.0,
        gap_max: int = 4,
    ) -> "TraceBuilder":
        """Zipf-distributed word accesses: a hot head with a long tail.

        Models pointer-chasing over shared data structures (tree roots and
        upper levels are re-read constantly — Barnes/raytrace style).
        """
        words = max(1, region_bytes // WORD)
        ranks = self.rng.zipf(a, size=count)
        offsets = np.minimum(ranks - 1, words - 1)
        writes = self.rng.random(count) < write_ratio
        gaps = self.rng.integers(0, gap_max + 1, size=count)
        for off, wr, g in zip(offsets, writes, gaps):
            self.access(base + int(off) * WORD, store=bool(wr), gap=int(g))
        return self

    def blocked_reuse(
        self,
        base: int,
        block_words: int,
        repeats: int,
        write_ratio: float = 0.3,
        gap: int = 1,
    ) -> "TraceBuilder":
        """Repeated word sweeps over one block (dense-kernel inner loops)."""
        for _r in range(repeats):
            for i in range(block_words):
                store = self.rng.random() < write_ratio
                self.access(base + i * WORD, store=store, gap=gap)
        return self

    def scatter(
        self,
        base: int,
        region_bytes: int,
        indices: Sequence[int],
        gap: int = 2,
    ) -> "TraceBuilder":
        """Read-modify-write scatter into a region (radix histogram style)."""
        words = max(1, region_bytes // WORD)
        for idx in indices:
            addr = base + (int(idx) % words) * WORD
            self.access(addr, gap=gap)
            self.access(addr, store=True, gap=0)
        return self

    def compute(self, cycles: int) -> "TraceBuilder":
        """Pure computation: adds the given cycles to the next access's gap."""
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        self._pending_gap += int(cycles)
        return self

    # -- finalisation ------------------------------------------------------------

    def build(self) -> Trace:
        """Finalise into an immutable :class:`Trace`."""
        return Trace.from_arrays(self._gaps, self._ops, self._addrs)


def interleave(builders_parts: Sequence[Sequence[Trace]]) -> List[Trace]:
    """Concatenate per-thread phase traces into one trace per thread."""
    result = []
    for parts in builders_parts:
        trace = parts[0]
        for part in parts[1:]:
            trace = trace.concat(part)
        result.append(trace)
    return result


def timer_sweep(
    num_cores: int = 4,
    accesses_per_core: int = 40_000,
    hot_lines: int = 48,
    touches_per_line: int = 8,
    shared_read_fraction: float = 0.002,
    shared_store_fraction: float = 0.0002,
    seed: int = 0,
) -> List[Trace]:
    """The timer-protected, hit-dominated regime of a θ sweep.

    Each core streams over a private ``hot_lines``-line working set
    (``touches_per_line`` word touches per line, one store per line —
    exactly the spatial reuse a timer window protects), with a light
    sprinkle of shared reads and rarer shared exchanges.  Miss rates
    land around 0.3%, where lock-step batching pays off most; this is
    the workload of the ``lockstep`` throughput benchmark.

    Address-map care: with the reference 16 KiB direct-mapped L1
    (256 sets), the private hot sets occupy set indices
    ``0..hot_lines-1``, so the shared lines are pinned to high set
    indices (200+) — placing them low would alias with every core's
    hot set and turn the workload conflict-miss-bound.
    """
    if hot_lines < 1 or hot_lines > 200:
        raise ValueError("hot_lines must be in 1..200 (shared lines sit at 200+)")
    rng = np.random.default_rng(seed)
    shared_read_base = (1 << 20) + 200  # line index → set indices 200..207
    shared_exch_base = (1 << 20) + 240  # set indices 240..243
    traces = []
    for core in range(num_cores):
        n = accesses_per_core
        hot = (1 << 18) + core * 4096 + np.arange(hot_lines)
        idx = (np.arange(n) // touches_per_line) % hot_lines
        lines = hot[idx]
        ops = np.where(
            np.arange(n) % touches_per_line == touches_per_line - 3,
            int(MemOp.STORE),
            int(MemOp.LOAD),
        )
        r = rng.random(n)
        sh_read = r < shared_read_fraction
        sh_store = (r >= shared_read_fraction) & (
            r < shared_read_fraction + shared_store_fraction
        )
        lines = np.where(sh_read, shared_read_base + rng.integers(0, 8, n), lines)
        lines = np.where(sh_store, shared_exch_base + rng.integers(0, 4, n), lines)
        ops = np.where(
            sh_store,
            int(MemOp.STORE),
            np.where(sh_read, int(MemOp.LOAD), ops),
        )
        gaps = rng.integers(1, 4, n)
        traces.append(Trace.from_arrays(gaps, ops, lines * LINE))
    return traces


def uniform_shared_mix(
    num_cores: int,
    accesses_per_core: int,
    shared_lines: int = 16,
    private_lines: int = 64,
    shared_fraction: float = 0.25,
    write_ratio: float = 0.35,
    seed: int = 0,
    gap_max: int = 4,
) -> List[Trace]:
    """A fully parameterised mixed private/shared workload.

    The workhorse of the unit and property tests: every knob the
    paper's effects depend on (sharing degree, write intensity, reuse)
    is directly controllable.
    """
    traces = []
    for core in range(num_cores):
        rng = np.random.default_rng(seed * 1000 + core)
        gaps = rng.integers(0, gap_max + 1, size=accesses_per_core)
        shared = rng.random(accesses_per_core) < shared_fraction
        writes = rng.random(accesses_per_core) < write_ratio
        shared_idx = rng.integers(0, max(1, shared_lines), size=accesses_per_core)
        private_idx = rng.integers(0, max(1, private_lines), size=accesses_per_core)
        addrs = np.where(
            shared,
            SHARED_BASE + shared_idx * LINE,
            private_base(core) + private_idx * LINE,
        )
        ops = np.where(writes, int(MemOp.STORE), int(MemOp.LOAD))
        traces.append(Trace.from_arrays(gaps, ops, addrs))
    return traces
