"""Workload characterisation: the sharing/locality numbers behind the
synthetic SPLASH-2 substitution.

DESIGN.md argues the synthetic generators preserve what the coherence
layer observes; this module makes that argument quantitative — per
benchmark: request counts, read/write mix, footprint, sharing degree
(lines touched by 2+ threads), write-shared lines (the coherence
traffic drivers), and spatial locality (accesses per distinct line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.params import MemOp
from repro.sim.trace import Trace
from repro.workloads.splash import benchmark_names, splash_traces
from repro.workloads.synthetic import LINE


@dataclass(frozen=True)
class WorkloadProfile:
    """Coherence-visible characteristics of one multi-threaded workload."""

    name: str
    total_accesses: int
    write_ratio: float
    distinct_lines: int
    shared_lines: int
    write_shared_lines: int
    accesses_per_line: float
    shared_access_fraction: float

    @property
    def sharing_fraction(self) -> float:
        if self.distinct_lines == 0:
            return 0.0
        return self.shared_lines / self.distinct_lines


def characterize(
    traces: Sequence[Trace], name: str = "", line_bytes: int = LINE
) -> WorkloadProfile:
    """Compute the coherence-visible profile of a set of per-core traces."""
    total = sum(len(t) for t in traces)
    stores = sum(t.num_stores for t in traces)

    readers: Dict[int, set] = {}
    writers: Dict[int, set] = {}
    per_line_accesses: Dict[int, int] = {}
    for tid, trace in enumerate(traces):
        lines = trace.line_addrs(line_bytes)
        is_store = trace.ops == int(MemOp.STORE)
        for line, st in zip(lines, is_store):
            line = int(line)
            per_line_accesses[line] = per_line_accesses.get(line, 0) + 1
            readers.setdefault(line, set()).add(tid)
            if st:
                writers.setdefault(line, set()).add(tid)

    shared = {
        line for line, tids in readers.items() if len(tids) >= 2
    }
    write_shared = {
        line
        for line in shared
        if line in writers
        and (len(writers[line]) >= 2 or readers[line] - writers[line])
    }
    shared_accesses = sum(per_line_accesses[line] for line in shared)
    distinct = len(per_line_accesses)
    return WorkloadProfile(
        name=name,
        total_accesses=total,
        write_ratio=stores / total if total else 0.0,
        distinct_lines=distinct,
        shared_lines=len(shared),
        write_shared_lines=len(write_shared),
        accesses_per_line=total / distinct if distinct else 0.0,
        shared_access_fraction=shared_accesses / total if total else 0.0,
    )


def characterize_suite(
    num_cores: int = 4, scale: float = 1.0, seed: int = 0
) -> List[WorkloadProfile]:
    """Profiles for every benchmark in the registry."""
    return [
        characterize(
            splash_traces(name, num_cores, scale=scale, seed=seed), name
        )
        for name in benchmark_names()
    ]


def suite_table(profiles: Sequence[WorkloadProfile]) -> str:
    """Render the suite characterisation as an aligned table."""
    from repro.experiments.report import format_table

    rows = [
        [
            p.name,
            p.total_accesses,
            f"{p.write_ratio:.2f}",
            p.distinct_lines,
            p.shared_lines,
            p.write_shared_lines,
            f"{p.accesses_per_line:.1f}",
            f"{p.shared_access_fraction:.0%}",
        ]
        for p in profiles
    ]
    return format_table(
        [
            "benchmark",
            "accesses",
            "write ratio",
            "lines",
            "shared",
            "write-shared",
            "acc/line",
            "shared acc",
        ],
        rows,
        title="Workload characterisation (coherence-visible structure)",
    )
