"""SPLASH-2-like multi-threaded workload generators.

The paper evaluates CoHoRT on SPLASH-2 [26] with one thread per core.
Real SPLASH-2 traces are not redistributable, so each benchmark here is
a deterministic synthetic generator reproducing the *sharing and
locality structure* the coherence layer observes (the substitution is
recorded in DESIGN.md):

=========  =====================================================
fft        private butterfly stages + all-to-all transpose phases
lu         blocked factorisation: shared read-mostly pivot blocks,
           private block updates
radix      private key scans + heavily write-shared histogram,
           then scattered permutation writes
ocean      2-D stencil bands with halo-row sharing at thread
           boundaries
barnes     read-mostly octree walks (Zipf reuse) + private particle
           updates
fmm        fast-multipole tree walks + private expansions + multipole
           publications to neighbour sections
volrend    shared work-queue ticket + read-only volume marches +
           private image tiles
cholesky   sparse blocked factorisation (randomised block schedule)
water      private molecule updates + neighbour-section force reads
raytrace   read-only BVH walks + private framebuffer writes
=========  =====================================================

Accesses are word-granular (8 bytes), so sequential sweeps exhibit the
spatial locality — eight touches per 64-byte line — that CoHoRT's timer
windows protect.  Every generator returns one
:class:`~repro.sim.trace.Trace` per core and is deterministic in
``(num_cores, scale, seed)``.  ``scale`` grows the request count roughly
linearly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.trace import Trace
from repro.workloads.synthetic import (
    LINE,
    SHARED_BASE,
    WORD,
    TraceBuilder,
    private_base,
)

GeneratorFn = Callable[[int, float, int], List[Trace]]


def _scaled(n: int, scale: float) -> int:
    return max(1, int(round(n * scale)))


# --------------------------------------------------------------------- fft


def fft(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Butterfly stages on private data, then all-to-all transposes."""
    stages = 3
    points = _scaled(96, scale)  # words per thread
    traces = []
    matrix = SHARED_BASE  # the shared matrix, written in thread stripes
    for tid in range(num_cores):
        b = TraceBuilder(seed * 7919 + tid)
        mine = private_base(tid)
        stripe = matrix + tid * points * WORD
        for stage in range(stages):
            # Butterfly: paired strided reads + writes within the stripe.
            half = max(1, points >> 1)
            for i in range(half):
                twiddle = int(b.rng.integers(1, 4))  # per-pair compute time
                b.access(mine + i * WORD, gap=twiddle)
                b.access(mine + (i + half) * WORD, gap=1)
                b.access(mine + i * WORD, store=True, gap=2)
                b.access(mine + (i + half) * WORD, store=True, gap=1)
            # Transpose: write own stripe, read the other threads' stripes.
            b.sequential(stripe, points, store=True, gap=1)
            for other in range(num_cores):
                if other == tid:
                    continue
                other_stripe = matrix + other * points * WORD
                chunk = max(1, points // num_cores)
                b.sequential(
                    other_stripe + ((stage + tid) % num_cores) * chunk * WORD,
                    chunk,
                    gap=2,
                )
        traces.append(b.build())
    return traces


# ---------------------------------------------------------------------- lu


def lu(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Blocked LU: shared pivot block read by all, private block updates."""
    block_words = _scaled(48, min(scale, 4.0))
    steps = _scaled(6, scale)
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 104729 + tid)
        mine = private_base(tid)
        for step in range(steps):
            pivot = SHARED_BASE + step * block_words * WORD
            owner = step % num_cores
            if tid == owner:
                # Factorise the pivot block in place.
                b.blocked_reuse(pivot, block_words, repeats=2, write_ratio=0.5)
            # Everyone reads the pivot block...
            b.sequential(pivot, block_words, gap=2)
            # ...and updates their own trailing blocks with reuse.
            b.blocked_reuse(
                mine + step * block_words * WORD,
                block_words,
                repeats=2,
                write_ratio=0.4,
            )
        traces.append(b.build())
    return traces


# -------------------------------------------------------------------- radix


def radix(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Histogram build (write-shared bins) + scattered permutation."""
    keys = _scaled(160, scale)
    bins_bytes = 8 * LINE
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 15485863 + tid)
        mine = private_base(tid)
        # Scan private keys sequentially (word-granular: strong locality).
        b.sequential(mine, _scaled(256, scale), gap=1)
        # Scatter increments into the shared histogram (heavy write sharing).
        idx = b.rng.integers(0, bins_bytes // WORD, size=keys // 4)
        b.scatter(SHARED_BASE, bins_bytes, idx, gap=3)
        # Permutation: scattered writes into the shared output array.
        out = SHARED_BASE + (1 << 20)
        b.random_region(out, 64 * LINE, keys // 4, write_ratio=0.9, gap_max=3)
        traces.append(b.build())
    return traces


# -------------------------------------------------------------------- ocean


def ocean(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Stencil over row bands; halo rows shared with neighbour threads."""
    rows_per_thread = _scaled(4, scale)
    cols = 32  # words per row: four lines
    iters = _scaled(3, scale)
    row_bytes = cols * WORD
    grid = SHARED_BASE
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 6700417 + tid)
        band = grid + tid * rows_per_thread * row_bytes
        for _ in range(iters):
            for r in range(rows_per_thread):
                row = band + r * row_bytes
                b.stencil_sweep(row, cols, row_bytes,
                                gap=int(b.rng.integers(1, 4)))
        traces.append(b.build())
    return traces


# ------------------------------------------------------------------- barnes


def barnes(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Octree force walks: Zipf-reused shared tree + private bodies."""
    walks = _scaled(60, scale)
    tree_bytes = 256 * LINE
    body_words = 8
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 32452843 + tid)
        mine = private_base(tid)
        for w in range(walks):
            # Walk the shared tree: upper levels are re-read constantly.
            b.zipf_region(SHARED_BASE, tree_bytes, 6, a=1.4, write_ratio=0.02)
            # Update own body: read-modify-write its fields.
            body = mine + (w % 32) * body_words * WORD
            for f in range(body_words // 2):
                b.access(body + f * WORD, gap=1)
            for f in range(body_words // 2):
                b.access(body + f * WORD, store=True, gap=1)
        traces.append(b.build())
    return traces


# ---------------------------------------------------------------------- fmm


def fmm(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Fast multipole: local expansions private, tree + interaction lists
    shared read-mostly, with periodic multipole publications."""
    cells = _scaled(40, scale)
    tree_bytes = 128 * LINE
    expansion_words = 8
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 179424673 + tid)
        mine = private_base(tid)
        publish = SHARED_BASE + (1 << 21) + tid * 32 * LINE
        for c in range(cells):
            # Walk the shared interaction tree (hot upper levels).
            b.zipf_region(SHARED_BASE, tree_bytes, 4, a=1.3, write_ratio=0.0)
            # Accumulate into the private local expansion.
            exp = mine + (c % 16) * expansion_words * WORD
            for f in range(expansion_words // 2):
                b.access(exp + f * WORD, gap=1)
                b.access(exp + f * WORD, store=True, gap=1)
            # Publish the cell's multipole every few cells.
            if c % 4 == 0:
                b.sequential(publish + (c % 32) * WORD, 4, store=True, gap=1)
                # And read a neighbour's published multipoles.
                other = SHARED_BASE + (1 << 21) + \
                    ((tid + 1) % num_cores) * 32 * LINE
                b.sequential(other + (c % 32) * WORD, 4, gap=2)
        traces.append(b.build())
    return traces


# ------------------------------------------------------------------- volrend


def volrend(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Volume rendering: read-only shared volume rays + private image tiles,
    with a shared work-queue counter (contended read-modify-write)."""
    rays = _scaled(56, scale)
    volume_bytes = 512 * LINE
    queue = SHARED_BASE + (1 << 22)
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 15487469 + tid)
        tile = private_base(tid)
        for r in range(rays):
            # Grab work from the shared queue (ticket counter).
            b.access(queue, gap=2)
            b.access(queue, store=True, gap=0)
            # March the ray through the shared volume (strided samples).
            start = int(b.rng.integers(0, volume_bytes // LINE)) * LINE
            for step in range(4):
                b.access(SHARED_BASE + (start + step * 4 * LINE) % volume_bytes,
                         gap=2)
            # Composite into the private tile.
            pixel = tile + (r % 64) * 2 * WORD
            b.access(pixel, gap=1)
            b.access(pixel, store=True, gap=1)
        traces.append(b.build())
    return traces


# ----------------------------------------------------------------- cholesky


def cholesky(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Sparse blocked factorisation with a randomised block schedule."""
    block_words = _scaled(40, min(scale, 4.0))
    tasks = _scaled(8, scale)
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 49979687 + tid)
        mine = private_base(tid)
        order = b.rng.permutation(tasks)
        for t in order:
            src = SHARED_BASE + int(t) * block_words * WORD
            b.sequential(src, block_words, gap=2)  # read the source block
            b.blocked_reuse(
                mine + int(t) * block_words * WORD,
                block_words,
                repeats=2,
                write_ratio=0.45,
            )
        traces.append(b.build())
    return traces


# -------------------------------------------------------------------- water


def water(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Molecule updates + pairwise force reads of neighbour sections."""
    molecules = _scaled(48, scale)
    fields = 6  # words per molecule record
    traces = []
    section_bytes = 64 * LINE
    for tid in range(num_cores):
        b = TraceBuilder(seed * 86028121 + tid)
        mine = private_base(tid)
        shared_section = SHARED_BASE + tid * section_bytes
        neigh = SHARED_BASE + ((tid + 1) % num_cores) * section_bytes
        for m in range(molecules):
            own = mine + m * fields * WORD
            b.compute(int(b.rng.integers(0, 5)))  # force-evaluation time
            for f in range(fields):
                b.access(own + f * WORD, gap=1)
            for f in range(fields // 2):
                b.access(own + f * WORD, store=True, gap=1)
            # Publish position to own shared section.
            b.access(shared_section + (m % (section_bytes // WORD)) * WORD,
                     store=True, gap=1)
            # Read a window of the next thread's section (pairwise forces).
            b.sequential(neigh + (m % 32) * WORD, 4, gap=1)
        traces.append(b.build())
    return traces


# ----------------------------------------------------------------- raytrace


def raytrace(num_cores: int = 4, scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Read-only BVH walks + private framebuffer tile writes."""
    rays = _scaled(64, scale)
    bvh_bytes = 256 * LINE
    traces = []
    for tid in range(num_cores):
        b = TraceBuilder(seed * 122949829 + tid)
        tile = private_base(tid)
        for r in range(rays):
            b.zipf_region(SHARED_BASE, bvh_bytes, 5, a=1.5, write_ratio=0.0)
            # Shade and store the pixel: a short word burst in the tile.
            pixel = tile + (r % 64) * 4 * WORD
            b.sequential(pixel, 4, store=True, gap=1)
        traces.append(b.build())
    return traces


#: Name → generator registry (the paper's benchmark suite).
SPLASH_BENCHMARKS: Dict[str, GeneratorFn] = {
    "fft": fft,
    "lu": lu,
    "radix": radix,
    "ocean": ocean,
    "barnes": barnes,
    "fmm": fmm,
    "volrend": volrend,
    "cholesky": cholesky,
    "water": water,
    "raytrace": raytrace,
}


def splash_traces(
    name: str, num_cores: int = 4, scale: float = 1.0, seed: int = 0
) -> List[Trace]:
    """Generate the named benchmark's per-core traces."""
    try:
        generator = SPLASH_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(SPLASH_BENCHMARKS)}"
        ) from None
    return generator(num_cores, scale, seed)


def benchmark_names() -> List[str]:
    """Sorted names of the available benchmarks."""
    return sorted(SPLASH_BENCHMARKS)
