"""Structured JSON run reports and report summarisation.

:func:`build_run_report` assembles one JSON document from an attached
telemetry set — system stats, per-request span attribution, the WCML
blame table, histograms and time-series samples — tagged with
:data:`RUN_REPORT_SCHEMA` so downstream tooling can dispatch on shape.

:func:`summarise` renders any telemetry artefact the CLI can produce
(run report, trace-event document, sweep metrics, GA generation JSONL)
as a short human-readable digest; ``cohort metrics`` is a thin wrapper
around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.spans import PHASES

# Canonical definitions live in the repro.obs.schema registry; they are
# re-exported here (and from repro.obs) for compatibility.
from repro.obs.schema import (  # noqa: F401  (re-exports)
    GATE_REPORT_SCHEMA,
    RUN_MANIFEST_SCHEMA,
    RUN_REPORT_SCHEMA,
    SERVE_METRICS_SCHEMA,
    SWEEP_METRICS_SCHEMA,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsCollector
    from repro.obs.spans import SpanCollector
    from repro.sim.system import System


def build_run_report(
    system: "System",
    spans: "SpanCollector",
    metrics: Optional["MetricsCollector"] = None,
    label: str = "simulate",
) -> Dict[str, Any]:
    """One JSON document describing a finished run."""
    stats = system.stats
    report: Dict[str, Any] = {
        "schema": RUN_REPORT_SCHEMA,
        "label": label,
        "protocol": system.config.protocol,
        "num_cores": system.config.num_cores,
        "final_cycle": stats.final_cycle,
        "bus_utilization": stats.bus_utilization(),
        "timer_expiries": stats.timer_expiries,
        "writebacks": stats.writebacks,
        "mode_switches": stats.mode_switches,
        "cores": [
            {
                "core": core.core_id,
                "hits": core.hits,
                "misses": core.misses,
                "upgrades": core.upgrades,
                "hit_rate": core.hit_rate,
                "max_request_latency": core.max_request_latency,
                "total_memory_latency": core.total_memory_latency,
                "finish_cycle": core.finish_cycle,
            }
            for core in stats.cores
        ],
        "wcml_blame": spans.wcml_blame(),
        "spans_completed": sum(spans.span_count(c) for c in spans.cores()),
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return report


# -- summarisation (the ``cohort metrics`` subcommand) ---------------------


def classify(doc: Any) -> str:
    """Which telemetry artefact a loaded document is.

    One of ``run_report``, ``trace_events``, ``sweep_metrics``,
    ``serve_metrics``, ``run_manifest``, ``gate_report``,
    ``ga_generations`` (list of per-generation records), ``unknown``.
    """
    if isinstance(doc, list):
        if doc and all(
            isinstance(row, dict) and "generation" in row for row in doc
        ):
            return "ga_generations"
        return "unknown"
    if not isinstance(doc, dict):
        return "unknown"
    if doc.get("schema") == RUN_REPORT_SCHEMA:
        return "run_report"
    if doc.get("schema") == SWEEP_METRICS_SCHEMA:
        return "sweep_metrics"
    if doc.get("schema") == SERVE_METRICS_SCHEMA:
        return "serve_metrics"
    if doc.get("schema") == RUN_MANIFEST_SCHEMA:
        return "run_manifest"
    if doc.get("schema") == GATE_REPORT_SCHEMA:
        return "gate_report"
    if "traceEvents" in doc:
        return "trace_events"
    return "unknown"


def _summarise_run_report(doc: Dict[str, Any]) -> str:
    lines = [
        f"run report: {doc['label']} protocol={doc['protocol']} "
        f"cores={doc['num_cores']} final_cycle={doc['final_cycle']} "
        f"bus_util={doc['bus_utilization']:.3f}",
        f"  timer_expiries={doc['timer_expiries']} "
        f"writebacks={doc['writebacks']} "
        f"mode_switches={doc['mode_switches']} "
        f"spans={doc['spans_completed']}",
    ]
    for entry in doc.get("wcml_blame", []):
        phases = entry["worst_span"]["phases"]
        breakdown = " ".join(
            f"{phase}={phases.get(phase, 0)}"
            for phase in PHASES
            if phases.get(phase, 0)
        )
        lines.append(
            f"  core {entry['core']}: WCML={entry['max_request_latency']} "
            f"({breakdown})"
        )
    metrics = doc.get("metrics")
    if metrics:
        lines.append(
            f"  metrics: {len(metrics.get('histograms', []))} histograms, "
            f"{len(metrics.get('samples', []))} samples "
            f"(every {metrics.get('sample_every', 0)} cycles)"
        )
    return "\n".join(lines)


def _summarise_trace_events(doc: Dict[str, Any]) -> str:
    events = doc.get("traceEvents", [])
    by_ph: Dict[str, int] = {}
    tids = set()
    for event in events:
        by_ph[event.get("ph", "?")] = by_ph.get(event.get("ph", "?"), 0) + 1
        if event.get("ph") == "X" and "tid" in event:
            tids.add(event["tid"])
    return (
        f"trace-event document: {len(events)} events "
        f"(spans={by_ph.get('X', 0)} instants={by_ph.get('i', 0)} "
        f"counters={by_ph.get('C', 0)} metadata={by_ph.get('M', 0)}) "
        f"across {len(tids)} core tracks"
    )


def _summarise_sweep_metrics(doc: Dict[str, Any]) -> str:
    runner = doc.get("runner", {})
    lines = [
        f"sweep metrics: {doc.get('label', 'sweep')} "
        f"jobs={runner.get('jobs', 0)} "
        f"cache_hits={runner.get('cache_hits', 0)} "
        f"cache_misses={runner.get('cache_misses', 0)} "
        f"hit_rate={runner.get('cache_hit_rate', 0.0):.3f}",
        f"  executed={runner.get('jobs_executed', 0)} "
        f"in {runner.get('exec_seconds', 0.0):.2f}s "
        f"({runner.get('parallel_batches', 0)} parallel batches)",
    ]
    return "\n".join(lines)


def _summarise_serve_metrics(doc: Dict[str, Any]) -> str:
    service = doc.get("service", {})
    runner = doc.get("runner", {})
    batches = service.get("batches", 0)
    dispatched = service.get("jobs_dispatched", 0)
    avg_batch = dispatched / batches if batches else 0.0
    lines = [
        f"serve metrics: {doc.get('label', 'serve')} "
        f"queue={service.get('queue_depth', 0)}"
        f"/{service.get('queue_limit', 0)} "
        f"submitted={service.get('jobs_submitted', 0)} "
        f"rejected={service.get('jobs_rejected', 0)} "
        f"completed={service.get('jobs_completed', 0)} "
        f"failed={service.get('jobs_failed', 0)}",
        f"  batches={batches} avg_batch={avg_batch:.2f} "
        f"p95_queue_wait_ms<={service.get('queue_wait_ms_p95', 0)} "
        f"draining={service.get('draining', False)}",
        f"  runner: cache_hits={runner.get('cache_hits', 0)} "
        f"cache_misses={runner.get('cache_misses', 0)} "
        f"hit_rate={runner.get('cache_hit_rate', 0.0):.3f} "
        f"worker_failures={runner.get('worker_failures', 0)}",
    ]
    return "\n".join(lines)


def _summarise_ga(rows: List[Dict[str, Any]]) -> str:
    if not rows:
        return "GA generation log: empty"
    last = rows[-1]
    best = [
        row["best_fitness"] for row in rows if row.get("best_fitness") is not None
    ]
    lines = [
        f"GA generation log: {len(rows)} generations, "
        f"final best_fitness={last.get('best_fitness')} "
        f"mean_fitness={last.get('mean_fitness')} "
        f"diversity={last.get('diversity')}",
    ]
    if best:
        first_best = best[0]
        lines.append(
            f"  best fitness {first_best} -> {best[-1]} "
            f"over {len(best)} logged generations"
        )
    evals = sum(row.get("evaluations", 0) for row in rows)
    hits = sum(row.get("cache_hits", 0) for row in rows)
    wall = sum(row.get("wall_seconds", 0.0) for row in rows)
    lines.append(
        f"  evaluations={evals} cache_hits={hits} wall={wall:.2f}s"
    )
    return "\n".join(lines)


def _summarise_run_manifest(doc: Dict[str, Any]) -> str:
    metrics = doc.get("metrics", {})
    artifacts = doc.get("artifacts", [])
    shown = []
    for key in (
        "final_cycle", "execution_time", "hit_rate", "campaigns",
        "silent_corruptions", "objective", "jobs_completed",
        "cohort_cycles", "lockstep_speedup",
    ):
        if key in metrics and metrics[key] is not None:
            value = metrics[key]
            shown.append(
                f"{key}={value:.3f}" if isinstance(value, float)
                else f"{key}={value}"
            )
    lines = [
        f"run manifest: {doc.get('kind', '?')}:{doc.get('label', '?')} "
        f"engine={doc.get('engine')} seed={doc.get('seed')} "
        f"fingerprint={str(doc.get('fingerprint', ''))[:12]}",
        f"  config={str(doc.get('config_fingerprint', ''))[:12]} "
        f"traces={len(doc.get('traces', []))} "
        f"metrics={len(metrics)} artifacts={len(artifacts)}",
    ]
    if shown:
        lines.append("  " + " ".join(shown))
    for art in artifacts:
        lines.append(
            f"  artifact {art.get('path')} "
            f"({art.get('bytes')} bytes, "
            f"sha256 {str(art.get('sha256', ''))[:12]})"
        )
    return "\n".join(lines)


def _summarise_gate_report(doc: Dict[str, Any]) -> str:
    spec = doc.get("spec", {})
    counts = doc.get("counts", {})
    verdict = "PASS" if doc.get("passed") else "FAIL"
    lines = [
        f"gate report: {verdict} spec={spec.get('name', '?')}"
        f"/{spec.get('version', '?')} exit_code={doc.get('exit_code')} "
        f"({counts.get('pass', 0)} pass, {counts.get('fail', 0)} fail, "
        f"{counts.get('error', 0)} error, "
        f"{counts.get('skipped', 0)} skipped)",
    ]
    for outcome in doc.get("outcomes", []):
        if outcome.get("status") in ("fail", "error"):
            lines.append(
                f"  {outcome['status'].upper()} [{outcome.get('severity')}] "
                f"{outcome.get('id')}: {outcome.get('detail', '')}"
            )
    return "\n".join(lines)


def summarise(doc: Any) -> str:
    """Human-readable digest of any telemetry artefact."""
    shape = classify(doc)
    if shape == "run_report":
        return _summarise_run_report(doc)
    if shape == "trace_events":
        return _summarise_trace_events(doc)
    if shape == "sweep_metrics":
        return _summarise_sweep_metrics(doc)
    if shape == "serve_metrics":
        return _summarise_serve_metrics(doc)
    if shape == "run_manifest":
        return _summarise_run_manifest(doc)
    if shape == "gate_report":
        return _summarise_gate_report(doc)
    if shape == "ga_generations":
        return _summarise_ga(doc)
    return "unrecognised telemetry document (no schema tag or known shape)"
