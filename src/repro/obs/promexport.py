"""Prometheus text-exposition view of the serve ``/metrics`` document.

``cohort serve`` keeps its JSON ``/metrics`` snapshot
(:data:`repro.obs.schema.SERVE_METRICS_SCHEMA`) byte-compatible; this
module renders the *same* counters as Prometheus text exposition format
(version 0.0.4) for ``GET /metrics?format=prometheus`` or an
``Accept: text/plain`` scrape:

* service and runner monotonic counters become ``_total`` counters,
* point-in-time values (queue depth, inflight, hit rate) become gauges,
* the service's :class:`~repro.obs.metrics.LatencyHistogram` snapshots
  become native Prometheus histograms — each log2 bucket's inclusive
  upper bound is an ``le`` bound, counts are re-emitted cumulatively,
  and ``+Inf``/``_sum``/``_count`` are derived exactly.

:func:`parse_prometheus_text` is the matching stdlib-only checker used
by tests and the smoke job: it parses an exposition body back into
samples and enforces the format's invariants (``TYPE`` before samples,
cumulative non-decreasing buckets, ``+Inf == _count``), standing in for
a real scraper in an offline CI.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import bucket_range

#: Serve-service fields exposed as monotonic counters.
SERVICE_COUNTERS = (
    ("jobs_submitted", "Jobs admitted to the queue."),
    ("jobs_rejected", "Jobs refused with 429 backpressure."),
    ("jobs_dispatched", "Jobs handed to the runner in batches."),
    ("jobs_completed", "Jobs finished successfully."),
    ("jobs_failed", "Jobs that ended in error."),
    ("batches", "Micro-batches executed."),
)

#: Serve-service fields exposed as gauges.
SERVICE_GAUGES = (
    ("queue_depth", "Jobs currently waiting for a batch."),
    ("queue_limit", "Admission queue capacity."),
    ("inflight", "Jobs currently executing."),
    ("max_queue_depth", "High-water mark of the admission queue."),
    ("max_batch", "Configured micro-batch size cap."),
    ("retry_after", "Backpressure retry hint in seconds."),
)

#: Runner telemetry fields exposed as monotonic counters.
RUNNER_COUNTERS = (
    ("cache_hits", "Result-cache hits (incl. in-batch duplicates)."),
    ("cache_misses", "Result-cache misses."),
    ("jobs_executed", "Simulations actually executed."),
    ("parallel_batches", "Batches dispatched to the process pool."),
    ("worker_failures", "Worker-process deaths observed."),
    ("job_timeouts", "Jobs that hit the per-job timeout."),
    ("job_retries", "Job resubmissions after crash/timeout."),
    ("cache_store_failures", "Best-effort cache stores that failed."),
    ("cache_evictions", "Cache entries evicted by the size budget."),
    ("cache_evicted_bytes", "Bytes reclaimed by budget evictions."),
    ("cache_quarantined", "Corrupt cache envelopes moved to quarantine."),
    ("lockstep_groups", "Same-trace groups run in lock-step."),
    ("lockstep_jobs", "Jobs served by lock-step batches."),
    ("lockstep_peeled", "Jobs peeled to the per-event path."),
    ("trace_decode_hits", "Trace decode-cache hits."),
    ("trace_decode_misses", "Trace decode-cache misses."),
)

#: Runner telemetry fields exposed as gauges.
RUNNER_GAUGES = (
    ("jobs", "Configured worker-process count."),
    ("cache_hit_rate", "Lifetime cache hit rate."),
    ("cache_size_bytes", "Bytes currently held by on-disk cache entries."),
    ("cache_budget_bytes", "Configured cache size budget (0 = unbounded)."),
    ("exec_seconds", "Wall-clock seconds spent executing jobs."),
    ("backoff_seconds", "Seconds slept in retry backoff."),
)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _labels(labels: Mapping[str, str]) -> str:
    """Render a label set, ``{}``-free when empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    """One sample value in exposition syntax (ints stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


class _Writer:
    """Accumulates exposition lines with one HELP/TYPE per family."""

    def __init__(self, labels: Mapping[str, str]) -> None:
        self.labels = dict(labels)
        self.lines: List[str] = []

    def sample(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any,
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Emit one single-sample family (counter or gauge)."""
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")
        labels = dict(self.labels)
        if extra_labels:
            labels.update(extra_labels)
        self.lines.append(f"{name}{_labels(labels)} {_format_value(value)}")

    def histogram(
        self, name: str, help_text: str, hist: Mapping[str, Any]
    ) -> None:
        """Emit a ``LatencyHistogram.to_dict`` snapshot as a histogram.

        Log2 buckets are exact sub-ranges, so re-emitting each bucket's
        inclusive upper bound as its ``le`` boundary loses nothing: the
        cumulative count at ``le=2^b - 1`` is exactly the number of
        observations ``<= 2^b - 1``.
        """
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} histogram")
        buckets = {
            int(b): int(c) for b, c in dict(hist.get("buckets", {})).items()
        }
        total = int(hist.get("total", 0))
        cumulative = 0
        for bucket in sorted(buckets):
            cumulative += buckets[bucket]
            bound = bucket_range(bucket)[1]
            labels = dict(self.labels)
            labels["le"] = _format_value(float(bound))
            self.lines.append(
                f"{name}_bucket{_labels(labels)} {cumulative}"
            )
        labels = dict(self.labels)
        labels["le"] = "+Inf"
        self.lines.append(f"{name}_bucket{_labels(labels)} {total}")
        self.lines.append(
            f"{name}_sum{_labels(self.labels)} "
            f"{_format_value(hist.get('sum', 0))}"
        )
        self.lines.append(f"{name}_count{_labels(self.labels)} {total}")

    def render(self) -> str:
        """The full exposition body (trailing newline included)."""
        return "\n".join(self.lines) + "\n"


def prometheus_from_serve_metrics(doc: Mapping[str, Any]) -> str:
    """Render a serve ``/metrics`` JSON document as exposition text.

    Pure function of the snapshot — the JSON document stays the source
    of truth and its schema is untouched; this is an alternate encoding
    of the same numbers, scrapeable by a stock Prometheus.
    """
    service = doc.get("service", {})
    runner = doc.get("runner", {})
    writer = _Writer({"service": str(doc.get("label", "serve"))})
    writer.sample(
        "cohort_serve_up", "gauge",
        "1 while the service accepts work, 0 while draining.",
        0 if service.get("draining") else 1,
    )
    writer.sample(
        "cohort_serve_uptime_seconds", "gauge",
        "Seconds since the service started.",
        float(doc.get("uptime_seconds", 0.0)),
    )
    for field, help_text in SERVICE_COUNTERS:
        writer.sample(
            f"cohort_serve_{field}_total", "counter", help_text,
            service.get(field, 0),
        )
    for field, help_text in SERVICE_GAUGES:
        writer.sample(
            f"cohort_serve_{field}", "gauge", help_text,
            service.get(field, 0),
        )
    writer.histogram(
        "cohort_serve_batch_size",
        "Jobs per executed micro-batch.",
        service.get("batch_sizes", {}),
    )
    writer.histogram(
        "cohort_serve_queue_wait_ms",
        "Milliseconds jobs waited between admission and dispatch.",
        service.get("queue_wait_ms", {}),
    )
    for field, help_text in RUNNER_COUNTERS:
        writer.sample(
            f"cohort_runner_{field}_total", "counter", help_text,
            runner.get(field, 0),
        )
    for field, help_text in RUNNER_GAUGES:
        writer.sample(
            f"cohort_runner_{field}", "gauge", help_text,
            runner.get(field, 0),
        )
    return writer.render()


#: Fleet counters exposed as ``cohort_fleet_*_total``.
FLEET_COUNTERS = (
    ("jobs_submitted", "Jobs admitted by the fleet router."),
    ("jobs_completed", "Jobs finished successfully across the fleet."),
    ("jobs_failed", "Jobs that ended in error across the fleet."),
    ("jobs_rejected", "Jobs refused with fleet backpressure."),
    ("failovers", "Jobs re-routed off a dead shard to a live one."),
    ("replayed_jobs", "Accepted jobs replayed from an intake journal."),
    ("restarts_total", "Shard restarts performed by the supervisor."),
    ("recoveries", "Completed shard down->healthy recoveries."),
)

#: Fleet gauges exposed as ``cohort_fleet_*``.
FLEET_GAUGES = (
    ("shards_total", "Configured shard count."),
    ("shards_up", "Shards currently healthy."),
    ("admission_pending", "Accepted jobs not yet finished."),
    ("admission_limit", "Fleet admission bound."),
    ("journal_live", "Unretired intake-journal entries across shards."),
    ("journal_torn_lines", "Torn journal lines tolerated on replay."),
    ("recovery_seconds_max", "Worst shard recovery time observed."),
    ("recovery_seconds_mean", "Mean shard recovery time observed."),
)

#: Aggregated shard cache-tier fields (summed over reachable shards)
#: exposed as ``cohort_fleet_cache_*``.
FLEET_CACHE_COUNTERS = (
    ("evictions", "Cache entries evicted by the size budget."),
    ("evicted_bytes", "Bytes reclaimed by budget evictions."),
    ("quarantined", "Corrupt cache envelopes quarantined."),
    ("hits", "Result-cache hits across shards."),
    ("misses", "Result-cache misses across shards."),
)


def prometheus_from_fleet_metrics(doc: Mapping[str, Any]) -> str:
    """Render a fleet ``/metrics`` JSON document as exposition text.

    Same contract as :func:`prometheus_from_serve_metrics`: the JSON
    snapshot (:data:`repro.obs.schema.FLEET_METRICS_SCHEMA`) stays the
    source of truth; this re-encodes the fleet counters, the aggregated
    cache-tier counters, and one ``cohort_fleet_shard_up`` gauge per
    shard (labelled by shard index) for a stock Prometheus scraper.
    """
    fleet = doc.get("fleet", {})
    cache = fleet.get("cache", {})
    writer = _Writer({"service": str(doc.get("label", "fleet"))})
    writer.sample(
        "cohort_fleet_up", "gauge",
        "1 while the fleet router accepts work, 0 while draining.",
        0 if fleet.get("draining") else 1,
    )
    writer.sample(
        "cohort_fleet_uptime_seconds", "gauge",
        "Seconds since the supervisor started.",
        float(doc.get("uptime_seconds", 0.0)),
    )
    for field, help_text in FLEET_COUNTERS:
        writer.sample(
            f"cohort_fleet_{field}_total", "counter", help_text,
            fleet.get(field, 0),
        )
    for field, help_text in FLEET_GAUGES:
        writer.sample(
            f"cohort_fleet_{field}", "gauge", help_text,
            fleet.get(field, 0),
        )
    for field, help_text in FLEET_CACHE_COUNTERS:
        writer.sample(
            f"cohort_fleet_cache_{field}_total", "counter", help_text,
            cache.get(field, 0),
        )
    writer.sample(
        "cohort_fleet_cache_size_bytes", "gauge",
        "Bytes currently held by the shared on-disk cache tier.",
        cache.get("size_bytes", 0),
    )
    writer.sample(
        "cohort_fleet_cache_budget_bytes", "gauge",
        "Configured cache size budget (0 = unbounded).",
        cache.get("budget_bytes", 0),
    )
    shards = doc.get("shards", [])
    if shards:
        writer.lines.append(
            "# HELP cohort_fleet_shard_up 1 while the shard answers "
            "health checks."
        )
        writer.lines.append("# TYPE cohort_fleet_shard_up gauge")
        for shard in shards:
            labels = dict(writer.labels)
            labels["shard"] = str(shard.get("index", "?"))
            writer.lines.append(
                f"cohort_fleet_shard_up{_labels(labels)} "
                f"{1 if shard.get('state') == 'up' else 0}"
            )
    return writer.render()


_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME_RE})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(rf'({_NAME_RE})="((?:[^"\\]|\\.)*)"')


def _parse_value(token: str) -> float:
    """A sample value token as a float (``+Inf``/``NaN`` included)."""
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token.lower() == "nan":
        return math.nan
    return float(token)


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse exposition text; raise ``ValueError`` on format violations.

    Returns ``metric name → [(labels, value), …]`` in document order.
    Checks the invariants a scraper would enforce: well-formed sample
    and comment lines, a ``TYPE`` line preceding its family's samples,
    and — for histograms — cumulative, non-decreasing ``le`` buckets
    whose ``+Inf`` count equals ``_count``.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    types: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if parts[2] in types:
                    raise ValueError(
                        f"line {number}: duplicate TYPE for {parts[2]}"
                    )
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {number}: bad TYPE line: {line}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {number}: malformed sample: {line}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = sum(
                len(m.group(0)) for m in _LABEL_RE.finditer(raw_labels)
            )
            pairs = _LABEL_RE.findall(raw_labels)
            separators = raw_labels.count(",")
            if not pairs or consumed + separators < len(raw_labels.strip()):
                raise ValueError(
                    f"line {number}: malformed labels: {{{raw_labels}}}"
                )
            labels = {key: value for key, value in pairs}
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family not in types and name not in types:
            raise ValueError(
                f"line {number}: sample {name} has no preceding TYPE"
            )
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {number}: bad sample value: {match.group('value')}"
            )
        samples.setdefault(name, []).append((labels, value))
    _check_histograms(samples, types)
    return samples


def _check_histograms(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]],
    types: Dict[str, str],
) -> None:
    """Enforce histogram invariants over parsed samples."""
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{family}_bucket", [])
        counts = samples.get(f"{family}_count", [])
        if not buckets or not counts:
            raise ValueError(f"histogram {family} lacks buckets or _count")
        bounds = []
        for labels, value in buckets:
            if "le" not in labels:
                raise ValueError(f"histogram {family} bucket without le")
            bounds.append((_parse_value(labels["le"]), value))
        previous_bound = -math.inf
        previous_count = 0.0
        for bound, count in bounds:
            if bound <= previous_bound:
                raise ValueError(
                    f"histogram {family}: le bounds not increasing"
                )
            if count < previous_count:
                raise ValueError(
                    f"histogram {family}: bucket counts not cumulative"
                )
            previous_bound, previous_count = bound, count
        if bounds[-1][0] != math.inf:
            raise ValueError(f"histogram {family}: missing +Inf bucket")
        if bounds[-1][1] != counts[0][1]:
            raise ValueError(
                f"histogram {family}: +Inf bucket != _count"
            )
