"""Optimizer telemetry: per-generation JSONL logging for the GA.

:class:`GAGenerationLog` is a callable that plugs straight into
:meth:`repro.opt.ga.GeneticAlgorithm.run`'s ``on_generation`` hook.  It
accumulates the records in memory and can stream or dump them as JSON
Lines — one strict-JSON object per generation (the GA already maps
infinite fitness values to ``None``).

``load_jsonl`` + :func:`repro.obs.report.summarise` round-trip the file
back into the ``cohort metrics`` digest.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, TextIO


def _jsonable(value: Any) -> Any:
    """Strict JSON: non-finite floats degrade to ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class GAGenerationLog:
    """Collects GA generation records; optionally streams them as JSONL."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.records: List[Dict[str, Any]] = []
        self._stream = stream

    def __call__(self, record: Dict[str, Any]) -> None:
        row = {key: _jsonable(value) for key, value in record.items()}
        self.records.append(row)
        if self._stream is not None:
            self._stream.write(json.dumps(row) + "\n")
            self._stream.flush()

    def write_jsonl(self, path: str) -> None:
        """Dump every collected record to ``path`` as JSON Lines."""
        with open(path, "w") as fh:
            for row in self.records:
                fh.write(json.dumps(row) + "\n")


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a generation log written by :class:`GAGenerationLog`."""
    rows: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
