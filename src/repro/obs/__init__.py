"""Telemetry layer: spans, metrics, exporters, optimizer logs.

Everything in this package observes the simulator exclusively through
:class:`~repro.sim.events.EventBus` subscriptions (plus one read-only
kernel sampler) — attaching telemetry never changes simulated cycle
counts, and nothing here subscribes to per-access ``hit`` events, so the
engine's hot path stays on its fast path.

Entry points:

* :class:`Telemetry` — one-call attach + trace/report export,
* :class:`SpanCollector` / :class:`RequestSpan` — request-lifecycle
  spans with exact per-phase latency attribution and WCML blame,
* :class:`MetricsCollector` / :class:`LatencyHistogram` — log2 latency
  histograms and windowed time-series samples,
* :func:`build_trace_events` / :func:`validate_trace_events` — Chrome
  trace-event (Perfetto-loadable) export and its in-repo schema check,
* :func:`build_run_report` / :func:`summarise` — structured run reports
  and the ``cohort metrics`` digest,
* :class:`GAGenerationLog` — per-generation JSONL for the optimizer,
* :class:`OpLogger` / :func:`compute_slo` /
  :func:`build_service_trace` — the *operational* half
  (:mod:`repro.obs.ops`): structured serving logs with trace-context
  propagation, service-lifecycle traces, SLO inputs,
* :func:`prometheus_from_serve_metrics` — Prometheus text exposition
  of the serve ``/metrics`` document.
"""

from repro.obs.export import build_trace_events, write_trace
from repro.obs.ga_log import GAGenerationLog, load_jsonl
from repro.obs.metrics import LatencyHistogram, MetricsCollector, log2_bucket
from repro.obs.ops import (
    OpLogger,
    build_service_trace,
    compute_slo,
    new_trace_id,
    read_oplog,
    valid_trace_id,
)
from repro.obs.promexport import (
    parse_prometheus_text,
    prometheus_from_serve_metrics,
)
from repro.obs.report import (
    build_run_report,
    classify,
    summarise,
)
from repro.obs.schema import (
    FLEET_METRICS_SCHEMA,
    GATE_REPORT_SCHEMA,
    INTAKE_JOURNAL_SCHEMA,
    OPLOG_SCHEMA,
    RUN_MANIFEST_SCHEMA,
    RUN_REPORT_SCHEMA,
    SCHEMA_REGISTRY,
    SERVE_METRICS_SCHEMA,
    SWEEP_METRICS_SCHEMA,
    TRACE_EVENT_SCHEMA,
    validate_document,
    validate_trace_events,
)
from repro.obs.spans import PHASES, RequestSpan, SpanCollector
from repro.obs.telemetry import Telemetry

__all__ = [
    "FLEET_METRICS_SCHEMA",
    "GATE_REPORT_SCHEMA",
    "INTAKE_JOURNAL_SCHEMA",
    "OPLOG_SCHEMA",
    "PHASES",
    "RUN_MANIFEST_SCHEMA",
    "RUN_REPORT_SCHEMA",
    "SCHEMA_REGISTRY",
    "SERVE_METRICS_SCHEMA",
    "SWEEP_METRICS_SCHEMA",
    "TRACE_EVENT_SCHEMA",
    "GAGenerationLog",
    "LatencyHistogram",
    "MetricsCollector",
    "OpLogger",
    "RequestSpan",
    "SpanCollector",
    "Telemetry",
    "build_run_report",
    "build_service_trace",
    "build_trace_events",
    "classify",
    "compute_slo",
    "load_jsonl",
    "log2_bucket",
    "new_trace_id",
    "parse_prometheus_text",
    "prometheus_from_serve_metrics",
    "read_oplog",
    "summarise",
    "valid_trace_id",
    "validate_document",
    "validate_trace_events",
    "write_trace",
]
