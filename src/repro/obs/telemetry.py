"""The one-call telemetry façade.

``Telemetry.attach(system)`` wires every collector of :mod:`repro.obs`
onto a built (not yet run) :class:`~repro.sim.system.System` purely
through :class:`~repro.sim.events.EventBus` subscriptions and one
self-scheduling kernel sampler — no engine-layer code changes, and the
per-access hit fast path stays untouched (nothing here subscribes to
``hit``, so ``EventBus.hot`` stays false).

After ``system.run()``, the façade turns the collected spans and
metrics into the two export artefacts::

    telemetry = Telemetry.attach(system, sample_every=500)
    system.run()
    telemetry.write_trace("run.trace.json")     # chrome://tracing / Perfetto
    telemetry.write_report("run.metrics.json")  # structured run report
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.obs.export import build_trace_events, write_trace
from repro.obs.metrics import MetricsCollector
from repro.obs.report import build_run_report
from repro.obs.spans import SpanCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System


class Telemetry:
    """Spans + metrics collectors and their exporters, as one object."""

    def __init__(
        self,
        system: "System",
        spans: SpanCollector,
        metrics: MetricsCollector,
        label: str = "simulate",
    ) -> None:
        self.system = system
        self.spans = spans
        self.metrics = metrics
        self.label = label

    @classmethod
    def attach(
        cls,
        system: "System",
        sample_every: int = 0,
        keep_spans: bool = True,
        label: str = "simulate",
    ) -> "Telemetry":
        """Subscribe all collectors to a built, not-yet-run system.

        ``sample_every`` is the time-series cadence in cycles (0 turns
        the sampler off; histograms and spans are always collected).
        ``keep_spans=False`` drops per-span records after aggregation —
        blame reports still work, trace export degrades to instants only.
        """
        spans = SpanCollector.attach(system, keep_spans=keep_spans)
        metrics = MetricsCollector.attach(system, sample_every=sample_every)
        return cls(system, spans, metrics, label=label)

    # -- artefacts ---------------------------------------------------------

    def trace_events(self, name: Optional[str] = None) -> Dict[str, Any]:
        """The Chrome trace-event / Perfetto JSON document."""
        return build_trace_events(
            self.spans,
            metrics=self.metrics,
            num_cores=self.system.config.num_cores,
            name=name or f"cohort-{self.label}",
        )

    def run_report(self) -> Dict[str, Any]:
        """The structured JSON run report."""
        return build_run_report(
            self.system, self.spans, metrics=self.metrics, label=self.label
        )

    def write_trace(self, path: str) -> None:
        """Save the Chrome trace-event JSON document to ``path``."""
        write_trace(path, self.trace_events())

    def write_report(self, path: str) -> None:
        """Save the structured run report as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.run_report(), fh, indent=2)

    def render_blame(self) -> str:
        """Human-readable WCML blame table (worst span per core)."""
        return self.spans.render_blame()
