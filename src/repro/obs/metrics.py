"""Run metrics: log2 latency histograms and windowed time-series samplers.

Two complementary views of a run:

* :class:`LatencyHistogram` — per ``(core, mode)`` log2-bucket counts of
  completed-request latencies, fed from ``fill`` events.  Bucket ``b``
  holds latencies whose bit length is ``b``, i.e. ``[2^(b-1), 2^b - 1]``
  (bucket 0 holds latency 0).
* :class:`WindowSampler` — a time series sampled every ``sample_every``
  cycles: windowed bus utilisation and miss rate, the live
  protected-line count (valid lines whose countdown timer is armed,
  i.e. currently shielding the copy from a conflicting snoop), and the
  write-back queue depth.

The sampler schedules itself on the simulation kernel at a phase *after*
arbitration, mutates no simulator state, and re-arms only while other
events are pending — so per-core cycle counts, stats and the final cycle
are byte-identical with and without sampling (asserted by the test
suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.sim.kernel import PHASE_ARBITRATE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventBus
    from repro.sim.system import System

#: Samples run after every same-cycle simulator phase (kernel phases are
#: plain integers ordered ascending; 3 > PHASE_ARBITRATE).
PHASE_SAMPLE = PHASE_ARBITRATE + 1

#: The series every sample records, in column order.
SAMPLE_SERIES: Tuple[str, ...] = (
    "bus_utilization",
    "miss_rate",
    "protected_lines",
    "wb_queue_depth",
)


def log2_bucket(latency: int) -> int:
    """The histogram bucket of a latency: its bit length."""
    return int(latency).bit_length()


def bucket_range(bucket: int) -> Tuple[int, int]:
    """The inclusive ``[lo, hi]`` latency range of a bucket."""
    if bucket == 0:
        return (0, 0)
    return (1 << (bucket - 1), (1 << bucket) - 1)


@dataclass
class LatencyHistogram:
    """Log2-bucketed latency distribution."""

    counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    sum: int = 0
    max: int = 0

    def add(self, latency: int) -> None:
        """Count one observed ``latency`` in its log2 bucket."""
        bucket = log2_bucket(latency)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self.sum += latency
        if latency > self.max:
            self.max = latency

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> int:
        """Upper bound of the bucket holding the ``q``-quantile.

        Conservative by construction: the returned value is the largest
        latency the bucket can contain, so ``percentile(0.95)`` is an
        upper bound on the true p95 (used by the serve layer to report
        queue-wait and batch-size quantiles without storing samples).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.total == 0:
            return 0
        need = q * self.total
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= need:
                return bucket_range(bucket)[1]
        return bucket_range(max(self.counts))[1]

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s observations into this histogram, in place.

        Because buckets are fixed (log2 of the latency), merging is exact:
        the merged histogram is identical to one fed every underlying
        observation directly.  Used by the Prometheus exporter to
        aggregate per-core histograms into one exposition series, and by
        the SLO layer to combine per-shard queue-wait distributions.
        Returns ``self`` so merges chain.
        """
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`to_dict` form.

        ``mean`` is derived, not stored; unknown keys are ignored so the
        shape can grow without breaking old readers.
        """
        return cls(
            counts={int(b): int(c) for b, c in doc.get("buckets", {}).items()},
            total=int(doc.get("total", 0)),
            sum=int(doc.get("sum", 0)),
            max=int(doc.get("max", 0)),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form: bucket counts, total and extrema."""
        return {
            "buckets": {str(b): self.counts[b] for b in sorted(self.counts)},
            "total": self.total,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsCollector:
    """Histograms + sampler behind one subscriber/scheduler pair."""

    KINDS = ("fill", "mode_switch")

    def __init__(self, sample_every: int = 0) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables sampling)")
        self.sample_every = sample_every
        self.mode = 0
        #: ``(core, mode)`` → latency histogram of completed requests.
        self.histograms: Dict[Tuple[int, int], LatencyHistogram] = {}
        #: One row per sample: ``{"cycle": …, series…}``.
        self.samples: List[Dict[str, Any]] = []
        self._system: "System" | None = None
        self._last_busy = 0
        self._last_hits = 0
        self._last_misses = 0
        self._last_cycle = 0

    @classmethod
    def attach(cls, system: "System", sample_every: int = 0) -> "MetricsCollector":
        """Subscribe to the system's bus and arm the cycle sampler."""
        collector = cls(sample_every=sample_every)
        collector._system = system
        system.events.subscribe(collector, kinds=cls.KINDS)
        if sample_every:
            system.kernel.schedule(
                system.kernel.now + sample_every, PHASE_SAMPLE,
                collector._take_sample,
            )
        return collector

    def __call__(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        if kind == "mode_switch":
            self.mode = payload["mode"]
            return
        key = (payload["core"], self.mode)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = LatencyHistogram()
        hist.add(payload["latency"])

    # -- sampling ----------------------------------------------------------

    def _take_sample(self) -> None:
        system = self._system
        assert system is not None
        now = system.kernel.now
        stats = system.stats
        window = now - self._last_cycle
        busy = stats.bus_busy_cycles
        hits = sum(c.hits for c in stats.cores)
        misses = sum(c.misses for c in stats.cores)
        d_hits = hits - self._last_hits
        d_misses = misses - self._last_misses
        accesses = d_hits + d_misses
        protected = sum(
            cache.array.pending_count() for cache in system.caches
        )
        self.samples.append(
            {
                "cycle": now,
                "mode": self.mode,
                # Bus occupancy is booked at grant time for the full
                # slot, so a window's utilisation can exceed 1.0 when a
                # long slot was granted inside it.
                "bus_utilization": (busy - self._last_busy) / window
                if window else 0.0,
                "miss_rate": d_misses / accesses if accesses else 0.0,
                "protected_lines": protected,
                "wb_queue_depth": system.backend.pending_writeback_count(),
            }
        )
        self._last_busy = busy
        self._last_hits = hits
        self._last_misses = misses
        self._last_cycle = now
        # Re-arm only while the simulation still has work: the run ends
        # (and final_cycle is decided) by a *simulator* event, never by a
        # pending sample.
        if system.kernel.pending_events > 0:
            system.kernel.schedule(
                now + self.sample_every, PHASE_SAMPLE, self._take_sample
            )

    # -- reports -----------------------------------------------------------

    def histograms_to_dict(self) -> List[Dict[str, Any]]:
        """All per-(core, mode) histograms as JSON-compatible entries."""
        out = []
        for (core, mode) in sorted(self.histograms):
            entry = self.histograms[(core, mode)].to_dict()
            entry["core"] = core
            entry["mode"] = mode
            out.append(entry)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form: cadence, histograms and sample series."""
        return {
            "sample_every": self.sample_every,
            "histograms": self.histograms_to_dict(),
            "samples": list(self.samples),
        }
