"""Chrome trace-event / Perfetto JSON export.

Produces the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON object form, loadable in ``chrome://tracing`` and in Perfetto's
trace viewer (legacy JSON importer):

* one **track per core** (``tid`` = core id) carrying a complete-event
  (``"ph": "X"``) slice per request span, with nested child slices for
  each non-empty attribution phase,
* **instant events** (``"ph": "i"``) for ``timer_expiry`` (on the
  holding core's track) and ``mode_switch`` (process-scoped),
* **counter tracks** (``"ph": "C"``) for every sampled series of
  :class:`~repro.obs.metrics.MetricsCollector`.

Timestamps are simulated cycles emitted as integer ``ts`` values; the
viewer renders one cycle as one microsecond.  The output validates
against the in-repo schema (:mod:`repro.obs.schema`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.metrics import SAMPLE_SERIES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsCollector
    from repro.obs.spans import SpanCollector

#: Process id used for every simulator track.
PID = 0


def _metadata(num_cores: int, name: str) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": PID, "name": "process_name",
         "args": {"name": name}},
    ]
    for core in range(num_cores):
        events.append(
            {"ph": "M", "pid": PID, "tid": core, "name": "thread_name",
             "args": {"name": f"core {core}"}}
        )
        events.append(
            {"ph": "M", "pid": PID, "tid": core, "name": "thread_sort_index",
             "args": {"sort_index": core}}
        )
    return events


def _span_events(spans: "SpanCollector") -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for span in spans.completed:
        assert span.complete_cycle is not None
        events.append(
            {
                "ph": "X",
                "pid": PID,
                "tid": span.core,
                "name": f"{span.req_kind} L{span.line}",
                "cat": "request",
                "ts": span.issue_cycle,
                "dur": span.latency or 0,
                "args": span.to_dict(),
            }
        )
        for phase, start, end in span.phase_segments():
            events.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": span.core,
                    "name": phase,
                    "cat": "phase",
                    "ts": start,
                    "dur": end - start,
                    "args": {"line": span.line, "req_id": span.req_id},
                }
            )
    return events


def _instant_events(spans: "SpanCollector") -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for cycle, kind, payload in spans.instants:
        event: Dict[str, Any] = {
            "ph": "i",
            "pid": PID,
            "name": kind,
            "cat": "protocol",
            "ts": cycle,
            "args": dict(payload),
        }
        if kind == "timer_expiry":
            event["tid"] = payload["core"]
            event["s"] = "t"
        else:  # mode_switch: process-scoped
            event["s"] = "p"
        events.append(event)
    return events


def _counter_events(metrics: "MetricsCollector") -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for sample in metrics.samples:
        for series in SAMPLE_SERIES:
            events.append(
                {
                    "ph": "C",
                    "pid": PID,
                    "name": series,
                    "ts": sample["cycle"],
                    "args": {series: sample[series]},
                }
            )
    return events


def build_trace_events(
    spans: "SpanCollector",
    metrics: Optional["MetricsCollector"] = None,
    num_cores: int = 0,
    name: str = "cohort-sim",
) -> Dict[str, Any]:
    """Assemble the full trace-event JSON document."""
    cores = num_cores or (max(spans.cores()) + 1 if spans.cores() else 0)
    events = _metadata(cores, name)
    events.extend(_span_events(spans))
    events.extend(_instant_events(spans))
    if metrics is not None:
        events.extend(_counter_events(metrics))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated cycles (1 cycle == 1us in the viewer)",
        },
    }


def write_trace(path: str, doc: Dict[str, Any]) -> None:
    """Write a trace-event document to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(doc, fh)
