"""Operational observability: structured logs, trace ids, service spans, SLOs.

PR 3's telemetry (:mod:`repro.obs.spans`, :mod:`repro.obs.metrics`)
looks *inside one simulation*; this module is the operational half for
the serving stack around it:

* :class:`OpLogger` — a thread-safe, stdlib-only JSON-lines logger.
  Every line is a self-describing event tagged
  :data:`~repro.obs.schema.OPLOG_SCHEMA` (``repro.obs/oplog/1``,
  registered in the schema registry and checked by
  ``python -m repro.obs.validate``), carrying a wall-clock ``ts``, the
  emitting ``component``, an ``event`` name, and — when the event
  belongs to a request — the request's ``trace_id``/``job_id``.  One
  ``grep trace_id oplog.jsonl`` reconstructs a request's full
  lifecycle: ``admit`` → ``batch`` → ``cache_hit``/``execute`` →
  ``retire`` (plus ``reject``, ``drain`` and ``worker_quarantine``
  events around it).
* :func:`new_trace_id` / :func:`valid_trace_id` — trace-context
  minting and the charset contract for the ``X-Trace-Id`` header.
* :func:`build_service_trace` — service-lifecycle spans
  (submit → queue → execute → respond) per request, exported in the
  same Chrome trace-event JSON the simulation exporter emits, so a
  request's wall-clock life loads in Perfetto next to simulated cycles.
* :func:`compute_slo` — declarative-objective inputs (p99 queue wait,
  error ratio, availability, warm hit rate) computed from a parsed
  oplog; ``cohort obs slo`` wraps this into a ``repro.qa`` run
  manifest for the shipped ``slo`` gate spec.

Everything here is wall-clock (``time.time``) — the simulated-cycle
clock never appears in the oplog.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.obs.metrics import LatencyHistogram
from repro.obs.schema import OPLOG_SCHEMA

#: Charset/length contract for trace ids carried in ``X-Trace-Id``: the
#: server honours a client-minted id only when it matches (anything
#: else gets a fresh id, never an error — tracing must not break jobs).
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_.\-]{1,64}$")

#: Request-lifecycle event names, in order of appearance.  Informational
#: only — the oplog vocabulary is open — but the SLO layer keys on these.
LIFECYCLE_EVENTS = (
    "admit", "reject", "batch", "cache_hit", "execute", "retire",
)


def new_trace_id() -> str:
    """Mint a fresh 32-hex-character trace id."""
    return uuid.uuid4().hex


def valid_trace_id(value: Any) -> bool:
    """Whether ``value`` is acceptable as a client-supplied trace id."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


class OpLogger:
    """Append-only JSON-lines operational logger (schema-versioned).

    A logger without a sink (``OpLogger()``) is a cheap no-op whose
    :meth:`emit` still tallies per-event counts — services attach one
    unconditionally and pay a dict update per event when logging is
    off.  With ``path`` the file is opened lazily in append mode and
    every line is flushed as written, so ``cohort obs tail`` and plain
    ``tail -f`` see events live.  All methods are thread-safe: the
    serve event loop, its executor thread and the runner's retry path
    share one logger.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[TextIO] = None,
        component: str = "serve",
        clock: Callable[[], float] = time.time,
    ) -> None:
        if path is not None and stream is not None:
            raise ValueError("pass either path or stream, not both")
        self.path = path
        self.component = component
        self.clock = clock
        self.events_emitted = 0
        #: Per-event tally, e.g. ``{"admit": 12, "retire": 12}``.
        self.event_counts: Dict[str, int] = {}
        self._stream = stream
        self._owns_stream = False
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether emitted events are written anywhere."""
        return self.path is not None or self._stream is not None

    def _sink(self) -> Optional[TextIO]:
        if self._stream is None and self.path is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._stream = open(self.path, "a")
            self._owns_stream = True
        return self._stream

    def emit(
        self,
        event: str,
        *,
        component: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Write one structured event line; returns the record emitted.

        ``None``-valued fields are dropped (absent beats ``null`` for
        grep and for the line schema); everything else must be
        JSON-serialisable.  The record always leads with the schema
        tag, timestamp, component and event name.
        """
        record: Dict[str, Any] = {
            "schema": OPLOG_SCHEMA,
            "ts": self.clock(),
            "component": component or self.component,
            "event": event,
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            self.events_emitted += 1
            self.event_counts[event] = self.event_counts.get(event, 0) + 1
            sink = self._sink()
            if sink is not None:
                sink.write(json.dumps(record, sort_keys=True) + "\n")
                sink.flush()
        return record

    def close(self) -> None:
        """Close the underlying file if this logger opened it."""
        with self._lock:
            if self._stream is not None and self._owns_stream:
                self._stream.close()
            self._stream = None
            self._owns_stream = False

    def __enter__(self) -> "OpLogger":
        """Context-manager entry: the logger itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close the sink."""
        self.close()


def read_oplog(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines oplog file into a list of event records.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming its line number (a torn final line means the writer died
    mid-write — worth surfacing, not hiding).
    """
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}")
            events.append(doc)
    return events


# -- service-lifecycle spans ------------------------------------------------

#: Process id used for the service track in exported traces — distinct
#: from :data:`repro.obs.export.PID` (0, the simulator) so wall-clock
#: service spans and simulated-cycle spans coexist in one viewer.
SERVICE_PID = 1

#: Service span phases, in request-lifecycle order.  ``queue`` is
#: admit → batch dispatch, ``execute`` is the batch running on the
#: runner, ``respond`` is result installation until the record is
#: pollable.
SERVICE_PHASES = ("queue", "execute", "respond")


def build_service_trace(
    rows: Sequence[Dict[str, Any]], name: str = "cohort-serve"
) -> Dict[str, Any]:
    """Chrome trace-event document of per-request service spans.

    ``rows`` are the dicts :class:`repro.serve.service.BatchingService`
    records at retire time (``trace_id``, ``job_id``, ``status`` and
    the four wall-clock marks ``submitted_at``/``dispatched_at``/
    ``executed_at``/``finished_at``).  Timestamps are microseconds
    relative to the earliest submission; concurrent requests are packed
    onto the lowest free track so overlapping lifecycles render side by
    side.  The output validates against the in-repo trace-event schema,
    like the simulation exporter's.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": SERVICE_PID, "name": "process_name",
         "args": {"name": name}},
    ]
    if not rows:
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs.ops",
                          "clock": "wall clock (us since first submission)"},
        }
    epoch = min(row["submitted_at"] for row in rows)

    def us(stamp: float) -> int:
        return max(0, int(round((stamp - epoch) * 1e6)))

    # Greedy track packing: a request reuses the lowest track that is
    # free by the time it is submitted.
    track_free_at: List[float] = []
    ordered = sorted(rows, key=lambda row: row["submitted_at"])
    used_tracks = 0
    for row in ordered:
        tid = None
        for candidate, free_at in enumerate(track_free_at):
            if free_at <= row["submitted_at"]:
                tid = candidate
                break
        if tid is None:
            tid = len(track_free_at)
            track_free_at.append(0.0)
        track_free_at[tid] = row["finished_at"]
        used_tracks = max(used_tracks, tid + 1)
        start = us(row["submitted_at"])
        end = us(row["finished_at"])
        events.append(
            {
                "ph": "X",
                "pid": SERVICE_PID,
                "tid": tid,
                "name": f"job {row['job_id']}",
                "cat": "service",
                "ts": start,
                "dur": max(0, end - start),
                "args": {
                    "trace_id": row.get("trace_id"),
                    "job_id": row["job_id"],
                    "status": row.get("status"),
                    "digest": row.get("digest"),
                },
            }
        )
        marks = (
            ("queue", row["submitted_at"], row["dispatched_at"]),
            ("execute", row["dispatched_at"], row["executed_at"]),
            ("respond", row["executed_at"], row["finished_at"]),
        )
        for phase, begin, finish in marks:
            if finish <= begin:
                continue
            events.append(
                {
                    "ph": "X",
                    "pid": SERVICE_PID,
                    "tid": tid,
                    "name": phase,
                    "cat": "service_phase",
                    "ts": us(begin),
                    "dur": us(finish) - us(begin),
                    "args": {"trace_id": row.get("trace_id"),
                             "job_id": row["job_id"]},
                }
            )
    for tid in range(used_tracks):
        events.insert(
            1 + tid,
            {"ph": "M", "pid": SERVICE_PID, "tid": tid,
             "name": "thread_name", "args": {"name": f"request lane {tid}"}},
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.ops",
            "clock": "wall clock (us since first submission)",
        },
    }


# -- SLO computation --------------------------------------------------------


def exact_percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (nearest-rank; 0 when empty)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def compute_slo(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """SLO inputs from parsed oplog events (see :func:`read_oplog`).

    Returns a flat metrics dict suitable for a ``repro.qa`` run
    manifest: request counts by outcome, the error ratio
    (failed / retired) and availability (completed / admitted),
    exact queue-wait percentiles (milliseconds, from the per-job
    ``batch`` events) plus the matching log2 histogram, and the warm
    hit rate over the runner's ``cache_hit``/``execute`` events.
    """
    admitted = retired = completed = failed = 0
    rejected_submissions = 0
    rejected_jobs = 0
    cache_hits = executions = 0
    quarantines = 0
    queue_waits: List[float] = []
    trace_ids = set()
    events_total = 0
    for event in events:
        events_total += 1
        name = event.get("event")
        trace_id = event.get("trace_id")
        if trace_id:
            trace_ids.add(trace_id)
        if name == "admit":
            admitted += 1
        elif name == "reject":
            rejected_submissions += 1
            rejected_jobs += int(event.get("jobs", 1))
        elif name == "batch":
            wait = event.get("queue_wait_ms")
            if isinstance(wait, (int, float)):
                queue_waits.append(float(wait))
        elif name == "cache_hit":
            cache_hits += 1
        elif name == "execute":
            executions += 1
        elif name == "retire":
            retired += 1
            if event.get("status") == "done":
                completed += 1
            else:
                failed += 1
        elif name == "worker_quarantine":
            quarantines += 1
    histogram = LatencyHistogram()
    for wait in queue_waits:
        histogram.add(max(0, int(wait)))
    served = cache_hits + executions
    return {
        "events": events_total,
        "requests_admitted": admitted,
        "requests_retired": retired,
        "requests_completed": completed,
        "requests_failed": failed,
        "submissions_rejected": rejected_submissions,
        "jobs_rejected": rejected_jobs,
        "worker_quarantines": quarantines,
        "error_ratio": failed / retired if retired else 0.0,
        "availability": completed / admitted if admitted else 0.0,
        "queue_wait_ms_p50": exact_percentile(queue_waits, 0.50),
        "queue_wait_ms_p95": exact_percentile(queue_waits, 0.95),
        "queue_wait_ms_p99": exact_percentile(queue_waits, 0.99),
        "queue_wait_ms_max": histogram.max,
        "queue_wait_ms_mean": histogram.mean,
        "warm_hit_rate": cache_hits / served if served else 0.0,
        "runner_cache_hits": cache_hits,
        "runner_executions": executions,
        "distinct_trace_ids": len(trace_ids),
    }


def render_slo(metrics: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of :func:`compute_slo` output."""
    lines = [
        f"requests: admitted={metrics['requests_admitted']} "
        f"completed={metrics['requests_completed']} "
        f"failed={metrics['requests_failed']} "
        f"(submissions rejected={metrics['submissions_rejected']})",
        f"objectives: error_ratio={metrics['error_ratio']:.4f} "
        f"availability={metrics['availability']:.4f} "
        f"warm_hit_rate={metrics['warm_hit_rate']:.4f}",
        f"queue wait ms: p50={metrics['queue_wait_ms_p50']:.0f} "
        f"p95={metrics['queue_wait_ms_p95']:.0f} "
        f"p99={metrics['queue_wait_ms_p99']:.0f} "
        f"max={metrics['queue_wait_ms_max']}",
        f"runner: cache_hits={metrics['runner_cache_hits']} "
        f"executions={metrics['runner_executions']} "
        f"quarantines={metrics['worker_quarantines']} "
        f"distinct_trace_ids={metrics['distinct_trace_ids']}",
    ]
    return "\n".join(lines)


def format_event(event: Dict[str, Any]) -> str:
    """One oplog record as a compact single line (``cohort obs tail``)."""
    ts = event.get("ts")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(ts))
        if isinstance(ts, (int, float)) else "--:--:--"
    )
    parts = [stamp, f"{event.get('component', '?')}:{event.get('event', '?')}"]
    for key in ("trace_id", "job_id", "status", "digest", "queue_wait_ms",
                "duration_ms", "attempt", "reason"):
        if key in event:
            value = event[key]
            if key == "digest" and isinstance(value, str):
                value = value[:12]
            parts.append(f"{key}={value}")
    return " ".join(parts)
