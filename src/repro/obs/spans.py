"""Request-lifecycle spans: per-phase latency attribution.

A *span* is the full life of one coherence request, correlated from the
event stream (``miss`` → ``grant``(broadcast) → waiting → optional
``grant``(data) → ``fill``) into a single record whose **phases partition
the measured latency exactly**:

``arb_request``
    waiting for the bus slot that broadcasts the request,
``bus_request``
    the broadcast's own bus occupancy (``LatencyParams.request``),
``protection``
    stalled on remote countdown timers — ends at the *last*
    ``timer_expiry`` observed on the line while waiting (the paper's
    Σθ term of Equation 1),
``backend``
    waiting on the memory backend after protection released: a DRAM
    fetch in flight and/or a write-back of the line still draining,
``arb_data``
    ready, but waiting for the data-transfer bus slot (arbitration and
    same-line FIFO ordering behind other requests),
``bus_data``
    the data transfer itself (``LatencyParams.data``; zero for upgrades
    that complete in place).

The attribution invariant — ``sum(phases.values()) == latency`` for
every completed span, with ``latency`` exactly what
:meth:`repro.sim.stats.CoreStats.record_miss` saw — holds by
construction: each phase is a clamped segment of the request's
``[issue, complete]`` interval and ``arb_data`` takes the remainder of
the wait window.  ``tests/test_obs_spans.py`` asserts it on every span
of real workloads.

:class:`SpanCollector` is an ordinary by-kind subscriber of the
:class:`~repro.sim.events.EventBus`; it never touches ``hit`` events, so
the hot path stays exactly as fast as with no telemetry at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventBus
    from repro.sim.system import System

#: Phase names, in request-lifecycle order.
PHASES: Tuple[str, ...] = (
    "arb_request",
    "bus_request",
    "protection",
    "backend",
    "arb_data",
    "bus_data",
)


@dataclass(slots=True)
class RequestSpan:
    """One coherence request's correlated lifecycle."""

    core: int
    line: int
    req_id: int
    req_kind: str
    issue_cycle: int
    #: Operating mode at issue time (0 before any ``mode_switch``).
    mode: int = 0
    broadcast_grant: Optional[int] = None
    broadcast_done: Optional[int] = None
    data_grant: Optional[int] = None
    complete_cycle: Optional[int] = None
    #: The latency reported by the ``fill`` event — byte-identical to
    #: what :meth:`repro.sim.stats.CoreStats.record_miss` accounted.
    latency: Optional[int] = None
    upgrade: bool = False
    source: Optional[int] = None
    #: ``timer_expiry`` cycles observed on this line while in flight.
    expiries: List[int] = field(default_factory=list)
    #: ``dram_fetch`` start cycles observed on this line while in flight.
    dram_fetches: List[int] = field(default_factory=list)
    #: ``wb_done`` cycles observed on this line while in flight.
    wb_drains: List[int] = field(default_factory=list)
    #: Per-phase latency attribution, filled at completion.
    phases: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.complete_cycle is not None

    def phase_segments(self) -> List[Tuple[str, int, int]]:
        """``(phase, start_cycle, end_cycle)`` for each non-empty phase,
        in order; the segments tile ``[issue_cycle, complete_cycle]``."""
        segments: List[Tuple[str, int, int]] = []
        at = self.issue_cycle
        for phase in PHASES:
            width = self.phases.get(phase, 0)
            if width > 0:
                segments.append((phase, at, at + width))
                at += width
        return segments

    def attribute(self, dram_latency: int) -> None:
        """Compute :attr:`phases` from the recorded lifecycle marks."""
        assert self.complete_cycle is not None and self.latency is not None
        issue = self.issue_cycle
        end = self.complete_cycle
        b_grant = self.broadcast_grant if self.broadcast_grant is not None else issue
        b_done = self.broadcast_done if self.broadcast_done is not None else b_grant
        # Upgrades finish without a data-transfer slot.
        wait_end = self.data_grant if self.data_grant is not None else end

        protect_end = b_done
        for cycle in self.expiries:
            if b_done <= cycle <= wait_end and cycle > protect_end:
                protect_end = cycle
        backend_end = protect_end
        for started in self.dram_fetches:
            if started <= wait_end:
                candidate = min(started + dram_latency, wait_end)
                if candidate > backend_end:
                    backend_end = candidate
        for drained in self.wb_drains:
            if protect_end <= drained <= wait_end and drained > backend_end:
                backend_end = drained
        self.phases = {
            "arb_request": b_grant - issue,
            "bus_request": b_done - b_grant,
            "protection": protect_end - b_done,
            "backend": backend_end - protect_end,
            "arb_data": wait_end - backend_end,
            "bus_data": end - wait_end,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (used by the run report and exporter)."""
        return {
            "core": self.core,
            "line": self.line,
            "req_id": self.req_id,
            "req_kind": self.req_kind,
            "mode": self.mode,
            "issue_cycle": self.issue_cycle,
            "complete_cycle": self.complete_cycle,
            "latency": self.latency,
            "upgrade": self.upgrade,
            "source": self.source,
            "phases": dict(self.phases),
        }


class SpanCollector:
    """Correlates the event stream into completed :class:`RequestSpan`\\ s.

    Subscribes by kind only (never to ``hit``): attaching one leaves
    :attr:`EventBus.hot` false and the simulator's hit fast path intact.
    """

    #: Event kinds this collector consumes.
    KINDS = (
        "miss",
        "grant",
        "timer_expiry",
        "dram_fetch",
        "wb_done",
        "fill",
        "mode_switch",
    )

    def __init__(self, dram_latency: int = 0, keep_spans: bool = True) -> None:
        self.dram_latency = dram_latency
        #: Keep every completed span (needed for trace export).  When
        #: False only the per-core aggregates and worst spans survive.
        self.keep_spans = keep_spans
        self.completed: List[RequestSpan] = []
        self.mode = 0
        #: Instant events worth exporting (timer expiries, mode switches).
        self.instants: List[Tuple[int, str, Dict[str, Any]]] = []
        self._open: Dict[int, RequestSpan] = {}
        self._by_line: Dict[int, List[RequestSpan]] = {}
        self._phase_totals: Dict[int, Dict[str, int]] = {}
        self._span_counts: Dict[int, int] = {}
        self._worst: Dict[int, RequestSpan] = {}

    @classmethod
    def attach(cls, system: "System", keep_spans: bool = True) -> "SpanCollector":
        """Create a collector subscribed to the system's event bus."""
        collector = cls(
            dram_latency=system.config.dram_latency, keep_spans=keep_spans
        )
        collector.subscribe(system.events)
        return collector

    def subscribe(self, bus: "EventBus") -> "SpanCollector":
        """Register for the span-relevant event kinds on ``bus``.

        Each kind gets its handler subscribed directly (rather than one
        dispatching callable) — grants and fills fire once per miss, so
        skipping a string-dispatch layer is a measurable share of the
        telemetry overhead the benchmark guard budgets."""
        bus.subscribe(self._on_miss, kinds=("miss",))
        bus.subscribe(self._on_grant, kinds=("grant",))
        bus.subscribe(self._on_fill, kinds=("fill",))
        bus.subscribe(self._on_mark, kinds=("timer_expiry", "dram_fetch",
                                            "wb_done", "mode_switch"))
        return self

    def __call__(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        """Dispatch one event by kind (the generic listener signature)."""
        if kind == "grant":
            self._on_grant(cycle, kind, payload)
        elif kind == "miss":
            self._on_miss(cycle, kind, payload)
        elif kind == "fill":
            self._on_fill(cycle, kind, payload)
        else:
            self._on_mark(cycle, kind, payload)

    # -- lifecycle handlers ------------------------------------------------

    def _on_mark(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        if kind == "mode_switch":
            self.mode = payload["mode"]
            self.instants.append((cycle, "mode_switch", dict(payload)))
            return
        # timer_expiry / dram_fetch / wb_done: line-keyed marks
        if kind == "timer_expiry":
            self.instants.append((cycle, "timer_expiry", dict(payload)))
        for span in self._by_line.get(payload["line"], ()):
            if kind == "timer_expiry":
                span.expiries.append(cycle)
            elif kind == "dram_fetch":
                span.dram_fetches.append(cycle)
            else:
                span.wb_drains.append(cycle)

    def _on_miss(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        span = RequestSpan(
            core=payload["core"],
            line=payload["line"],
            req_id=payload["req_id"],
            req_kind=payload["req_kind"],
            issue_cycle=cycle,
            mode=self.mode,
        )
        self._open[span.core] = span
        self._by_line.setdefault(span.line, []).append(span)

    def _on_grant(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        job = payload["job"]
        if job == "WRITEBACK":
            return
        span = self._open.get(payload["core"])
        if span is None:
            return
        if job == "BROADCAST":
            span.broadcast_grant = cycle
            span.broadcast_done = cycle + payload["duration"]
        else:  # DATA
            span.data_grant = cycle

    def _on_fill(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        span = self._open.pop(payload["core"], None)
        if span is None:
            return
        line_spans = self._by_line.get(span.line)
        if line_spans is not None:
            line_spans.remove(span)
            if not line_spans:
                del self._by_line[span.line]
        span.complete_cycle = cycle
        span.latency = payload["latency"]
        span.upgrade = payload["upgrade"]
        span.source = payload["source"]
        span.req_kind = payload["req_kind"]
        span.attribute(self.dram_latency)
        core = span.core
        totals = self._phase_totals.get(core)
        if totals is None:
            totals = self._phase_totals[core] = {phase: 0 for phase in PHASES}
        for phase, width in span.phases.items():
            totals[phase] += width
        self._span_counts[core] = self._span_counts.get(core, 0) + 1
        worst = self._worst.get(core)
        if worst is None or (span.latency or 0) > (worst.latency or 0):
            self._worst[core] = span
        if self.keep_spans:
            self.completed.append(span)

    # -- reports -----------------------------------------------------------

    def cores(self) -> List[int]:
        """Core ids that completed at least one span, ascending."""
        return sorted(self._span_counts)

    def span_count(self, core: int) -> int:
        """Number of completed spans recorded for ``core``."""
        return self._span_counts.get(core, 0)

    def phase_totals(self, core: int) -> Dict[str, int]:
        """Summed per-phase attribution over the core's completed spans."""
        return dict(
            self._phase_totals.get(core, {phase: 0 for phase in PHASES})
        )

    def worst_span(self, core: int) -> Optional[RequestSpan]:
        """The core's highest-latency completed span."""
        return self._worst.get(core)

    def wcml_blame(self) -> List[Dict[str, Any]]:
        """Per core: the worst span's phase breakdown — an explanation of
        ``CoreStats.max_request_latency`` as a sum of phases — plus the
        aggregate phase totals behind the experimental WCML."""
        out: List[Dict[str, Any]] = []
        for core in self.cores():
            worst = self._worst[core]
            out.append(
                {
                    "core": core,
                    "spans": self._span_counts[core],
                    "max_request_latency": worst.latency,
                    "worst_span": worst.to_dict(),
                    "phase_totals": self.phase_totals(core),
                }
            )
        return out

    def render_blame(self) -> str:
        """Human-readable WCML blame table."""
        lines = ["WCML blame (worst request per core, phase attribution):"]
        header = (
            f"{'core':>5} {'maxlat':>8} " +
            " ".join(f"{phase:>12}" for phase in PHASES)
        )
        lines.append(header)
        for entry in self.wcml_blame():
            phases = entry["worst_span"]["phases"]
            lines.append(
                f"c{entry['core']:>4} {entry['max_request_latency']:>8} "
                + " ".join(f"{phases.get(phase, 0):>12}" for phase in PHASES)
            )
        return "\n".join(lines)
