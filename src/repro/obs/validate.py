"""Validate exported trace files against the in-repo schema.

Module CLI used by the CI observability smoke job::

    python -m repro.obs.validate run.trace.json [more.json ...]

Exit status 0 when every file validates, 1 otherwise (errors on stderr).
No third-party validator is required — :mod:`repro.obs.schema` ships its
own for the keyword subset the schema uses.
"""

from __future__ import annotations

import json
import sys
from typing import List

from repro.obs.schema import validate_trace_events


def validate_file(path: str) -> List[str]:
    """Errors found in one trace-event JSON file (empty = valid)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load JSON: {exc}"]
    return [f"{path}: {err}" for err in validate_trace_events(doc)]


def main(argv: List[str]) -> int:
    """Validate each file; 0 if all pass, 1 on failures, 2 on usage."""
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            for error in errors[:20]:
                print(error, file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more errors",
                      file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
