"""Validate emitted JSON artefacts against the in-repo schemas.

Module CLI used by the CI smoke jobs::

    python -m repro.obs.validate run.trace.json manifest.json [...]

Each file is dispatched on its shape through the schema registry
(:func:`repro.obs.schema.schema_for_document`): Chrome trace-event
documents (``traceEvents`` key), ``repro.qa`` run manifests and gate
verdict reports (their ``schema`` tags).  Files that are not one JSON
document are treated as JSON *lines* (the ``repro.obs/oplog/1``
operational log) and validated record by record, errors naming the
line.  Exit status 0 when every file validates, 1 otherwise (errors on
stderr).  No third-party validator is required —
:mod:`repro.obs.schema` ships its own for the keyword subset the
schemas use.
"""

from __future__ import annotations

import json
import sys
from typing import List

from repro.obs.schema import validate_document


def validate_lines(path: str, text: str) -> List[str]:
    """Errors in a JSON-lines artefact, each prefixed ``path:line``."""
    errors: List[str] = []
    records = 0
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            errors.append(f"{path}:{number}: not valid JSON: {exc}")
            continue
        records += 1
        errors.extend(
            f"{path}:{number}: {err}" for err in validate_document(doc)
        )
    if not records:
        errors.append(f"{path}: no JSON records found")
    return errors


def validate_file(path: str) -> List[str]:
    """Errors found in one registered JSON artefact (empty = valid).

    A file that does not parse as a single JSON document falls back to
    line-by-line validation, covering JSONL artefacts such as the
    operational log and the GA generation log.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    try:
        doc = json.loads(text)
    except ValueError:
        return validate_lines(path, text)
    return [f"{path}: {err}" for err in validate_document(doc)]


def main(argv: List[str]) -> int:
    """Validate each file; 0 if all pass, 1 on failures, 2 on usage."""
    if not argv:
        print(
            "usage: python -m repro.obs.validate FILE.json [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            for error in errors[:20]:
                print(error, file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more errors",
                      file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
