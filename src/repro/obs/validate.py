"""Validate emitted JSON artefacts against the in-repo schemas.

Module CLI used by the CI smoke jobs::

    python -m repro.obs.validate run.trace.json manifest.json [...]

Each file is dispatched on its shape through the schema registry
(:func:`repro.obs.schema.schema_for_document`): Chrome trace-event
documents (``traceEvents`` key), ``repro.qa`` run manifests and gate
verdict reports (their ``schema`` tags).  Exit status 0 when every file
validates, 1 otherwise (errors on stderr).  No third-party validator is
required — :mod:`repro.obs.schema` ships its own for the keyword subset
the schemas use.
"""

from __future__ import annotations

import json
import sys
from typing import List

from repro.obs.schema import validate_document


def validate_file(path: str) -> List[str]:
    """Errors found in one registered JSON artefact (empty = valid)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load JSON: {exc}"]
    return [f"{path}: {err}" for err in validate_document(doc)]


def main(argv: List[str]) -> int:
    """Validate each file; 0 if all pass, 1 on failures, 2 on usage."""
    if not argv:
        print(
            "usage: python -m repro.obs.validate FILE.json [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        errors = validate_file(path)
        if errors:
            failed = True
            for error in errors[:20]:
                print(error, file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more errors",
                      file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
