"""Schema registry and in-repo JSON-schema validation.

This module is the single home for every schema identifier the project
emits — the ``repro.obs/...`` document tags, the ``repro.qa/...`` run
manifest and gate-verdict tags, and the integer
:data:`~repro.sim.stats.STATS_SCHEMA_VERSION` folded into sweep-cache
digests — collected in :data:`SCHEMA_REGISTRY` so a new schema cannot be
introduced without registering it here.

:data:`TRACE_EVENT_SCHEMA` encodes the Chrome trace-event JSON object
format (the subset the exporter emits) as a standard JSON-Schema
document; :data:`RUN_MANIFEST_JSON_SCHEMA` and
:data:`GATE_REPORT_JSON_SCHEMA` do the same for the ``repro.qa``
promotion-harness documents.  :func:`validate` is a small,
dependency-free validator for the keyword subset the schemas use
(``type``, ``required``, ``properties``, ``items``, ``enum``, ``const``,
``minimum``, ``oneOf``, ``$ref`` into ``definitions``).  CI runs these
checks against emitted artefacts (see ``python -m repro.obs.validate``);
the schemas themselves stay loadable by any off-the-shelf draft-07
validator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.stats import STATS_SCHEMA_VERSION

#: Schema tag stamped into every run report.
RUN_REPORT_SCHEMA = "repro.obs/run_report/1"
#: Schema tag stamped into sweep / optimizer metrics documents.
SWEEP_METRICS_SCHEMA = "repro.obs/sweep_metrics/1"
#: Schema tag stamped into ``cohort serve`` /metrics snapshots.
SERVE_METRICS_SCHEMA = "repro.obs/serve_metrics/1"
#: Schema tag stamped into every structured operational-log line.
OPLOG_SCHEMA = "repro.obs/oplog/1"
#: Schema tag stamped into ``cohort fleet`` /metrics snapshots.
FLEET_METRICS_SCHEMA = "repro.obs/fleet_metrics/1"
#: Schema tag stamped into every write-ahead intake-journal line
#: (the per-shard JSONL the fleet router fsyncs on admission).
INTAKE_JOURNAL_SCHEMA = "repro.serve/intake_journal/1"
#: Schema tag stamped into every ``repro.qa`` run manifest.
RUN_MANIFEST_SCHEMA = "repro.qa/run_manifest/1"
#: Schema tag stamped into every ``repro.qa`` gate verdict report.
GATE_REPORT_SCHEMA = "repro.qa/gate_report/1"

#: Every schema identifier the project emits, by document kind.  The
#: ``stats`` entry is the integer version folded into sweep-cache
#: digests (:data:`repro.sim.stats.STATS_SCHEMA_VERSION`); all others
#: are the string tags stamped into the documents themselves.
SCHEMA_REGISTRY: Dict[str, Any] = {
    "stats": STATS_SCHEMA_VERSION,
    "run_report": RUN_REPORT_SCHEMA,
    "sweep_metrics": SWEEP_METRICS_SCHEMA,
    "serve_metrics": SERVE_METRICS_SCHEMA,
    "oplog": OPLOG_SCHEMA,
    "fleet_metrics": FLEET_METRICS_SCHEMA,
    "intake_journal": INTAKE_JOURNAL_SCHEMA,
    "run_manifest": RUN_MANIFEST_SCHEMA,
    "gate_report": GATE_REPORT_SCHEMA,
}

#: One structured operational-log line (draft-07 JSON Schema).  The
#: event vocabulary is open — services add fields freely — but every
#: line must carry the schema tag, a wall-clock timestamp, the emitting
#: component and an event name, and correlation ids, when present, must
#: be strings (the grep-ability contract of trace propagation).
OPLOG_EVENT_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs structured operational-log line",
    "type": "object",
    "required": ["schema", "ts", "component", "event"],
    "properties": {
        "schema": {"const": OPLOG_SCHEMA},
        "ts": {"type": "number", "minimum": 0},
        "component": {"type": "string"},
        "event": {"type": "string"},
        "trace_id": {"type": "string"},
        "job_id": {"type": "string"},
        "digest": {"type": "string"},
        "status": {"type": "string"},
        "attempt": {"type": "integer", "minimum": 0},
        "batch": {"type": "integer", "minimum": 0},
        "queue_wait_ms": {"type": "number", "minimum": 0},
        "duration_ms": {"type": "number", "minimum": 0},
    },
}

#: One write-ahead intake-journal line (draft-07 JSON Schema).  The
#: journal is the fleet router's durability contract: an ``admit`` line
#: is fsync'd before the 202 leaves the building, a matching ``retire``
#: line closes it, and replay ignores everything else.  Lines are
#: strictly ordered by ``seq`` within one journal file.
INTAKE_JOURNAL_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.serve write-ahead intake-journal line",
    "type": "object",
    "required": ["schema", "op", "seq", "ts"],
    "properties": {
        "schema": {"const": INTAKE_JOURNAL_SCHEMA},
        "op": {"type": "string", "enum": ["admit", "retire"]},
        "seq": {"type": "integer", "minimum": 0},
        "ts": {"type": "number", "minimum": 0},
        "job_id": {"type": "string"},
        "shard": {"type": "integer", "minimum": 0},
        "job": {
            "type": "object",
            "required": ["id", "spec"],
            "properties": {
                "id": {"type": "string"},
                "spec": {"type": "object"},
                "trace_id": {"type": ["string", "null"]},
                "submitted_at": {"type": "number", "minimum": 0},
            },
        },
    },
    "oneOf": [
        {
            "properties": {"op": {"const": "admit"}},
            "required": ["job"],
        },
        {
            "properties": {"op": {"const": "retire"}},
            "required": ["job_id"],
        },
    ],
}

#: Chrome trace-event JSON object format (draft-07 JSON Schema).
TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "Chrome trace-event JSON object format (repro.obs subset)",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {"$ref": "#/definitions/event"},
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
    "definitions": {
        "event": {
            "type": "object",
            "required": ["ph", "pid", "name"],
            "properties": {
                "ph": {"type": "string", "enum": ["X", "i", "C", "M"]},
                "name": {"type": "string"},
                "cat": {"type": "string"},
                "pid": {"type": "integer", "minimum": 0},
                "tid": {"type": "integer", "minimum": 0},
                "ts": {"type": "number", "minimum": 0},
                "dur": {"type": "number", "minimum": 0},
                "s": {"type": "string", "enum": ["t", "p", "g"]},
                "args": {"type": "object"},
            },
            "oneOf": [
                {
                    "properties": {"ph": {"const": "X"}},
                    "required": ["ts", "dur", "tid"],
                },
                {
                    "properties": {"ph": {"const": "i"}},
                    "required": ["ts", "s"],
                },
                {
                    "properties": {"ph": {"const": "C"}},
                    "required": ["ts", "args"],
                },
                {
                    "properties": {"ph": {"const": "M"}},
                    "required": ["args"],
                },
            ],
        },
    },
}

#: ``repro.qa`` run manifest (draft-07 JSON Schema).
RUN_MANIFEST_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.qa run manifest",
    "type": "object",
    "required": [
        "schema", "kind", "label", "traces", "metrics", "artifacts",
    ],
    "properties": {
        "schema": {"const": RUN_MANIFEST_SCHEMA},
        "kind": {"type": "string"},
        "label": {"type": "string"},
        "engine": {"type": ["string", "null"]},
        "seed": {"type": ["integer", "null"]},
        "config_fingerprint": {"type": ["string", "null"]},
        "traces": {"type": "array", "items": {"type": "string"}},
        "metrics": {"type": "object"},
        "artifacts": {
            "type": "array",
            "items": {"$ref": "#/definitions/artifact"},
        },
        "environment": {"type": "object"},
        "fingerprint": {"type": "string"},
    },
    "definitions": {
        "artifact": {
            "type": "object",
            "required": ["path", "sha256", "bytes"],
            "properties": {
                "path": {"type": "string"},
                "sha256": {"type": "string"},
                "bytes": {"type": "integer", "minimum": 0},
            },
        },
    },
}

#: ``repro.qa`` gate verdict report (draft-07 JSON Schema).
GATE_REPORT_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.qa gate verdict report",
    "type": "object",
    "required": ["schema", "spec", "passed", "exit_code", "outcomes"],
    "properties": {
        "schema": {"const": GATE_REPORT_SCHEMA},
        "spec": {
            "type": "object",
            "required": ["name", "version"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
                "params": {"type": "object"},
            },
        },
        "passed": {"type": "boolean"},
        "exit_code": {"type": "integer", "minimum": 0},
        "counts": {"type": "object"},
        "candidate": {"type": ["object", "null"]},
        "baseline": {"type": ["object", "null"]},
        "outcomes": {
            "type": "array",
            "items": {"$ref": "#/definitions/outcome"},
        },
    },
    "definitions": {
        "outcome": {
            "type": "object",
            "required": ["id", "severity", "status"],
            "properties": {
                "id": {"type": "string"},
                "question": {"type": "string"},
                "check": {"type": "string"},
                "assertion": {"type": "string"},
                "severity": {
                    "type": "string",
                    "enum": ["info", "warn", "high", "critical"],
                },
                "declared_severity": {
                    "type": "string",
                    "enum": ["info", "warn", "high", "critical"],
                },
                "category": {"type": "string"},
                "status": {
                    "type": "string",
                    "enum": ["pass", "fail", "error", "skipped"],
                },
                "detail": {"type": "string"},
            },
        },
    },
}

#: Validatable document shapes: schema tag → draft-07 document.  Trace
#: events carry no tag (the Chrome format has none) and dispatch on
#: their ``traceEvents`` key instead — see :func:`schema_for_document`.
JSON_SCHEMAS: Dict[str, Dict[str, Any]] = {
    RUN_MANIFEST_SCHEMA: RUN_MANIFEST_JSON_SCHEMA,
    GATE_REPORT_SCHEMA: GATE_REPORT_JSON_SCHEMA,
    OPLOG_SCHEMA: OPLOG_EVENT_JSON_SCHEMA,
    INTAKE_JOURNAL_SCHEMA: INTAKE_JOURNAL_JSON_SCHEMA,
}


def schema_for_document(doc: Any) -> Optional[Dict[str, Any]]:
    """The JSON schema a loaded document should validate against.

    Dispatches on the document's ``schema`` tag (run manifests, gate
    reports) or its ``traceEvents`` key (Chrome trace-event documents);
    ``None`` when the shape is unknown to the registry.
    """
    if not isinstance(doc, dict):
        return None
    tagged = JSON_SCHEMAS.get(doc.get("schema"))
    if tagged is not None:
        return tagged
    if "traceEvents" in doc:
        return TRACE_EVENT_SCHEMA
    return None


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(instance: Any, expected: str) -> bool:
    if expected == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    if expected == "number":
        return (
            isinstance(instance, (int, float)) and not isinstance(instance, bool)
        )
    return isinstance(instance, _TYPES[expected])


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only local refs)")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(
    instance: Any,
    schema: Dict[str, Any],
    root: Optional[Dict[str, Any]] = None,
    path: str = "$",
) -> List[str]:
    """Validate ``instance`` against the supported JSON-Schema subset.

    Returns a list of human-readable error strings (empty = valid).
    """
    if root is None:
        root = schema
    if "$ref" in schema:
        return validate(instance, _resolve_ref(schema["$ref"], root), root, path)

    errors: List[str] = []
    expected_type = schema.get("type")
    if expected_type is not None:
        allowed = (
            expected_type if isinstance(expected_type, list) else [expected_type]
        )
        if not any(_check_type(instance, t) for t in allowed):
            return [
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            ]
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance!r} below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(
                    validate(instance[key], sub, root, f"{path}.{key}")
                )
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], root, f"{path}[{i}]")
            )
    if "oneOf" in schema:
        matches = 0
        branch_errors: List[str] = []
        for i, branch in enumerate(schema["oneOf"]):
            sub_errors = validate(instance, branch, root, f"{path}<oneOf:{i}>")
            if sub_errors:
                branch_errors.extend(sub_errors)
            else:
                matches += 1
        if matches != 1:
            errors.append(
                f"{path}: matched {matches} oneOf branches (need exactly 1)"
            )
            if matches == 0:
                errors.extend(branch_errors)
    return errors


def validate_trace_events(doc: Any) -> List[str]:
    """Errors of a trace-event document against the in-repo schema."""
    return validate(doc, TRACE_EVENT_SCHEMA)


def validate_document(doc: Any) -> List[str]:
    """Errors of any registered document shape (empty = valid).

    Dispatches through :func:`schema_for_document`; an unrecognised
    shape is itself an error — emitters must register their schema.
    """
    schema = schema_for_document(doc)
    if schema is None:
        return [
            "$: unrecognised document shape (no registered schema tag "
            "and no traceEvents key)"
        ]
    return validate(doc, schema)
