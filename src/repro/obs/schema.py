"""In-repo JSON-schema validation of exported trace-event documents.

:data:`TRACE_EVENT_SCHEMA` encodes the Chrome trace-event JSON object
format (the subset the exporter emits) as a standard JSON-Schema
document, and :func:`validate` is a small, dependency-free validator for
the keyword subset the schema uses (``type``, ``required``,
``properties``, ``items``, ``enum``, ``const``, ``minimum``, ``oneOf``,
``$ref`` into ``definitions``).  CI runs this check against the trace
produced by ``cohort simulate --trace-out`` (see
``python -m repro.obs.validate``); the schema itself stays loadable by
any off-the-shelf draft-07 validator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Chrome trace-event JSON object format (draft-07 JSON Schema).
TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "Chrome trace-event JSON object format (repro.obs subset)",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {"$ref": "#/definitions/event"},
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
    "definitions": {
        "event": {
            "type": "object",
            "required": ["ph", "pid", "name"],
            "properties": {
                "ph": {"type": "string", "enum": ["X", "i", "C", "M"]},
                "name": {"type": "string"},
                "cat": {"type": "string"},
                "pid": {"type": "integer", "minimum": 0},
                "tid": {"type": "integer", "minimum": 0},
                "ts": {"type": "number", "minimum": 0},
                "dur": {"type": "number", "minimum": 0},
                "s": {"type": "string", "enum": ["t", "p", "g"]},
                "args": {"type": "object"},
            },
            "oneOf": [
                {
                    "properties": {"ph": {"const": "X"}},
                    "required": ["ts", "dur", "tid"],
                },
                {
                    "properties": {"ph": {"const": "i"}},
                    "required": ["ts", "s"],
                },
                {
                    "properties": {"ph": {"const": "C"}},
                    "required": ["ts", "args"],
                },
                {
                    "properties": {"ph": {"const": "M"}},
                    "required": ["args"],
                },
            ],
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(instance: Any, expected: str) -> bool:
    if expected == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    if expected == "number":
        return (
            isinstance(instance, (int, float)) and not isinstance(instance, bool)
        )
    return isinstance(instance, _TYPES[expected])


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only local refs)")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(
    instance: Any,
    schema: Dict[str, Any],
    root: Optional[Dict[str, Any]] = None,
    path: str = "$",
) -> List[str]:
    """Validate ``instance`` against the supported JSON-Schema subset.

    Returns a list of human-readable error strings (empty = valid).
    """
    if root is None:
        root = schema
    if "$ref" in schema:
        return validate(instance, _resolve_ref(schema["$ref"], root), root, path)

    errors: List[str] = []
    expected_type = schema.get("type")
    if expected_type is not None:
        allowed = (
            expected_type if isinstance(expected_type, list) else [expected_type]
        )
        if not any(_check_type(instance, t) for t in allowed):
            return [
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            ]
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance!r} below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(
                    validate(instance[key], sub, root, f"{path}.{key}")
                )
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], root, f"{path}[{i}]")
            )
    if "oneOf" in schema:
        matches = 0
        branch_errors: List[str] = []
        for i, branch in enumerate(schema["oneOf"]):
            sub_errors = validate(instance, branch, root, f"{path}<oneOf:{i}>")
            if sub_errors:
                branch_errors.extend(sub_errors)
            else:
                matches += 1
        if matches != 1:
            errors.append(
                f"{path}: matched {matches} oneOf branches (need exactly 1)"
            )
            if matches == 0:
                errors.extend(branch_errors)
    return errors


def validate_trace_events(doc: Any) -> List[str]:
    """Errors of a trace-event document against the in-repo schema."""
    return validate(doc, TRACE_EVENT_SCHEMA)
