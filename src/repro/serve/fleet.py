"""Self-healing sharded serving: a supervised fleet of ``cohort serve``.

``cohort fleet`` scales the single-process serving layer out to N
*shard* subprocesses — each one a full ``cohort serve`` (a
:class:`~repro.serve.service.BatchingService` over its own
:class:`~repro.runner.SweepRunner`) on its own port, all sharing one
hardened on-disk result cache — and puts a supervising router in front:

* **Routing** — jobs are routed to shards by consistent hash of the
  job's content key (:meth:`JobSpec.spec_key`), so repeated
  submissions of the same spec land on the same shard and its warm
  in-process memo, while the shared cache directory backstops every
  shard with cross-shard warm replication.
* **Durability** — every accepted job is appended to a per-shard
  write-ahead intake journal (schema-versioned JSONL,
  :data:`repro.obs.schema.INTAKE_JOURNAL_SCHEMA`) and ``fsync``'d
  *before* the 202 is sent; the entry is retired when the job finishes
  and the file is truncated once no live entries remain.  An accepted
  202 is never lost: a crashed shard's unfinished jobs are replayed
  from its journal, and a crashed supervisor replays every journal on
  cold start.
* **Supervision** — each shard is health-checked over ``/healthz``
  with a heartbeat deadline.  A crashed (``SIGKILL``), hung
  (``SIGSTOP``), or flapping shard is declared down, its circuit
  breaker opens (new traffic fails over to live shards via the ring),
  its unfinished jobs are replayed, and the supervisor restarts it
  with capped exponential backoff — re-closing the breaker only after
  the replacement answers health checks.

Everything is asyncio + stdlib, single event-loop-thread state like
:class:`BatchingService`.  Journal fsyncs run on an executor thread so
a slow disk never stalls the event loop; because that makes ``submit``
yield mid-admission, admission slots are reserved atomically *before*
the first await (see :meth:`ShardSupervisor.submit`).  See
``docs/serving.md`` for the architecture and ``docs/resilience.md``
for the failure-mode map.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import hashlib

from repro.obs.ops import OpLogger
from repro.obs.schema import FLEET_METRICS_SCHEMA, INTAKE_JOURNAL_SCHEMA
from repro.serve.server import JsonHttpApp, _write_json_atomic, poll_jobs_route
from repro.serve.service import (
    DrainingError,
    JobSpec,
    JobSpecError,
    QueueFullError,
)

__all__ = [
    "CircuitBreaker",
    "FleetApp",
    "FleetThread",
    "HashRing",
    "ShardSupervisor",
    "WriteAheadJournal",
    "run_fleet",
]


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (best-effort; bound then released)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


class ShardUnreachableError(ConnectionError):
    """A shard did not answer an HTTP request (down, hung, or refusing)."""


async def _http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    doc: Optional[Any] = None,
    timeout: float = 5.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Any]:
    """One JSON-over-HTTP request on the event loop; ``(status, doc)``.

    Anything that smells like an unreachable peer — refused/reset
    connections, timeouts, a torn response — raises
    :class:`ShardUnreachableError` so callers have a single failure
    signal to feed the circuit breaker.
    """

    async def _talk() -> Tuple[int, Any]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b"" if doc is None else json.dumps(doc).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Connection: close\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
            if body:
                head += "Content-Type: application/json\r\n"
            for key, value in (headers or {}).items():
                head += f"{key}: {value}\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1", "replace").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ShardUnreachableError("malformed status line")
            status = int(parts[1])
            length: Optional[int] = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = (
                    line.decode("latin-1", "replace").partition(":")
                )
                if key.strip().lower() == "content-length":
                    try:
                        length = int(value)
                    except ValueError:
                        raise ShardUnreachableError("bad content-length")
            payload = (
                await reader.readexactly(length)
                if length
                else await reader.read()
            )
            parsed = json.loads(payload) if payload else None
            return status, parsed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    try:
        return await asyncio.wait_for(_talk(), timeout)
    except ShardUnreachableError:
        raise
    except (
        OSError,
        asyncio.TimeoutError,
        asyncio.IncompleteReadError,
        ValueError,
    ) as exc:
        raise ShardUnreachableError(
            f"{method} {path} on {host}:{port}: {type(exc).__name__}: {exc}"
        ) from exc


# -- write-ahead intake journal ---------------------------------------------


class WriteAheadJournal:
    """Per-shard durability log for accepted-but-unfinished jobs.

    Append-only JSONL, one schema-tagged record per line
    (:data:`INTAKE_JOURNAL_SCHEMA`): ``admit`` lines carry the full job
    document and are flushed + ``fsync``'d before :meth:`admit`
    returns — the caller only sends its 202 after that — and ``retire``
    lines close them.  When the last live entry retires the file is
    truncated to zero, so the journal's steady-state size is the
    in-flight window, not the service's lifetime.

    Loading an existing file (supervisor cold start, or a shard-down
    replay) tolerates a torn final line: a line that does not parse was
    never fully written, which means its ``admit`` never produced a 202
    — dropping it loses nothing a client was promised.

    Thread-safe: the supervisor runs admits on an executor thread (the
    fsync must not stall the event loop under submission load) while
    retires and replay sweeps run on the loop thread, so every mutation
    and every read of the live set takes the internal lock.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.admits = 0
        self.retires = 0
        self.truncations = 0
        self.torn_lines = 0
        self._seq = 0
        self._live: Dict[str, Dict[str, Any]] = {}
        self._fh: Optional[Any] = None
        self._lock = threading.Lock()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._recover()

    def _recover(self) -> None:
        """Rebuild the live set from an existing journal file."""
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.torn_lines += 1
                continue
            if not isinstance(record, dict):
                self.torn_lines += 1
                continue
            self._seq = max(self._seq, int(record.get("seq", 0)) + 1)
            op = record.get("op")
            if op == "admit" and isinstance(record.get("job"), dict):
                job = record["job"]
                if isinstance(job.get("id"), str):
                    self._live[job["id"]] = job
            elif op == "retire" and isinstance(record.get("job_id"), str):
                self._live.pop(record["job_id"], None)

    def _sink(self):
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def _append(self, record: Dict[str, Any]) -> None:
        fh = self._sink()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def admit(self, job: Dict[str, Any], shard: int) -> int:
        """Durably record one accepted job; returns its sequence number.

        ``job`` must carry at least ``id`` and ``spec`` (the wire-format
        spec document).  The record is on disk — fsync'd — when this
        returns, which is the precondition for sending the 202.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._append(
                {
                    "schema": INTAKE_JOURNAL_SCHEMA,
                    "op": "admit",
                    "seq": seq,
                    "ts": time.time(),
                    "shard": shard,
                    "job": job,
                }
            )
            self._live[job["id"]] = job
            self.admits += 1
            return seq

    def retire(self, job_id: str) -> bool:
        """Close one admitted entry; truncate when none remain live."""
        with self._lock:
            if job_id not in self._live:
                return False
            seq = self._seq
            self._seq += 1
            self._append(
                {
                    "schema": INTAKE_JOURNAL_SCHEMA,
                    "op": "retire",
                    "seq": seq,
                    "ts": time.time(),
                    "job_id": job_id,
                }
            )
            del self._live[job_id]
            self.retires += 1
            if not self._live:
                fh = self._sink()
                fh.seek(0)
                fh.truncate()
                fh.flush()
                os.fsync(fh.fileno())
                self.truncations += 1
                self._seq = 0
            return True

    @property
    def live_count(self) -> int:
        return len(self._live)

    def live_jobs(self) -> List[Dict[str, Any]]:
        """Unretired job documents, in admission order."""
        with self._lock:
            return list(self._live.values())

    def counters(self) -> Dict[str, Any]:
        """Journal health counters for /metrics and the oplog."""
        with self._lock:
            return {
                "path": self.path,
                "live": self.live_count,
                "admits": self.admits,
                "retires": self.retires,
                "truncations": self.truncations,
                "torn_lines": self.torn_lines,
            }

    def close(self) -> None:
        """Close the append handle (the file itself is kept)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# -- consistent-hash ring ----------------------------------------------------


class HashRing:
    """Consistent hashing of job keys onto shard indices.

    ``vnodes`` virtual nodes per shard smooth the distribution; a key's
    owner is the first virtual node clockwise from the key's hash whose
    shard is in the allowed set, so removing a dead shard only moves
    *its* keys — every other key keeps its (cache-warm) owner.
    """

    def __init__(self, shard_ids: Sequence[int], vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        self.shard_ids = list(shard_ids)
        self.vnodes = vnodes
        self._ring: List[Tuple[int, int]] = []
        for shard in self.shard_ids:
            for vnode in range(vnodes):
                point = self._hash(f"shard-{shard}#{vnode}")
                self._ring.append((point, shard))
        self._ring.sort()

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode()).digest()[:8], "big"
        )

    def assign(
        self, key: str, allowed: Optional[Set[int]] = None
    ) -> Optional[int]:
        """The shard owning ``key`` among ``allowed`` (None = all)."""
        candidates = (
            set(self.shard_ids) if allowed is None else allowed
        )
        if not candidates:
            return None
        point = self._hash(key)
        start = 0
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        start = lo
        for offset in range(len(self._ring)):
            _, shard = self._ring[(start + offset) % len(self._ring)]
            if shard in candidates:
                return shard
        return None


# -- circuit breaker ---------------------------------------------------------


class CircuitBreaker:
    """Per-shard circuit breaker: ``closed`` → ``open`` → ``half_open``.

    ``record_failure`` trips the breaker after ``threshold`` consecutive
    failures (or immediately via :meth:`trip`); while open, :meth:`allows`
    refuses until ``cooldown`` seconds have passed, then lets exactly one
    probe through (``half_open``).  A success in half-open closes the
    breaker; a failure re-opens it with doubled (capped) cooldown.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        max_cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.base_cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.open_count = 0
        self._cooldown = cooldown

    @property
    def cooldown(self) -> float:
        return self._cooldown

    def record_success(self) -> None:
        """A request (or half-open probe) succeeded: close and reset."""
        self.failures = 0
        self.state = "closed"
        self._cooldown = self.base_cooldown

    def record_failure(self) -> None:
        """Count a failure; trip at the threshold or on a failed probe."""
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self.trip()

    def trip(self) -> None:
        """Open immediately (e.g. the supervisor watched the shard die)."""
        if self.state != "open":
            self.open_count += 1
        previous = self._cooldown if self.state != "closed" else 0.0
        self.state = "open"
        self.opened_at = self.clock()
        if previous:
            self._cooldown = min(previous * 2, self.max_cooldown)

    def allows(self) -> bool:
        """Whether a request may be sent through right now."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at >= self._cooldown:
                self.state = "half_open"
                return True
            return False
        return True  # half_open: one probe at a time is the caller's job


# -- shard + job state -------------------------------------------------------


@dataclass
class FleetJob:
    """Lifecycle of one fleet-accepted job.

    ``queued`` (journaled, awaiting dispatch) → ``dispatched`` (accepted
    by a shard, remote id known) → ``done``/``failed``.  A shard death
    resets ``dispatched`` jobs back to ``queued`` (the journal entry is
    still live) and may reassign ``shard``.
    """

    id: str
    spec: JobSpec
    shard: int
    trace_id: Optional[str] = None
    status: str = "queued"
    remote_id: Optional[str] = None
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: Monotonic twins of the wall-clock stamps above: the ``*_at``
    #: fields are journal/display values, while ``duration_ms`` (and any
    #: other elapsed-time math) derives from these so an NTP step cannot
    #: corrupt it.
    submitted_mono: float = 0.0
    finished_mono: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    digest: Optional[str] = None
    attempts: int = 0
    failovers: int = 0

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """The job record served by ``GET /jobs/<id>``."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "spec_key": self.spec.spec_key(),
            "shard": self.shard,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "digest": self.digest,
            "error": self.error,
            "trace_id": self.trace_id,
            "attempts": self.attempts,
            "failovers": self.failovers,
        }
        if include_result:
            doc["result"] = self.result
        return doc


@dataclass
class ShardState:
    """Everything the supervisor knows about one shard."""

    index: int
    port: int = 0
    proc: Optional[subprocess.Popen] = None
    state: str = "starting"  # starting | up | down | backoff
    restarts: int = 0
    consecutive_restarts: int = 0
    #: Monotonic time of the last successful health probe; ``None``
    #: means "never healthy" — distinct from a legitimate monotonic
    #: reading of ``0.0``, so never test this by truthiness.
    last_healthy: Optional[float] = None
    up_since: float = 0.0
    down_since: float = 0.0
    routed: int = 0
    completed: int = 0
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    journal: Optional[WriteAheadJournal] = None
    log_path: str = ""
    restart_task: Optional["asyncio.Task"] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def proc_alive(self) -> bool:
        """True while the shard subprocess exists and has not exited."""
        return self.proc is not None and self.proc.poll() is None


# -- the supervisor ----------------------------------------------------------


class ShardSupervisor:
    """Spawns, routes to, health-checks, and heals a shard fleet.

    All public methods must be called from the event loop thread (the
    HTTP handlers, dispatchers and the health monitor share one loop).
    Shards are real ``cohort serve`` subprocesses sharing one cache
    directory; the supervisor is the only writer of the per-shard
    intake journals.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        host: str = "127.0.0.1",
        fleet_dir: str = ".cohort_fleet",
        cache_dir: Optional[str] = None,
        shard_jobs: int = 1,
        max_batch: int = 8,
        batch_window: float = 0.05,
        shard_queue_limit: int = 64,
        engine: str = "lockstep",
        job_timeout: Optional[float] = None,
        cache_budget_bytes: int = 0,
        admission_limit: int = 256,
        retry_after: float = 0.5,
        health_interval: float = 0.25,
        heartbeat_timeout: float = 1.0,
        heartbeat_deadline: float = 3.0,
        restart_backoff_base: float = 0.25,
        restart_backoff_max: float = 5.0,
        stability_window: float = 10.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        spawn_timeout: float = 60.0,
        request_timeout: float = 30.0,
        label: str = "fleet",
        oplog: Optional[OpLogger] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if admission_limit < 1:
            raise ValueError("admission_limit must be >= 1")
        self.host = host
        self.fleet_dir = fleet_dir
        self.cache_dir = (
            cache_dir
            if cache_dir is not None
            else os.path.join(fleet_dir, "cache")
        )
        self.shard_jobs = shard_jobs
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.shard_queue_limit = shard_queue_limit
        self.engine = engine
        self.job_timeout = job_timeout
        self.cache_budget_bytes = cache_budget_bytes
        self.admission_limit = admission_limit
        self.retry_after = retry_after
        self.health_interval = health_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_deadline = heartbeat_deadline
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_max = restart_backoff_max
        self.stability_window = stability_window
        self.spawn_timeout = spawn_timeout
        self.request_timeout = request_timeout
        self.label = label
        self.oplog = oplog if oplog is not None else OpLogger(
            component="fleet"
        )
        os.makedirs(self.fleet_dir, exist_ok=True)
        self.shards: List[ShardState] = []
        for index in range(shards):
            shard = ShardState(
                index=index,
                breaker=CircuitBreaker(
                    threshold=breaker_threshold, cooldown=breaker_cooldown
                ),
                journal=WriteAheadJournal(
                    os.path.join(self.fleet_dir, f"shard-{index}.journal.jsonl")
                ),
                log_path=os.path.join(self.fleet_dir, f"shard-{index}.log"),
            )
            self.shards.append(shard)
        self.ring = HashRing([s.index for s in self.shards])
        self._jobs: Dict[str, FleetJob] = {}
        self._queues: Dict[int, List[FleetJob]] = {
            s.index: [] for s in self.shards
        }
        self._wakeups: Dict[int, asyncio.Event] = {}
        self._tasks: List[asyncio.Task] = []
        self._draining = False
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        # Admission accounting.  ``_pending`` counts jobs in "queued"/
        # "dispatched" status; ``_reserved`` counts admission slots held
        # by in-flight ``submit`` calls that have passed the limit check
        # but not yet registered their records (journal fsyncs happen
        # off-loop, so submit yields between check and append).  The
        # limit check reads both, making check-and-reserve atomic.
        self._pending = 0
        self._reserved = 0
        # Fleet-level counters surfaced through /metrics.
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.failovers = 0
        self.replayed_jobs = 0
        self.restarts_total = 0
        self.recovery_seconds: List[float] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def shards_up(self) -> int:
        return sum(1 for s in self.shards if s.state == "up")

    async def start(self) -> None:
        """Cold-start: replay journals, spawn shards, start the loops."""
        self._replay_cold_start()
        self._wakeups = {s.index: asyncio.Event() for s in self.shards}
        self.oplog.emit(
            "fleet_start", shards=len(self.shards),
            cache_dir=self.cache_dir, fleet_dir=self.fleet_dir,
        )
        await asyncio.gather(
            *(self._start_shard(shard) for shard in self.shards)
        )
        loop = asyncio.get_running_loop()
        for shard in self.shards:
            self._tasks.append(
                loop.create_task(self._dispatch_loop(shard))
            )
        self._tasks.append(loop.create_task(self._health_loop()))

    def _replay_cold_start(self) -> None:
        """Re-register accepted-but-unfinished jobs left in journals.

        A previous supervisor crash (or hard kill) leaves live entries
        behind; every one of them was 202-acknowledged, so each becomes
        a queued :class:`FleetJob` again — same id, same trace context.
        """
        for shard in self.shards:
            assert shard.journal is not None
            for doc in shard.journal.live_jobs():
                try:
                    spec = JobSpec.from_dict(doc.get("spec"))
                except JobSpecError as exc:
                    self.oplog.emit(
                        "journal_skip", shard=shard.index,
                        job_id=doc.get("id"), reason=str(exc),
                    )
                    continue
                record = FleetJob(
                    id=doc["id"],
                    spec=spec,
                    shard=shard.index,
                    trace_id=doc.get("trace_id"),
                    submitted_at=doc.get("submitted_at", time.time()),
                    submitted_mono=time.monotonic(),
                )
                self._jobs[record.id] = record
                self._queues[shard.index].append(record)
                self._pending += 1
                self.replayed_jobs += 1
                self.oplog.emit(
                    "journal_replay", shard=shard.index, job_id=record.id,
                    trace_id=record.trace_id, phase="cold_start",
                )

    async def drain(self) -> None:
        """Refuse new work, finish accepted jobs, stop shards cleanly."""
        self._draining = True
        pending = self._pending_count()
        self.oplog.emit("fleet_drain", pending=pending)
        self._wake_all()
        while self._pending_count():
            await asyncio.sleep(0.02)
        restart_tasks = [
            s.restart_task
            for s in self.shards
            if s.restart_task is not None and not s.restart_task.done()
        ]
        for task in self._tasks + restart_tasks:
            task.cancel()
        await asyncio.gather(
            *self._tasks, *restart_tasks, return_exceptions=True
        )
        self._tasks = []
        await asyncio.gather(
            *(self._stop_shard(shard) for shard in self.shards)
        )
        for shard in self.shards:
            assert shard.journal is not None
            shard.journal.close()
        self.oplog.emit("fleet_drained")

    async def _stop_shard(self, shard: ShardState) -> None:
        if shard.proc is None:
            return
        if shard.proc.poll() is None:
            shard.proc.terminate()
            try:
                await asyncio.wait_for(
                    asyncio.get_running_loop().run_in_executor(
                        None, shard.proc.wait
                    ),
                    timeout=15.0,
                )
            except asyncio.TimeoutError:
                shard.proc.kill()
                await asyncio.get_running_loop().run_in_executor(
                    None, shard.proc.wait
                )
        shard.state = "down"

    # -- shard process management --------------------------------------------

    def _spawn_command(self, shard: ShardState) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", self.host,
            "--port", str(shard.port),
            "--jobs", str(self.shard_jobs),
            "--max-batch", str(self.max_batch),
            "--batch-window", str(self.batch_window),
            "--queue-limit", str(self.shard_queue_limit),
            "--cache-dir", self.cache_dir,
            "--engine", self.engine,
            "--oplog",
            os.path.join(self.fleet_dir, f"shard-{shard.index}.oplog.jsonl"),
        ]
        if self.cache_budget_bytes:
            cmd += ["--cache-budget", str(self.cache_budget_bytes)]
        if self.job_timeout:
            cmd += ["--job-timeout", str(self.job_timeout)]
        return cmd

    def _spawn(self, shard: ShardState) -> None:
        shard.port = free_port(self.host)
        env = dict(os.environ)
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(src_dir)  # .../src
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        log = open(shard.log_path, "ab")
        try:
            shard.proc = subprocess.Popen(
                self._spawn_command(shard),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,
            )
        finally:
            log.close()
        self.oplog.emit(
            "shard_spawn", shard=shard.index, port=shard.port,
            pid=shard.proc.pid, restarts=shard.restarts,
        )

    async def _start_shard(self, shard: ShardState) -> None:
        """Spawn one shard and wait until it answers health checks."""
        shard.state = "starting"
        self._spawn(shard)
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if not shard.proc_alive():
                # The child died before listening (port race, crash on
                # boot): respawn on a fresh port and keep waiting.
                await asyncio.sleep(0.2)
                if not shard.proc_alive():
                    self.oplog.emit(
                        "shard_boot_failed", shard=shard.index,
                        returncode=shard.proc.returncode
                        if shard.proc else None,
                    )
                    self._spawn(shard)
                    continue
            try:
                status, doc = await _http_json(
                    self.host, shard.port, "GET", "/healthz",
                    timeout=self.heartbeat_timeout,
                )
            except ShardUnreachableError:
                await asyncio.sleep(0.1)
                continue
            if status == 200 and isinstance(doc, dict):
                now = time.monotonic()
                shard.state = "up"
                shard.last_healthy = now
                shard.up_since = now
                shard.breaker.record_success()
                if shard.down_since:
                    recovered = now - shard.down_since
                    self.recovery_seconds.append(recovered)
                    shard.down_since = 0.0
                    self.oplog.emit(
                        "shard_up", shard=shard.index, port=shard.port,
                        pid=shard.pid, recovery_s=round(recovered, 3),
                    )
                else:
                    self.oplog.emit(
                        "shard_up", shard=shard.index, port=shard.port,
                        pid=shard.pid,
                    )
                self._wakeups[shard.index].set()
                return
            await asyncio.sleep(0.1)
        if shard.proc is not None and shard.proc.poll() is None:
            # A half-booted child must not outlive the attempt, or the
            # next respawn would leak a second process on the machine.
            try:
                shard.proc.kill()
            except OSError:
                pass
        raise RuntimeError(
            f"shard {shard.index} did not become healthy within "
            f"{self.spawn_timeout}s (see {shard.log_path})"
        )

    def _on_shard_down(self, shard: ShardState, reason: str) -> None:
        """Fault path: open the breaker, replay the journal, failover."""
        if shard.state == "down" or shard.state == "backoff":
            return
        shard.state = "down"
        shard.down_since = time.monotonic()
        shard.breaker.trip()
        self.oplog.emit(
            "shard_down", shard=shard.index, reason=reason, pid=shard.pid,
            restarts=shard.restarts,
        )
        if shard.proc is not None and shard.proc.poll() is None:
            # A hung (e.g. SIGSTOP'd) process must die before a healthy
            # replacement can take its place.
            try:
                shard.proc.kill()
            except OSError:
                pass
        # Replay the shard's accepted-but-unfinished jobs.  The journal
        # is the source of truth for what was 202-acknowledged, but a
        # job that failed over *to* this shard keeps its admit record
        # in the admitting shard's journal — so the sweep is the union
        # of this journal's live entries and every in-memory job this
        # shard currently owns.
        assert shard.journal is not None
        live_ids = [doc["id"] for doc in shard.journal.live_jobs()]
        seen = set(live_ids)
        for job_id, job in self._jobs.items():
            if job_id not in seen and job.shard == shard.index:
                live_ids.append(job_id)
        alive = {
            s.index
            for s in self.shards
            if s.index != shard.index and s.state == "up"
        }
        requeued = 0
        for job_id in live_ids:
            record = self._jobs.get(job_id)
            if record is None or record.status in ("done", "failed"):
                continue
            if record.shard != shard.index:
                # Admitted here but failed over to another shard, whose
                # queue and dispatch loop own it now — resetting it
                # would re-execute a job healthily in flight elsewhere.
                continue
            record.status = "queued"
            record.remote_id = None
            requeued += 1
            target = shard.index
            if alive:
                assigned = self.ring.assign(record.spec.spec_key(), alive)
                if assigned is not None:
                    target = assigned
            if target != record.shard:
                record.failovers += 1
                self.failovers += 1
                self.oplog.emit(
                    "failover", job_id=record.id, trace_id=record.trace_id,
                    from_shard=record.shard, to_shard=target,
                )
                record.shard = target
            if record not in self._queues[target]:
                self._queues[target].append(record)
            self.replayed_jobs += 1
            self.oplog.emit(
                "journal_replay", shard=shard.index, job_id=record.id,
                trace_id=record.trace_id, phase="shard_down",
                to_shard=record.shard,
            )
        if requeued:
            self._wake_all()

    async def _restart_shard(self, shard: ShardState) -> None:
        """Backoff, respawn, and wait healthy (capped exponential)."""
        shard.state = "backoff"
        shard.consecutive_restarts += 1
        backoff = min(
            self.restart_backoff_base * (2 ** (shard.consecutive_restarts - 1)),
            self.restart_backoff_max,
        )
        self.oplog.emit(
            "shard_restart", shard=shard.index,
            attempt=shard.consecutive_restarts, backoff_s=round(backoff, 3),
        )
        await asyncio.sleep(backoff)
        shard.restarts += 1
        self.restarts_total += 1
        await self._start_shard(shard)

    # -- health monitoring ---------------------------------------------------

    async def _health_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            for shard in self.shards:
                if shard.state == "up":
                    await self._probe(shard)
                elif shard.state == "down" and (
                    shard.restart_task is None
                    or shard.restart_task.done()
                ):
                    # One guarded task per shard — never two racing
                    # restarts of the same shard, and a slow boot never
                    # blocks probing (or restarting) the others.
                    shard.restart_task = loop.create_task(
                        self._restart_guarded(shard)
                    )
            await asyncio.sleep(self.health_interval)

    async def _restart_guarded(self, shard: ShardState) -> None:
        try:
            await self._restart_shard(shard)
        except RuntimeError:
            # Spawn window exhausted; next health tick tries again.
            shard.state = "down"

    async def _probe(self, shard: ShardState) -> None:
        now = time.monotonic()
        if not shard.proc_alive():
            self._on_shard_down(shard, "process exited")
            return
        try:
            status, doc = await _http_json(
                self.host, shard.port, "GET", "/healthz",
                timeout=self.heartbeat_timeout,
            )
            healthy = status == 200
        except ShardUnreachableError:
            healthy = False
        now = time.monotonic()
        if healthy:
            shard.last_healthy = now
            shard.breaker.record_success()
            if (
                shard.consecutive_restarts
                and now - shard.up_since >= self.stability_window
            ):
                # Stable long enough: a future crash starts the backoff
                # ladder from the bottom again (flap detection window).
                shard.consecutive_restarts = 0
            return
        if (
            shard.last_healthy is None
            or now - shard.last_healthy >= self.heartbeat_deadline
        ):
            self._on_shard_down(shard, "heartbeat deadline missed")

    # -- submission / routing ------------------------------------------------

    def _pending_count(self) -> int:
        # Maintained incrementally (submit/replay +1, _finish -1): the
        # old scan over every job ever admitted made each admission
        # check O(total jobs) — quadratic over a long soak.
        return self._pending

    def _route_key(self, key: str) -> int:
        """Pick the owning shard for a job key.

        Healthy shards with closed breakers are preferred; when none
        qualify (everything mid-restart) the full ring still assigns an
        owner — the job waits, journaled, for the shard's return.
        """
        preferred = {
            s.index
            for s in self.shards
            if s.state == "up" and s.breaker.state == "closed"
        }
        target = self.ring.assign(key, preferred or None)
        if target is None:
            target = self.ring.assign(key)
        assert target is not None
        return target

    async def submit(
        self, specs: Sequence[JobSpec], trace_id: Optional[str] = None
    ) -> List[FleetJob]:
        """Admit ``specs`` as one all-or-nothing submission.

        Each accepted job is journaled (fsync'd) before this returns;
        the HTTP layer's 202 therefore only ever describes durable
        admissions.  The fsyncs run on an executor thread so a slow
        disk never stalls the event loop — which means this coroutine
        yields between the admission-limit check and the record
        registrations.  The limit check is therefore check-AND-reserve:
        the whole batch's slots are claimed under ``_reserved`` before
        the first ``await``, so two concurrent oversize submissions can
        never both pass the check.
        """
        if self._draining:
            self.oplog.emit(
                "reject", trace_id=trace_id, reason="draining",
                jobs=len(specs),
            )
            raise DrainingError("fleet is draining; not accepting jobs")
        if not specs:
            raise JobSpecError("submission contains no jobs")
        pending = self._pending + self._reserved
        if pending + len(specs) > self.admission_limit:
            self.jobs_rejected += len(specs)
            self.oplog.emit(
                "reject", trace_id=trace_id, reason="queue_full",
                jobs=len(specs), pending=pending,
                retry_after=self.retry_after,
            )
            raise QueueFullError(
                f"fleet admission limit reached ({pending}/"
                f"{self.admission_limit} pending); retry after "
                f"{self.retry_after}s",
                retry_after=self.retry_after,
            )
        # Reserve every slot before the first await; the finally block
        # releases whatever was not converted into a registered record.
        self._reserved += len(specs)
        loop = asyncio.get_running_loop()
        now = time.time()
        records: List[FleetJob] = []
        try:
            for spec in specs:
                key = spec.spec_key()
                shard_id = self._route_key(key)
                record = FleetJob(
                    id=uuid.uuid4().hex[:12],
                    spec=spec,
                    shard=shard_id,
                    trace_id=trace_id,
                    submitted_at=now,
                    submitted_mono=time.monotonic(),
                )
                shard = self.shards[shard_id]
                assert shard.journal is not None
                await loop.run_in_executor(
                    None,
                    shard.journal.admit,
                    {
                        "id": record.id,
                        "spec": spec.to_dict(),
                        "trace_id": trace_id,
                        "submitted_at": now,
                    },
                    shard_id,
                )
                self._jobs[record.id] = record
                self._queues[shard_id].append(record)
                shard.routed += 1
                records.append(record)
                # Convert one reservation into a registered pending job.
                self._reserved -= 1
                self._pending += 1
                self.oplog.emit(
                    "admit", trace_id=trace_id, job_id=record.id,
                    shard=shard_id, spec_key=key,
                )
        finally:
            self._reserved -= len(specs) - len(records)
        self.jobs_submitted += len(records)
        self._wake_all()
        return records

    def get(self, job_id: str) -> Optional[FleetJob]:
        """Look up a job by router-assigned id (``None`` if unknown)."""
        return self._jobs.get(job_id)

    def _wake_all(self) -> None:
        for event in self._wakeups.values():
            event.set()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self, shard: ShardState) -> None:
        """Forward this shard's queued jobs and chase their results."""
        wakeup = self._wakeups[shard.index]
        while True:
            chunk = self._take_chunk(shard.index)
            if not chunk:
                if self._draining and not self._queues[shard.index]:
                    if not self._pending_count():
                        return
                wakeup.clear()
                try:
                    await asyncio.wait_for(wakeup.wait(), 0.2)
                except asyncio.TimeoutError:
                    pass
                continue
            if shard.state != "up" or not shard.breaker.allows():
                # Not routable right now: put the chunk back and let
                # the health loop / failover move things along.
                self._requeue(shard.index, chunk)
                await asyncio.sleep(0.1)
                continue
            await self._dispatch_chunk(shard, chunk)

    def _take_chunk(self, shard_id: int) -> List[FleetJob]:
        queue = self._queues[shard_id]
        chunk: List[FleetJob] = []
        remaining: List[FleetJob] = []
        for record in queue:
            if record.status == "queued" and record.shard == shard_id:
                if len(chunk) < self.max_batch:
                    chunk.append(record)
                else:
                    remaining.append(record)
            elif record.status in ("queued", "dispatched") and (
                record.shard != shard_id
            ):
                # Failover moved it; its new queue already holds it.
                continue
        self._queues[shard_id] = remaining
        return chunk

    def _requeue(self, shard_id: int, chunk: List[FleetJob]) -> None:
        front = [r for r in chunk if r.status == "queued"]
        self._queues[shard_id] = front + self._queues[shard_id]

    async def _dispatch_chunk(
        self, shard: ShardState, chunk: List[FleetJob]
    ) -> None:
        """Submit a chunk to one shard and poll it to completion."""
        for record in chunk:
            if record.status != "queued" or record.shard != shard.index:
                continue
            try:
                status, doc = await _http_json(
                    self.host, shard.port, "POST", "/jobs",
                    doc=record.spec.to_dict(),
                    timeout=self.request_timeout,
                    headers=(
                        {"X-Trace-Id": record.trace_id}
                        if record.trace_id else None
                    ),
                )
            except ShardUnreachableError:
                shard.breaker.record_failure()
                # _take_chunk removed every member from the queue: put
                # all still-queued ones back (not just this record),
                # then fall through so members already dispatched this
                # round are still collected.
                self._requeue(shard.index, chunk)
                break
            if status == 202 and isinstance(doc, dict) and doc.get("jobs"):
                record.remote_id = doc["jobs"][0]["id"]
                record.status = "dispatched"
                record.attempts += 1
                self.oplog.emit(
                    "dispatch", job_id=record.id, trace_id=record.trace_id,
                    shard=shard.index, remote_id=record.remote_id,
                )
            elif status in (429, 503):
                self._requeue(shard.index, chunk)
                await asyncio.sleep(self.retry_after)
                break
            else:
                detail = (
                    doc.get("error") if isinstance(doc, dict) else None
                )
                self._finish(
                    record,
                    error=f"shard {shard.index} refused job "
                          f"({status}): {detail or 'no detail'}",
                )
        await self._collect(shard, chunk)

    async def _collect(
        self, shard: ShardState, chunk: List[FleetJob]
    ) -> None:
        """Poll the shard until every dispatched job in ``chunk`` lands."""
        while True:
            waiting = [
                r for r in chunk
                if r.status == "dispatched" and r.shard == shard.index
            ]
            if not waiting:
                return
            if shard.state != "up":
                # The health loop declared the shard down; replay owns
                # these records now.
                return
            unreachable = False
            for record in waiting:
                try:
                    status, doc = await _http_json(
                        self.host, shard.port, "GET",
                        f"/jobs/{record.remote_id}",
                        timeout=self.request_timeout,
                    )
                except ShardUnreachableError:
                    # Transient while the shard is still marked up:
                    # keep polling — nothing else re-polls dispatched
                    # jobs, and if the shard really died the health
                    # loop flips its state and the check above hands
                    # the records to journal replay.
                    shard.breaker.record_failure()
                    unreachable = True
                    break
                if status != 200 or not isinstance(doc, dict):
                    # Unknown id after a silent shard restart: requeue.
                    record.status = "queued"
                    record.remote_id = None
                    self._queues[shard.index].append(record)
                    continue
                if doc.get("status") == "done":
                    record.digest = doc.get("digest")
                    self._finish(record, result=doc.get("result"))
                    shard.completed += 1
                elif doc.get("status") == "failed":
                    self._finish(
                        record,
                        error=doc.get("error") or "shard execution failed",
                    )
            await asyncio.sleep(
                self.health_interval if unreachable else 0.05
            )

    def _finish(
        self,
        record: FleetJob,
        result: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> None:
        if record.status in ("queued", "dispatched"):
            self._pending -= 1
        record.finished_at = time.time()
        record.finished_mono = time.monotonic()
        if error is None:
            record.status = "done"
            record.result = result
            self.jobs_completed += 1
        else:
            record.status = "failed"
            record.error = error
            self.jobs_failed += 1
        shard = self.shards[record.shard]
        assert shard.journal is not None
        # Retire from the journal that admitted the job — failover may
        # have moved execution elsewhere, so check the admitting journal
        # first, then the rest.
        if not shard.journal.retire(record.id):
            for other in self.shards:
                assert other.journal is not None
                if other.journal.retire(record.id):
                    break
        # Monotonic duration: immune to wall-clock (NTP) steps, so no
        # clamp is needed — a negative value here would be a real bug.
        self.oplog.emit(
            "retire", job_id=record.id, trace_id=record.trace_id,
            status=record.status, shard=record.shard,
            duration_ms=(record.finished_mono - record.submitted_mono) * 1000,
        )

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """The fleet ``/metrics`` snapshot (no shard round-trips)."""
        journal_live = 0
        journal_torn = 0
        shards_doc = []
        now = time.monotonic()
        for shard in self.shards:
            assert shard.journal is not None
            counters = shard.journal.counters()
            journal_live += counters["live"]
            journal_torn += counters["torn_lines"]
            shards_doc.append(
                {
                    "index": shard.index,
                    "port": shard.port,
                    "pid": shard.pid,
                    "state": shard.state,
                    "restarts": shard.restarts,
                    "consecutive_restarts": shard.consecutive_restarts,
                    "breaker": shard.breaker.state,
                    "routed": shard.routed,
                    "completed": shard.completed,
                    "queue_depth": len(self._queues[shard.index]),
                    # Explicit None test: a monotonic reading of 0.0 is
                    # a legitimate "healthy right now" timestamp.
                    "last_healthy_age_s": (
                        round(now - shard.last_healthy, 3)
                        if shard.last_healthy is not None else None
                    ),
                    "journal": counters,
                    "serve": None,
                }
            )
        recoveries = len(self.recovery_seconds)
        return {
            "schema": FLEET_METRICS_SCHEMA,
            "label": self.label,
            "uptime_seconds": time.monotonic() - self._started_mono,
            "fleet": {
                "shards_total": len(self.shards),
                "shards_up": self.shards_up,
                "draining": self._draining,
                "admission_pending": self._pending_count(),
                "admission_limit": self.admission_limit,
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_rejected": self.jobs_rejected,
                "failovers": self.failovers,
                "replayed_jobs": self.replayed_jobs,
                "restarts_total": self.restarts_total,
                "recoveries": recoveries,
                "recovery_seconds_max": (
                    max(self.recovery_seconds) if recoveries else 0.0
                ),
                "recovery_seconds_mean": (
                    sum(self.recovery_seconds) / recoveries
                    if recoveries else 0.0
                ),
                "journal_live": journal_live,
                "journal_torn_lines": journal_torn,
                "cache": {
                    "budget_bytes": self.cache_budget_bytes,
                },
            },
            "shards": shards_doc,
        }

    async def metrics_with_shards(self) -> Dict[str, Any]:
        """The snapshot plus each live shard's own ``/metrics`` document.

        Aggregates the shards' runner cache counters (evictions,
        quarantines, hits/misses, size) under ``fleet.cache`` so the
        hardened cache tier is observable from one scrape; an
        unreachable shard contributes nothing rather than failing the
        endpoint.
        """
        doc = self.metrics()
        totals = {
            "evictions": 0, "evicted_bytes": 0, "quarantined": 0,
            "hits": 0, "misses": 0, "size_bytes": 0,
        }
        for shard, shard_doc in zip(self.shards, doc["shards"]):
            if shard.state != "up":
                continue
            try:
                status, snapshot = await _http_json(
                    self.host, shard.port, "GET", "/metrics",
                    timeout=self.heartbeat_timeout,
                )
            except ShardUnreachableError:
                continue
            if status != 200 or not isinstance(snapshot, dict):
                continue
            shard_doc["serve"] = snapshot
            runner = snapshot.get("runner", {})
            totals["evictions"] += runner.get("cache_evictions", 0)
            totals["evicted_bytes"] += runner.get("cache_evicted_bytes", 0)
            totals["quarantined"] += runner.get("cache_quarantined", 0)
            totals["hits"] += runner.get("cache_hits", 0)
            totals["misses"] += runner.get("cache_misses", 0)
            totals["size_bytes"] = max(
                totals["size_bytes"], runner.get("cache_size_bytes", 0)
            )
        doc["fleet"]["cache"].update(totals)
        return doc


# -- HTTP front-end ----------------------------------------------------------


class FleetApp(JsonHttpApp):
    """Routes HTTP requests onto one :class:`ShardSupervisor`.

    Same wire contract as :class:`~repro.serve.server.ServeApp`
    (``/healthz``, ``/metrics`` with Prometheus negotiation,
    ``POST /jobs``, ``GET /jobs/<id>``) so :class:`ServeClient` and
    ``cohort submit`` work against a fleet unchanged.
    """

    def __init__(self, supervisor: ShardSupervisor) -> None:
        self.supervisor = supervisor

    async def _handle_request(self, reader):  # type: ignore[override]
        status, doc, extra = await super()._handle_request(reader)
        # /metrics aggregation needs awaits (shard round-trips), which
        # the sync _route cannot do; it marks the response instead.
        if doc == "__fleet_metrics__":
            from repro.obs.promexport import prometheus_from_fleet_metrics

            snapshot = await self.supervisor.metrics_with_shards()
            if extra.pop("__prometheus__", None):
                return (
                    200,
                    prometheus_from_fleet_metrics(snapshot),
                    {"Content-Type":
                     "text/plain; version=0.0.4; charset=utf-8"},
                )
            return 200, snapshot, {}
        return status, doc, extra

    def _route(
        self, method: str, target: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        headers = headers or {}
        path, _, query = target.partition("?")
        sup = self.supervisor
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            up = sup.shards_up
            total = len(sup.shards)
            status = (
                "draining" if sup.draining
                else "ok" if up == total
                else "degraded" if up else "down"
            )
            return (
                200,
                {
                    "status": status,
                    "shards_up": up,
                    "shards_total": total,
                    "pending": sup._pending_count(),
                },
                {},
            )
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            extra: Dict[str, str] = {}
            if self._wants_prometheus(query, headers):
                extra["__prometheus__"] = "1"
            return 200, "__fleet_metrics__", extra
        if path == "/jobs":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            from repro.obs.ops import new_trace_id, valid_trace_id

            supplied = headers.get("x-trace-id")
            trace_id = (
                supplied if valid_trace_id(supplied) else new_trace_id()
            )
            # Coroutine: awaited by JsonHttpApp._handle_request (the
            # supervisor's submit fsyncs journals off-loop).
            return self._submit(body, trace_id)
        if path == "/jobs/poll":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            return poll_jobs_route(sup.get, body)
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            record = sup.get(path[len("/jobs/"):])
            if record is None:
                return 404, {"error": "unknown job id"}, {}
            return 200, record.to_dict(include_result=True), {}
        return 404, {"error": f"no route for {path}"}, {}

    async def _submit(
        self, body: bytes, trace_id: str
    ) -> Tuple[int, Any, Dict[str, str]]:
        trace_headers = {"X-Trace-Id": trace_id}
        try:
            doc = json.loads(body or b"null")
        except ValueError:
            return (
                400,
                {"error": "request body is not valid JSON",
                 "trace_id": trace_id},
                trace_headers,
            )
        raw_specs = (
            doc.get("jobs")
            if isinstance(doc, dict) and "jobs" in doc
            else [doc]
        )
        if not isinstance(raw_specs, list):
            return (
                400,
                {"error": '"jobs" must be a list of job specs',
                 "trace_id": trace_id},
                trace_headers,
            )
        sup = self.supervisor
        try:
            specs = [JobSpec.from_dict(raw) for raw in raw_specs]
            records = await sup.submit(specs, trace_id=trace_id)
        except JobSpecError as exc:
            return (
                400,
                {"error": str(exc), "trace_id": trace_id},
                trace_headers,
            )
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after,
                 "trace_id": trace_id},
                {"Retry-After": f"{exc.retry_after}", **trace_headers},
            )
        except DrainingError as exc:
            return (
                503,
                {"error": str(exc), "retry_after": sup.retry_after,
                 "trace_id": trace_id},
                {"Retry-After": f"{sup.retry_after}", **trace_headers},
            )
        return (
            202,
            {
                "trace_id": trace_id,
                "jobs": [r.to_dict(include_result=False) for r in records],
            },
            trace_headers,
        )


async def run_fleet(
    supervisor: ShardSupervisor,
    host: str = "127.0.0.1",
    port: int = 8780,
    *,
    metrics_out: Optional[str] = None,
    install_signal_handlers: bool = True,
    stop: Optional[asyncio.Event] = None,
) -> int:
    """Serve the fleet router until SIGTERM/SIGINT, then drain.

    Mirrors :func:`repro.serve.server.run_server`: the listener stays
    open while draining so clients can poll, submissions are refused,
    shards drain and exit, and an optional final metrics snapshot is
    written atomically.  Returns the port actually bound.
    """
    app = FleetApp(supervisor)
    await supervisor.start()
    server = await asyncio.start_server(app.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    stop_event = stop if stop is not None else asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop_event.set)
    print(
        f"cohort fleet: router on http://{host}:{bound_port} "
        f"({len(supervisor.shards)} shards)",
        flush=True,
    )
    supervisor.oplog.emit(
        "fleet_listening", host=host, port=bound_port,
        shards=len(supervisor.shards),
    )
    await stop_event.wait()
    print("cohort fleet: draining", flush=True)
    await supervisor.drain()
    if metrics_out:
        _write_json_atomic(
            metrics_out, await supervisor.metrics_with_shards()
        )
        print(f"cohort fleet: metrics snapshot -> {metrics_out}", flush=True)
    server.close()
    await server.wait_closed()
    supervisor.oplog.emit("fleet_exit")
    supervisor.oplog.close()
    print("cohort fleet: drained, exiting", flush=True)
    return bound_port


class FleetThread:
    """An in-process fleet router for tests and the chaos soak.

    The supervisor (and its real shard subprocesses) runs on an event
    loop in a daemon thread; the caller talks to the router over real
    HTTP — and can reach ``.supervisor`` directly to find shard PIDs to
    kill.
    """

    def __init__(
        self, *, host: str = "127.0.0.1", **supervisor_kwargs: Any
    ) -> None:
        self.host = host
        self.supervisor_kwargs = supervisor_kwargs
        self.supervisor: Optional[ShardSupervisor] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("fleet not started")
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetThread":
        """Spawn the fleet loop; block until the router is listening."""
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise RuntimeError("fleet thread did not start in time")
        if self._error is not None:
            raise RuntimeError(f"fleet thread failed: {self._error!r}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.supervisor = ShardSupervisor(
            host=self.host, **self.supervisor_kwargs
        )
        app = FleetApp(self.supervisor)
        await self.supervisor.start()
        server = await asyncio.start_server(
            app.handle_connection, self.host, 0
        )
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.supervisor.drain()
        server.close()
        await server.wait_closed()

    def stop(self, timeout: float = 120.0) -> None:
        """Drain the fleet, stop the loop and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("fleet thread did not drain in time")
        if self._error is not None:
            raise RuntimeError(f"fleet thread failed: {self._error!r}")

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
