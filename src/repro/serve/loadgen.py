"""Open-loop load generation for ``cohort serve`` / ``cohort fleet``.

The capacity story needs a traffic source whose arrival process does
not bend to the server's behaviour: a *closed-loop* driver (submit,
wait, submit again) slows down exactly when the server does, hiding
the saturation knee it is supposed to find.  :class:`LoadGenerator` is
therefore **open-loop**:

* arrivals follow a Poisson process at a target req/s, pre-drawn from
  a seeded RNG (:func:`arrival_schedule`) so a run is reproducible;
* each arrival picks its job spec from a fixed *population*
  (:func:`theta_population` — distinct timer vectors over the
  lock-step θ-grid) with a seeded RNG, so the duplicate rate — and
  hence the cache-tier hit rate — is realistic and repeatable;
* the arrival clock never stops: a ``429`` is counted and the worker
  moves on immediately (no retry, no backoff sleep), an unreachable
  endpoint is an ``error``, and submissions that cannot fire on time
  because every worker is busy record their *launch lag* instead of
  silently re-shaping the arrival process;
* completions are chased by a single batched poller
  (``POST /jobs/poll``) so per-request end-to-end latency accounting
  costs O(pending / batch) round-trips, not O(pending).

Latency accounting uses :class:`repro.obs.LatencyHistogram` (log2
buckets over microseconds): constant memory at any request count, and
the bucket shape composes with the serve layer's own queue-wait
histograms when ``benchmarks/capacity_soak.py`` assembles its
manifest.  Everything here is stdlib + asyncio; the blocking
:class:`~repro.serve.client.ServeClient` is deliberately not reused —
one event loop drives hundreds of in-flight requests with a handful
of workers.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import LatencyHistogram
from repro.params import MSI_THETA
from repro.serve.fleet import ShardUnreachableError, _http_json
from repro.serve.service import JobSpec

__all__ = [
    "LoadGenerator",
    "LoadgenReport",
    "THETA_GRID",
    "arrival_schedule",
    "theta_population",
]

#: Per-core timer grid the spec population draws from — the same grid
#: the lock-step sweep benchmarks use (``benchmarks/bench_workloads.py``),
#: spanning tight deadlines to effectively-unbounded plus the MSI
#: baseline, so the mix exercises heterogeneous-coherence configs the
#: way the paper's evaluation does.
THETA_GRID: Tuple[int, ...] = (5, 17, 60, 200, 1000, MSI_THETA)

#: Default population seed (matches the lock-step benchmarks').
DEFAULT_POPULATION_SEED = 42


def arrival_schedule(
    rate: float, duration: float, seed: int = 0
) -> List[float]:
    """Poisson arrival offsets (seconds) in ``[0, duration)``.

    Inter-arrival gaps are exponential with mean ``1/rate``, drawn from
    ``random.Random(seed)`` — the schedule is fully determined by
    ``(rate, duration, seed)``, so a capacity run can be replayed.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0 req/s")
    if duration <= 0:
        raise ValueError("duration must be > 0 s")
    rng = random.Random(seed)
    offsets: List[float] = []
    t = rng.expovariate(rate)
    while t < duration:
        offsets.append(t)
        t += rng.expovariate(rate)
    return offsets


def theta_population(
    size: int = 32,
    *,
    benchmark: str = "fft",
    cores: int = 4,
    scale: float = 0.05,
    seed: int = DEFAULT_POPULATION_SEED,
    grid: Sequence[int] = THETA_GRID,
) -> List[JobSpec]:
    """``size`` *distinct* job specs over the per-core θ-grid.

    Each spec differs only in its timer vector, so the population maps
    onto ``size`` distinct cache keys; sampling arrivals uniformly from
    it yields a duplicate rate of ``1 - size/requests`` in expectation —
    the knob ``benchmarks/capacity_soak.py`` uses to exercise the warm
    cache tier at a realistic hit rate.
    """
    if size < 1:
        raise ValueError("population size must be >= 1")
    if size > len(grid) ** cores:
        raise ValueError(
            f"population size {size} exceeds the {len(grid)}^{cores} "
            "distinct timer vectors the grid supports"
        )
    rng = random.Random(seed)
    population: List[JobSpec] = []
    seen = set()
    while len(population) < size:
        thetas = tuple(rng.choice(list(grid)) for _ in range(cores))
        if thetas in seen:
            continue
        seen.add(thetas)
        population.append(
            JobSpec(benchmark=benchmark, thetas=thetas, scale=scale)
        )
    return population


@dataclass
class LoadgenReport:
    """Everything one :class:`LoadGenerator` run observed.

    Histograms are in microseconds; :meth:`to_dict` derives the
    millisecond quantiles the capacity gate consumes.  ``sustained_rps``
    divides completions by the *offered window* (``window_s``: first
    arrival to last submission, at least the schedule span) rather
    than ``duration_s`` (which also includes the drain tail) — so a
    server that needs a long drain to finish the backlog shows a
    large ``duration_s`` but is judged on the window it was loaded.
    """

    rate: float
    duration_s: float = 0.0
    window_s: float = 0.0
    offered: int = 0
    accepted: int = 0
    rejected_429: int = 0
    errors: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    pending_at_end: int = 0
    submit_us: LatencyHistogram = field(default_factory=LatencyHistogram)
    e2e_us: LatencyHistogram = field(default_factory=LatencyHistogram)
    launch_lag_us: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def offered_rps(self) -> float:
        return self.offered / self.window_s if self.window_s else 0.0

    @property
    def sustained_rps(self) -> float:
        return self.completed / self.window_s if self.window_s else 0.0

    @property
    def ratio_429(self) -> float:
        return self.rejected_429 / self.offered if self.offered else 0.0

    @staticmethod
    def _quantiles_ms(hist: LatencyHistogram) -> Dict[str, float]:
        return {
            "p50_ms": hist.percentile(0.50) / 1000.0,
            "p99_ms": hist.percentile(0.99) / 1000.0,
            "mean_ms": hist.mean / 1000.0,
            "max_ms": hist.max / 1000.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form: counts, rates, ms quantiles, histograms."""
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "window_s": self.window_s,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected_429": self.rejected_429,
            "errors": self.errors,
            "completed": self.completed,
            "failed": self.failed,
            "lost": self.lost,
            "pending_at_end": self.pending_at_end,
            "offered_rps": self.offered_rps,
            "sustained_rps": self.sustained_rps,
            "ratio_429": self.ratio_429,
            "submit": self._quantiles_ms(self.submit_us),
            "e2e": self._quantiles_ms(self.e2e_us),
            "launch_lag": self._quantiles_ms(self.launch_lag_us),
            "histograms_us": {
                "submit": self.submit_us.to_dict(),
                "e2e": self.e2e_us.to_dict(),
                "launch_lag": self.launch_lag_us.to_dict(),
            },
        }


class LoadGenerator:
    """Drive one serve/fleet endpoint open-loop at a target req/s.

    ``run()`` (or ``await arun()`` from an existing loop) fires the
    pre-drawn arrival schedule, sampling each arrival's spec from
    ``population``; ``workers`` submission coroutines consume arrivals
    from an internal queue so a slow endpoint delays *submissions*
    (visible as launch lag) but never the arrival clock.  After the
    last arrival the generator keeps polling for up to
    ``drain_timeout`` seconds; jobs still pending then are reported as
    ``pending_at_end`` (and subtracted from nobody — the capacity gate
    treats ``lost`` and ``failed`` separately).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        rate: float,
        duration: float,
        population: Sequence[JobSpec],
        seed: int = 0,
        workers: int = 16,
        request_timeout: float = 10.0,
        poll_interval: float = 0.05,
        poll_batch: int = 64,
        drain_timeout: float = 60.0,
        trace_id: Optional[str] = None,
    ) -> None:
        if not population:
            raise ValueError("population must not be empty")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.rate = rate
        self.duration = duration
        self.population = list(population)
        self.seed = seed
        self.workers = workers
        self.request_timeout = request_timeout
        self.poll_interval = poll_interval
        self.poll_batch = poll_batch
        self.drain_timeout = drain_timeout
        self.trace_id = trace_id
        # job_id -> arrival time (monotonic) for e2e accounting.
        self._inflight: Dict[str, float] = {}
        self._report = LoadgenReport(rate=rate)

    # -- public entry points -------------------------------------------------

    def run(self) -> LoadgenReport:
        """Blocking wrapper: run the generator on a fresh event loop."""
        return asyncio.run(self.arun())

    async def arun(self) -> LoadgenReport:
        """Run the generator on the current event loop; the report."""
        schedule = arrival_schedule(self.rate, self.duration, self.seed)
        rng = random.Random(self.seed + 1)
        arrivals: asyncio.Queue = asyncio.Queue()
        report = self._report
        report.offered = len(schedule)

        worker_tasks = [
            asyncio.ensure_future(self._worker(arrivals))
            for _ in range(self.workers)
        ]
        poller_task = asyncio.ensure_future(self._poller())

        t0 = time.monotonic()
        try:
            for offset in schedule:
                delay = t0 + offset - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                spec = rng.choice(self.population)
                # put_nowait: the arrival fires now whatever the
                # workers are doing — open-loop by construction.
                arrivals.put_nowait((t0 + offset, spec))
            await arrivals.join()
            # Offered window: everything up to the last submission
            # firing, excluding the drain tail below.
            report.window_s = max(
                time.monotonic() - t0,
                schedule[-1] if schedule else 0.0,
            )
            drain_deadline = time.monotonic() + self.drain_timeout
            while self._inflight and time.monotonic() < drain_deadline:
                await asyncio.sleep(self.poll_interval)
        finally:
            for task in worker_tasks:
                task.cancel()
            poller_task.cancel()
            await asyncio.gather(
                *worker_tasks, poller_task, return_exceptions=True
            )
        report.pending_at_end = len(self._inflight)
        report.duration_s = time.monotonic() - t0
        return report

    # -- internals -----------------------------------------------------------

    async def _worker(self, arrivals: asyncio.Queue) -> None:
        report = self._report
        headers = (
            {"X-Trace-Id": self.trace_id} if self.trace_id else None
        )
        while True:
            scheduled_mono, spec = await arrivals.get()
            try:
                fired = time.monotonic()
                report.launch_lag_us.add(
                    max(0, int((fired - scheduled_mono) * 1e6))
                )
                try:
                    status, doc = await _http_json(
                        self.host, self.port, "POST", "/jobs",
                        doc=spec.to_dict(),
                        timeout=self.request_timeout,
                        headers=headers,
                    )
                except (ShardUnreachableError, asyncio.TimeoutError):
                    report.errors += 1
                    continue
                report.submit_us.add(
                    max(0, int((time.monotonic() - fired) * 1e6))
                )
                if status == 202 and isinstance(doc, dict):
                    jobs = doc.get("jobs") or []
                    for job in jobs:
                        self._inflight[job["id"]] = scheduled_mono
                    report.accepted += len(jobs)
                elif status == 429:
                    # Backpressure: count it and move straight on to
                    # the next arrival — the clock never sleeps on it.
                    report.rejected_429 += 1
                else:
                    report.errors += 1
            finally:
                arrivals.task_done()

    async def _poller(self) -> None:
        """Chase completions with batched ``/jobs/poll`` requests."""
        report = self._report
        while True:
            await asyncio.sleep(self.poll_interval)
            pending = list(self._inflight)
            for start in range(0, len(pending), self.poll_batch):
                chunk = pending[start:start + self.poll_batch]
                try:
                    status, doc = await _http_json(
                        self.host, self.port, "POST", "/jobs/poll",
                        doc={"ids": chunk, "include_result": False},
                        timeout=self.request_timeout,
                    )
                except (ShardUnreachableError, asyncio.TimeoutError):
                    break
                if status != 200 or not isinstance(doc, dict):
                    break
                now = time.monotonic()
                for job_id, record in (doc.get("jobs") or {}).items():
                    state = record.get("status")
                    if state not in ("done", "failed"):
                        continue
                    arrived = self._inflight.pop(job_id, None)
                    if arrived is None:
                        continue
                    if state == "done":
                        report.completed += 1
                        report.e2e_us.add(
                            max(0, int((now - arrived) * 1e6))
                        )
                    else:
                        report.failed += 1
                for job_id in doc.get("unknown") or []:
                    # An accepted (202'd) id the server no longer
                    # knows: that is a lost job, the capacity gate's
                    # hardest failure.
                    if self._inflight.pop(job_id, None) is not None:
                        report.lost += 1
