"""The serving layer: a batched, backpressured simulation service.

``cohort serve`` turns the repository's :class:`~repro.runner.SweepRunner`
into a long-lived JSON-over-HTTP service: submissions from many clients
are coalesced into runner batches inside a micro-batching window, share
one on-disk result cache, and are admission-controlled by a bounded
queue with explicit backpressure.  See ``docs/serving.md``.

``cohort fleet`` (:mod:`repro.serve.fleet`) scales that out and makes it
self-healing: a :class:`ShardSupervisor` spawns N serve shards as
subprocesses, routes jobs by consistent hash of their content key,
write-ahead-journals every accepted job before acknowledging it, and
restarts crashed or hung shards with capped exponential backoff while
the survivors absorb the failover.

Public surface:

* :class:`BatchingService` — queue + batcher over one runner,
* :class:`JobSpec` / :class:`JobRecord` — submissions and their lifecycle,
* :class:`ServeApp` / :func:`run_server` — the asyncio HTTP front-end,
* :class:`ServerThread` — in-process server for tests/benchmarks,
* :class:`ServeClient` — synchronous stdlib client (``cohort submit``),
  with bounded retries for both backpressure and transient connections,
* :class:`ShardSupervisor` / :class:`FleetApp` / :func:`run_fleet` —
  the supervised shard fleet (``cohort fleet``),
* :class:`FleetThread` — in-process fleet for tests and the chaos soak,
* :class:`LoadGenerator` / :func:`arrival_schedule` /
  :func:`theta_population` — open-loop Poisson load generation for the
  capacity soak (``benchmarks/capacity_soak.py``),
* :class:`WriteAheadJournal` / :class:`HashRing` /
  :class:`CircuitBreaker` — the fleet's durability and routing pieces.

Operationally, every submission carries a trace id end to end
(``X-Trace-Id``), the whole stack logs structured JSON-lines events
through :class:`repro.obs.OpLogger`, and ``/metrics`` doubles as a
Prometheus scrape target — see ``docs/operations.md`` and, for the
failure-mode map, ``docs/resilience.md``.
"""

from repro.serve.client import (
    BackpressureError,
    ServeClient,
    ServeClientError,
)
from repro.serve.loadgen import (
    LoadGenerator,
    LoadgenReport,
    arrival_schedule,
    theta_population,
)
from repro.serve.fleet import (
    CircuitBreaker,
    FleetApp,
    FleetThread,
    HashRing,
    ShardSupervisor,
    WriteAheadJournal,
    run_fleet,
)
from repro.serve.server import ServeApp, ServerThread, run_server
from repro.serve.service import (
    BatchingService,
    DrainingError,
    JobRecord,
    JobSpec,
    JobSpecError,
    QueueFullError,
    ServeError,
)

__all__ = [
    "BackpressureError",
    "BatchingService",
    "CircuitBreaker",
    "DrainingError",
    "FleetApp",
    "FleetThread",
    "HashRing",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "LoadGenerator",
    "LoadgenReport",
    "QueueFullError",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServerThread",
    "ShardSupervisor",
    "WriteAheadJournal",
    "arrival_schedule",
    "run_fleet",
    "run_server",
    "theta_population",
]
