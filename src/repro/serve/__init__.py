"""The serving layer: a batched, backpressured simulation service.

``cohort serve`` turns the repository's :class:`~repro.runner.SweepRunner`
into a long-lived JSON-over-HTTP service: submissions from many clients
are coalesced into runner batches inside a micro-batching window, share
one on-disk result cache, and are admission-controlled by a bounded
queue with explicit backpressure.  See ``docs/serving.md``.

Public surface:

* :class:`BatchingService` — queue + batcher over one runner,
* :class:`JobSpec` / :class:`JobRecord` — submissions and their lifecycle,
* :class:`ServeApp` / :func:`run_server` — the asyncio HTTP front-end,
* :class:`ServerThread` — in-process server for tests/benchmarks,
* :class:`ServeClient` — synchronous stdlib client (``cohort submit``).

Operationally, every submission carries a trace id end to end
(``X-Trace-Id``), the whole stack logs structured JSON-lines events
through :class:`repro.obs.OpLogger`, and ``/metrics`` doubles as a
Prometheus scrape target — see ``docs/operations.md``.
"""

from repro.serve.client import (
    BackpressureError,
    ServeClient,
    ServeClientError,
)
from repro.serve.server import ServeApp, ServerThread, run_server
from repro.serve.service import (
    BatchingService,
    DrainingError,
    JobRecord,
    JobSpec,
    JobSpecError,
    QueueFullError,
    ServeError,
)

__all__ = [
    "BackpressureError",
    "BatchingService",
    "DrainingError",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "QueueFullError",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServerThread",
    "run_server",
]
