"""Job specs, records, and the micro-batching core of ``cohort serve``.

The service turns independent HTTP submissions into
:class:`~repro.runner.SweepRunner` batches:

* a **bounded admission queue** (``queue_limit``) gives explicit
  backpressure — a submission that does not fit is rejected with a
  ``retry_after`` hint instead of being buffered without bound;
* a **micro-batching window** (``batch_window`` seconds, ``max_batch``
  jobs) coalesces near-simultaneous submissions so the runner amortises
  process-pool dispatch and so duplicate jobs from different clients
  collapse onto the shared on-disk result cache;
* batches execute on a thread-pool executor, keeping the event loop
  (and therefore ``/healthz``, ``/metrics`` and status polling)
  responsive while simulations run;
* **graceful drain**: once draining, new submissions are refused while
  queued and in-flight jobs run to completion.

Everything here is asyncio + stdlib; the HTTP front-end lives in
:mod:`repro.serve.server` and a synchronous client in
:mod:`repro.serve.client`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import LatencyHistogram
from repro.obs.ops import OpLogger, build_service_trace
from repro.obs.report import SERVE_METRICS_SCHEMA
from repro.params import cohort_config, config_from_dict
from repro.runner import SweepJob, SweepRunner
from repro.workloads import benchmark_names, splash_traces


class ServeError(Exception):
    """Base class of all serving-layer errors."""


class JobSpecError(ServeError):
    """A submitted job description is invalid."""


class QueueFullError(ServeError):
    """The admission queue cannot take the submission (backpressure)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DrainingError(ServeError):
    """The service is shutting down and refuses new submissions."""


@dataclass(frozen=True)
class JobSpec:
    """One simulation job as submitted by a client.

    The common shape names a benchmark plus a timer vector and lets the
    server generate the (deterministic) traces; a full ``config`` dict
    (the :func:`repro.params.config_to_dict` shape) may override the
    ``thetas``-derived configuration while traces still come from
    ``benchmark``/``scale``/``seed``.
    """

    benchmark: str
    thetas: Tuple[int, ...]
    scale: float = 0.3
    seed: int = 0
    protocol: Optional[str] = None
    record_latencies: bool = False
    config: Optional[Mapping[str, Any]] = None

    @classmethod
    def from_dict(cls, doc: Any) -> "JobSpec":
        """Validate and build a spec from a submitted JSON object."""
        if not isinstance(doc, dict):
            raise JobSpecError("job spec must be a JSON object")
        benchmark = doc.get("benchmark")
        if benchmark not in benchmark_names():
            raise JobSpecError(
                f"unknown benchmark {benchmark!r}; choose from "
                f"{benchmark_names()}"
            )
        thetas = doc.get("thetas")
        if (
            not isinstance(thetas, (list, tuple))
            or not thetas
            or not all(isinstance(t, int) and not isinstance(t, bool) for t in thetas)
        ):
            raise JobSpecError("thetas must be a non-empty list of integers")
        scale = doc.get("scale", 0.3)
        if not isinstance(scale, (int, float)) or not 0 < scale <= 10:
            raise JobSpecError("scale must be a number in (0, 10]")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise JobSpecError("seed must be a non-negative integer")
        protocol = doc.get("protocol")
        if protocol is not None and not isinstance(protocol, str):
            raise JobSpecError("protocol must be a string")
        record_latencies = doc.get("record_latencies", False)
        if not isinstance(record_latencies, bool):
            raise JobSpecError("record_latencies must be a boolean")
        config = doc.get("config")
        if config is not None and not isinstance(config, dict):
            raise JobSpecError("config must be an object")
        unknown = set(doc) - {
            "benchmark", "thetas", "scale", "seed", "protocol",
            "record_latencies", "config",
        }
        if unknown:
            raise JobSpecError(f"unknown job spec fields: {sorted(unknown)}")
        return cls(
            benchmark=benchmark,
            thetas=tuple(thetas),
            scale=float(scale),
            seed=seed,
            protocol=protocol,
            record_latencies=record_latencies,
            config=config,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to the wire format ``from_dict`` accepts back."""
        doc: Dict[str, Any] = {
            "benchmark": self.benchmark,
            "thetas": list(self.thetas),
            "scale": self.scale,
            "seed": self.seed,
            "record_latencies": self.record_latencies,
        }
        if self.protocol is not None:
            doc["protocol"] = self.protocol
        if self.config is not None:
            doc["config"] = dict(self.config)
        return doc

    def spec_key(self) -> str:
        """Cheap content hash of the spec (not the full job digest —
        computed without generating traces, so safe on the event loop)."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def to_sweep_job(self) -> SweepJob:
        """Materialise the runnable job (generates traces; CPU-bound)."""
        if self.config is not None:
            cfg = config_from_dict(dict(self.config))
        else:
            kwargs: Dict[str, Any] = {}
            if self.protocol is not None:
                kwargs["protocol"] = self.protocol
            cfg = cohort_config(list(self.thetas), **kwargs)
        traces = splash_traces(
            self.benchmark, cfg.num_cores, scale=self.scale, seed=self.seed
        )
        return SweepJob(cfg, tuple(traces), self.record_latencies)


@dataclass
class JobRecord:
    """Lifecycle of one accepted job: queued → running → done/failed."""

    id: str
    spec: JobSpec
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic twins of the wall-clock stamps above.  The ``*_at``
    #: fields are display/journal values (epoch seconds, serialised in
    #: :meth:`to_dict`); every *duration* — queue wait, end-to-end
    #: ``duration_ms`` — is derived from these instead, so an NTP step
    #: mid-run cannot corrupt percentiles or SLO verdicts.
    submitted_mono: float = 0.0
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    #: The SweepJob content digest, known once the batch materialised.
    digest: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Trace-context id of the submission this job arrived in (one id
    #: per ``POST /jobs``); carried into every oplog event and the
    #: result envelope so a request's lifecycle greps end to end.
    trace_id: Optional[str] = None
    #: When the executed batch returned from the runner (the
    #: execute→respond boundary of the service-lifecycle trace).
    executed_at: Optional[float] = None

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """Serialise the record; ``include_result=False`` for admission
        responses, where results do not exist yet."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "spec_key": self.spec.spec_key(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "digest": self.digest,
            "error": self.error,
            "trace_id": self.trace_id,
        }
        if include_result:
            doc["result"] = self.result
        return doc


class BatchingService:
    """Bounded-queue micro-batching front-end over one ``SweepRunner``.

    All public methods must be called from the event loop thread (the
    HTTP handlers and the batcher share one loop, so queue accounting
    needs no locks); only the batch execution itself leaves the loop,
    via ``run_in_executor``.
    """

    def __init__(
        self,
        runner: SweepRunner,
        *,
        max_batch: int = 8,
        batch_window: float = 0.05,
        queue_limit: int = 64,
        retry_after: float = 0.5,
        label: str = "serve",
        oplog: Optional[OpLogger] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if retry_after <= 0:
            raise ValueError("retry_after must be > 0")
        self.runner = runner
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.label = label
        self._queue: List[JobRecord] = []
        self._jobs: Dict[str, JobRecord] = {}
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._draining = False
        self._inflight = 0
        self._started_mono = time.monotonic()
        # Counters surfaced through /metrics.
        self.jobs_submitted = 0
        self.jobs_rejected = 0
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.batches = 0
        self.max_queue_depth = 0
        self._batch_sizes = LatencyHistogram()
        self._queue_wait_ms = LatencyHistogram()
        #: Structured operational log; a sink-less no-op by default, so
        #: every lifecycle site emits unconditionally.
        self.oplog = oplog if oplog is not None else OpLogger()
        # Share the log with the runner (its cache_hit/execute events
        # land in the same file) unless the caller gave it its own.
        if getattr(runner, "oplog", None) is None:
            runner.oplog = self.oplog
        #: Per-request service-lifecycle rows for the Perfetto export
        #: (bounded: oldest rows drop first on very long runs).
        self.trace_rows: List[Dict[str, Any]] = []
        self.trace_rows_limit = 10000
        self.trace_rows_dropped = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the batcher task on the running loop."""
        if self._task is not None:
            raise RuntimeError("service already started")
        self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Refuse new submissions; wait for queued + in-flight jobs."""
        self._draining = True
        self.oplog.emit(
            "drain", queued=len(self._queue), inflight=self._inflight
        )
        self._wakeup.set()
        while self._queue or self._inflight:
            await asyncio.sleep(0.01)
        if self._task is not None:
            await self._task
            self._task = None
        self.oplog.emit("drained")

    # -- submission / polling ------------------------------------------------

    def submit(
        self, specs: Sequence[JobSpec], trace_id: Optional[str] = None
    ) -> List[JobRecord]:
        """Admit ``specs`` as one all-or-nothing submission.

        ``trace_id`` is the submission's trace context (the HTTP layer
        mints one per ``POST /jobs`` when the client did not); it is
        stamped on every admitted record and oplog event.
        """
        if self._draining:
            self.oplog.emit(
                "reject", trace_id=trace_id, reason="draining",
                jobs=len(specs),
            )
            raise DrainingError("service is draining; not accepting jobs")
        if not specs:
            raise JobSpecError("submission contains no jobs")
        # Check-and-admit is one atomic step: nothing between the limit
        # check and the final append yields to the event loop (no awaits,
        # no blocking I/O beyond the oplog write), so two concurrent
        # submissions can never both pass the check and overshoot
        # ``queue_limit``.  Anything slow enough to need an await must
        # happen before this point.
        if len(self._queue) + len(specs) > self.queue_limit:
            self.jobs_rejected += len(specs)
            self.oplog.emit(
                "reject", trace_id=trace_id, reason="queue_full",
                jobs=len(specs), queue_depth=len(self._queue),
                retry_after=self.retry_after,
            )
            raise QueueFullError(
                f"admission queue full ({len(self._queue)}/"
                f"{self.queue_limit} queued); retry after "
                f"{self.retry_after}s",
                retry_after=self.retry_after,
            )
        now = time.time()
        now_mono = time.monotonic()
        records = []
        for spec in specs:
            record = JobRecord(
                id=uuid.uuid4().hex[:12], spec=spec, submitted_at=now,
                submitted_mono=now_mono, trace_id=trace_id,
            )
            self._jobs[record.id] = record
            self._queue.append(record)
            records.append(record)
            self.oplog.emit(
                "admit", trace_id=trace_id, job_id=record.id,
                spec_key=spec.spec_key(), queue_depth=len(self._queue),
            )
        self.jobs_submitted += len(records)
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._wakeup.set()
        return records

    def get(self, job_id: str) -> Optional[JobRecord]:
        """Look up a job record by id (None if unknown)."""
        return self._jobs.get(job_id)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- batching ------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            while not self._queue:
                if self._draining:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            batch = await self._gather_batch()
            await self._execute(batch)

    async def _gather_batch(self) -> List[JobRecord]:
        """Pop one job, then coalesce arrivals inside the window."""
        loop = asyncio.get_running_loop()
        batch = [self._queue.pop(0)]
        deadline = loop.time() + self.batch_window
        while len(batch) < self.max_batch:
            if self._queue:
                batch.append(self._queue.pop(0))
                continue
            remaining = deadline - loop.time()
            if remaining <= 0 or self._draining:
                break
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except asyncio.TimeoutError:
                break
        return batch

    async def _execute(self, batch: List[JobRecord]) -> None:
        self._inflight = len(batch)
        started = time.time()
        started_mono = time.monotonic()
        for record in batch:
            record.status = "running"
            record.started_at = started
            record.started_mono = started_mono
            wait_ms = int((started_mono - record.submitted_mono) * 1000)
            self._queue_wait_ms.add(wait_ms)
            self.oplog.emit(
                "batch", trace_id=record.trace_id, job_id=record.id,
                batch=self.batches, queue_wait_ms=wait_ms,
            )
        self._batch_sizes.add(len(batch))
        self.batches += 1
        self.jobs_dispatched += len(batch)
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                None, self._run_batch, batch
            )
        except Exception as exc:  # runner failure fails the whole batch
            executed = time.time()
            detail = f"{type(exc).__name__}: {exc}"
            for record in batch:
                record.status = "failed"
                record.error = detail
                record.executed_at = executed
                record.finished_at = time.time()
                record.finished_mono = time.monotonic()
                self._retire(record)
            self.jobs_failed += len(batch)
        else:
            executed = time.time()
            for record, (digest, result) in zip(batch, outcome):
                record.status = "done"
                record.digest = digest
                record.result = result
                record.executed_at = executed
                record.finished_at = time.time()
                record.finished_mono = time.monotonic()
                self._retire(record)
            self.jobs_completed += len(batch)
        finally:
            self._inflight = 0

    def _retire(self, record: JobRecord) -> None:
        """Log one finished job and record its service-lifecycle row."""
        self.oplog.emit(
            "retire", trace_id=record.trace_id, job_id=record.id,
            status=record.status, digest=record.digest,
            # Monotonic, so a wall-clock (NTP) step mid-job can neither
            # inflate the duration nor push it negative.
            duration_ms=(record.finished_mono - record.submitted_mono)
            * 1000,
        )
        if len(self.trace_rows) >= self.trace_rows_limit:
            self.trace_rows.pop(0)
            self.trace_rows_dropped += 1
        self.trace_rows.append(
            {
                "trace_id": record.trace_id,
                "job_id": record.id,
                "status": record.status,
                "digest": record.digest,
                "submitted_at": record.submitted_at,
                "dispatched_at": record.started_at,
                "executed_at": record.executed_at,
                "finished_at": record.finished_at,
            }
        )

    def service_trace(self) -> Dict[str, Any]:
        """Chrome trace-event doc of all retired requests' lifecycles."""
        return build_service_trace(self.trace_rows, name=self.label)

    def _run_batch(
        self, batch: List[JobRecord]
    ) -> List[Tuple[str, dict]]:
        """Executor-side: materialise, run, pair results with digests.

        Batches execute strictly one at a time (the batcher awaits each
        ``_execute``), so the runner is never touched concurrently.
        The records' trace context rides along so the runner's
        ``cache_hit``/``execute`` oplog events correlate with the
        submission that caused them.
        """
        jobs = [record.spec.to_sweep_job() for record in batch]
        results = self.runner.run(
            jobs,
            op_context=[
                {"trace_id": record.trace_id, "job_id": record.id}
                for record in batch
            ],
        )
        return [(job.digest(), result) for job, result in zip(jobs, results)]

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """A ``/metrics`` snapshot (``repro.obs`` serve_metrics shape)."""
        return {
            "schema": SERVE_METRICS_SCHEMA,
            "label": self.label,
            "uptime_seconds": time.monotonic() - self._started_mono,
            "service": {
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "inflight": self._inflight,
                "draining": self._draining,
                "max_batch": self.max_batch,
                "batch_window": self.batch_window,
                "retry_after": self.retry_after,
                "jobs_submitted": self.jobs_submitted,
                "jobs_rejected": self.jobs_rejected,
                "jobs_dispatched": self.jobs_dispatched,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "batches": self.batches,
                "max_queue_depth": self.max_queue_depth,
                "batch_sizes": self._batch_sizes.to_dict(),
                "batch_size_p95": self._batch_sizes.percentile(0.95),
                "queue_wait_ms": self._queue_wait_ms.to_dict(),
                "queue_wait_ms_p50": self._queue_wait_ms.percentile(0.5),
                "queue_wait_ms_p95": self._queue_wait_ms.percentile(0.95),
            },
            "runner": self.runner.telemetry(),
        }
