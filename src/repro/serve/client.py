"""A synchronous stdlib client for ``cohort serve``.

One class, no dependencies: submit jobs, honour backpressure
(``429`` + ``Retry-After``) with bounded jittered backoff, propagate
trace context (``X-Trace-Id``), poll until completion, read health and
metrics.  Used by ``cohort submit``, the serve benchmarks and the CI
smoke script — and small enough to copy into an external driver.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.ops import OpLogger, new_trace_id
from repro.serve.service import JobSpec, ServeError

SpecLike = Union[JobSpec, Dict[str, Any]]

#: Hard ceiling on one backpressure backoff sleep, however large the
#: server's ``Retry-After`` hint or the exponential growth gets.
MAX_BACKOFF_SECONDS = 30.0

#: Exceptions that mean "the endpoint is briefly unreachable" — the
#: shape of a shard mid-restart (connection refused) or killed while
#: answering (reset / torn response).  ``http.client.RemoteDisconnected``
#: subclasses ``ConnectionResetError``; plain ``OSError`` covers
#: ``ECONNREFUSED`` raised from ``socket.create_connection``.
TRANSIENT_ERRORS = (ConnectionError, OSError, http.client.BadStatusLine)


class ServeClientError(ServeError):
    """An HTTP request to the service failed."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class BackpressureError(ServeClientError):
    """The service rejected the submission with a full admission queue."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, status=429)
        self.retry_after = retry_after


def _spec_doc(spec: SpecLike) -> Dict[str, Any]:
    if isinstance(spec, JobSpec):
        return spec.to_dict()
    return dict(spec)


class ServeClient:
    """Talks to one ``cohort serve`` endpoint.

    ``oplog`` optionally records the client's side of every submission
    (``client_submit``/``client_backoff``/``client_accepted`` events,
    including the attempt count) into the same JSON-lines format the
    server writes, so a request can be correlated across both ends.

    ``connect_retries`` makes every request tolerate transient
    connection failures — refused, reset, or torn mid-response, the
    signature of a serve shard being restarted under it — by retrying
    up to that many extra times with the same bounded jittered backoff
    the 429 path uses.  The default (0) preserves fail-fast behaviour.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        oplog: Optional[OpLogger] = None,
        connect_retries: int = 0,
        connect_backoff: float = 0.2,
    ) -> None:
        parsed = urllib.parse.urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError("only http:// endpoints are supported")
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8765
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.oplog = oplog if oplog is not None else OpLogger(
            component="client"
        )

    def _request(
        self,
        method: str,
        path: str,
        doc: Optional[Any] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> tuple:
        """One HTTP round-trip, with transient-connection retries.

        Job submissions are idempotent at the service layer (results
        are keyed by content digest), so re-sending a POST whose
        connection died is safe; a refused connection never reached the
        server at all.  ``socket.timeout`` is deliberately *not*
        retried — a slow server is not a restarting one, and retrying
        would double the wait.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, doc, extra_headers)
            except socket.timeout:
                raise
            except TRANSIENT_ERRORS as exc:
                if attempt >= self.connect_retries:
                    raise ServeClientError(
                        f"{method} {path} failed after {attempt + 1} "
                        f"attempt(s): {type(exc).__name__}: {exc}"
                    ) from exc
                attempt += 1
                delay = self._backoff_delay(
                    self.connect_backoff, attempt, MAX_BACKOFF_SECONDS
                )
                self.oplog.emit(
                    "client_reconnect", method=method, path=path,
                    attempt=attempt, error=type(exc).__name__,
                    sleep_s=round(delay, 4),
                )
                time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        doc: Optional[Any] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> tuple:
        body = None
        headers: Dict[str, str] = dict(extra_headers or {})
        if doc is not None:
            body = json.dumps(doc)
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        try:
            parsed = json.loads(payload) if payload else None
        except ValueError:
            parsed = None
        return response.status, dict(response.getheaders()), parsed

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Return the server's health document (``GET /healthz``)."""
        status, _, doc = self._request("GET", "/healthz")
        if status != 200 or not isinstance(doc, dict):
            raise ServeClientError(f"healthz returned {status}", status)
        return doc

    def metrics(self) -> Dict[str, Any]:
        """Return the server's metrics document (``GET /metrics``)."""
        status, _, doc = self._request("GET", "/metrics")
        if status != 200 or not isinstance(doc, dict):
            raise ServeClientError(f"metrics returned {status}", status)
        return doc

    def submit(
        self,
        specs: Sequence[SpecLike],
        *,
        max_retries: int = 0,
        backoff: Optional[float] = None,
        trace_id: Optional[str] = None,
        max_backoff: float = MAX_BACKOFF_SECONDS,
    ) -> List[Dict[str, Any]]:
        """Submit one batch; returns the accepted job documents.

        A ``429`` is retried up to ``max_retries`` times (a hard
        attempts cap, never unbounded).  Each retry sleeps the
        server-provided ``Retry-After`` hint (or ``backoff``) scaled
        exponentially by the attempt number, ±25% uniform jitter so a
        thundering herd of rejected clients decorrelates, and clamped
        to ``max_backoff``.  When retries run out a
        :class:`BackpressureError` carries the last hint so callers can
        implement their own policy.  ``trace_id`` seeds the submission's
        trace context (minted here when omitted) and is sent as
        ``X-Trace-Id``; the server echoes the id it actually used in
        the accepted documents.
        """
        payload = {"jobs": [_spec_doc(spec) for spec in specs]}
        trace = trace_id if trace_id is not None else new_trace_id()
        attempt = 0
        while True:
            self.oplog.emit(
                "client_submit", trace_id=trace, jobs=len(specs),
                attempt=attempt + 1,
            )
            status, headers, doc = self._request(
                "POST", "/jobs", payload,
                extra_headers={"X-Trace-Id": trace},
            )
            if status == 202 and isinstance(doc, dict):
                self.oplog.emit(
                    "client_accepted", trace_id=doc.get("trace_id", trace),
                    jobs=len(doc.get("jobs", [])), attempt=attempt + 1,
                )
                return list(doc.get("jobs", []))
            if status == 429:
                retry_after = self._retry_after(headers, doc, backoff)
                if attempt >= max_retries:
                    self.oplog.emit(
                        "client_backpressure_giveup", trace_id=trace,
                        attempt=attempt + 1, retry_after=retry_after,
                    )
                    raise BackpressureError(
                        f"queue full after {attempt + 1} attempt(s)",
                        retry_after=retry_after,
                    )
                attempt += 1
                delay = self._backoff_delay(retry_after, attempt, max_backoff)
                self.oplog.emit(
                    "client_backoff", trace_id=trace, attempt=attempt,
                    retry_after=retry_after, sleep_s=round(delay, 4),
                )
                time.sleep(delay)
                continue
            detail = doc.get("error") if isinstance(doc, dict) else None
            raise ServeClientError(
                f"submit returned {status}: {detail or 'no detail'}", status
            )

    @staticmethod
    def _backoff_delay(
        retry_after: float, attempt: int, max_backoff: float
    ) -> float:
        """One bounded, jittered backoff sleep.

        The server's hint is the base; it doubles per attempt already
        spent, gets ±25% uniform jitter, and is clamped to
        ``max_backoff`` (never below 1ms, so a zero hint still yields).
        """
        base = max(0.001, retry_after) * (2 ** (attempt - 1))
        jittered = base * random.uniform(0.75, 1.25)
        return max(0.001, min(jittered, max_backoff))

    @staticmethod
    def _retry_after(
        headers: Dict[str, str], doc: Any, fallback: Optional[float]
    ) -> float:
        for key, value in headers.items():
            if key.lower() == "retry-after":
                try:
                    return float(value)
                except ValueError:
                    break
        if isinstance(doc, dict) and isinstance(
            doc.get("retry_after"), (int, float)
        ):
            return float(doc["retry_after"])
        return fallback if fallback is not None else 0.5

    def job(self, job_id: str) -> Dict[str, Any]:
        """Fetch one job record (``GET /jobs/<id>``); 404 raises."""
        status, _, doc = self._request("GET", f"/jobs/{job_id}")
        if status != 200 or not isinstance(doc, dict):
            raise ServeClientError(f"job {job_id} returned {status}", status)
        return doc

    def poll_jobs(
        self,
        job_ids: Sequence[str],
        *,
        include_result: bool = True,
    ) -> Optional[Dict[str, Dict[str, Any]]]:
        """Batched status poll (``POST /jobs/poll``); id → record.

        Returns ``None`` when the server predates the batch endpoint
        (404/405), so callers can fall back to per-job ``GET``s.  An
        unknown id raises, exactly like :meth:`job` would.
        """
        status, _, doc = self._request(
            "POST", "/jobs/poll",
            {"ids": list(job_ids), "include_result": include_result},
        )
        if status in (404, 405):
            return None
        if status != 200 or not isinstance(doc, dict):
            raise ServeClientError(f"jobs/poll returned {status}", status)
        unknown = doc.get("unknown") or []
        if unknown:
            raise ServeClientError(
                f"unknown job id(s): {unknown[:4]}", status=404
            )
        return dict(doc.get("jobs", {}))

    def wait(
        self,
        job_ids: Sequence[str],
        *,
        timeout: float = 600.0,
        poll: float = 0.05,
        poll_batch: int = 64,
    ) -> Dict[str, Dict[str, Any]]:
        """Poll until every job is done or failed; id → final record.

        Jobs are polled in batches of ``poll_batch`` over
        ``POST /jobs/poll`` (falling back to per-job ``GET``s against
        older servers), and the ``timeout`` deadline is enforced before
        *every* HTTP round-trip — never only between full passes, so
        thousands of in-flight jobs cannot stretch one pass past the
        deadline unnoticed.
        """
        if poll_batch < 1:
            raise ValueError("poll_batch must be >= 1")
        deadline = time.monotonic() + timeout
        finished: Dict[str, Dict[str, Any]] = {}
        pending = list(job_ids)
        batch_supported = True
        while pending:
            still_pending: List[str] = []
            for start in range(0, len(pending), poll_batch):
                chunk = pending[start:start + poll_batch]
                # Deadline first: the remainder of this pass is still
                # pending by definition, so report all of it.
                remaining = chunk + pending[start + poll_batch:]
                self._check_wait_deadline(deadline, timeout, remaining)
                records: Optional[Dict[str, Dict[str, Any]]] = None
                if batch_supported:
                    records = self.poll_jobs(chunk)
                    if records is None:
                        batch_supported = False
                if records is None:
                    records = {}
                    for i, job_id in enumerate(chunk):
                        self._check_wait_deadline(
                            deadline, timeout,
                            chunk[i:] + pending[start + poll_batch:],
                        )
                        records[job_id] = self.job(job_id)
                for job_id in chunk:
                    record = records[job_id]
                    if record["status"] in ("done", "failed"):
                        finished[job_id] = record
                    else:
                        still_pending.append(job_id)
            pending = still_pending
            if pending:
                self._check_wait_deadline(deadline, timeout, pending)
                time.sleep(poll)
        return finished

    @staticmethod
    def _check_wait_deadline(
        deadline: float, timeout: float, pending: Sequence[str]
    ) -> None:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"{len(pending)} job(s) still pending after "
                f"{timeout}s: {list(pending[:4])}"
            )

    def submit_and_wait(
        self,
        specs: Sequence[SpecLike],
        *,
        max_retries: int = 0,
        timeout: float = 600.0,
        poll: float = 0.05,
        trace_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Submit then wait; returns final records in submission order."""
        accepted = self.submit(
            specs, max_retries=max_retries, trace_id=trace_id
        )
        ids = [doc["id"] for doc in accepted]
        finished = self.wait(ids, timeout=timeout, poll=poll)
        return [finished[job_id] for job_id in ids]
