"""The JSON-over-HTTP front-end of ``cohort serve``.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
third-party framework, one request per connection, JSON in and out:

* ``GET /healthz`` — liveness + drain state,
* ``GET /metrics`` — a :data:`repro.obs.SERVE_METRICS_SCHEMA` snapshot
  (service queue/batch counters + ``SweepRunner.telemetry()``);
  ``?format=prometheus`` (or an ``Accept: text/plain`` scrape header)
  selects the Prometheus text exposition of the same counters instead,
* ``POST /jobs`` — submit ``{"jobs": [spec, …]}`` (or one bare spec);
  ``202`` with job ids, ``429`` + ``Retry-After`` on a full queue,
  ``503`` while draining, ``400`` on an invalid spec.  Every
  submission carries a trace id — a valid client ``X-Trace-Id`` is
  honoured, anything else gets a freshly minted one — echoed in the
  response header/body and stamped through the oplog, the runner and
  the job's result envelope,
* ``GET /jobs/<id>`` — poll one job (result embedded when done),
* ``POST /jobs/poll`` — poll many jobs in one round-trip
  (``{"ids": [...], "include_result": bool}``).

``SIGTERM``/``SIGINT`` trigger a graceful drain: submissions are
refused, queued and in-flight batches finish, final metrics/trace
snapshots are optionally written (atomically), then the server exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import threading
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from repro.obs.ops import new_trace_id, valid_trace_id
from repro.obs.promexport import prometheus_from_serve_metrics
from repro.runner import SweepRunner
from repro.serve.service import (
    BatchingService,
    DrainingError,
    JobSpec,
    JobSpecError,
    QueueFullError,
)

#: Content-Type of the Prometheus text exposition (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest accepted request body (a trace-free job spec is tiny).
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class JsonHttpApp:
    """Minimal HTTP/1.1-over-asyncio plumbing shared by the serving apps.

    Subclasses implement :meth:`_route`; everything about reading one
    request, bounding its body, and writing the JSON (or pre-rendered
    text) response lives here.  :class:`ServeApp` routes onto one
    :class:`BatchingService`; ``repro.serve.fleet.FleetApp`` routes onto
    a shard supervisor.
    """

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP request on this connection, then close it."""
        try:
            status, doc, extra = await self._handle_request(reader)
        except Exception:
            status, doc, extra = 500, {"error": "internal server error"}, {}
        if isinstance(doc, str):
            # A pre-rendered text payload (the Prometheus exposition);
            # the route names its own Content-Type via ``extra``.
            payload = doc.encode()
            content_type = extra.pop("Content-Type", "text/plain")
        else:
            payload = json.dumps(doc).encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
        )
        for key, value in extra.items():
            head += f"{key}: {value}\r\n"
        try:
            writer.write(head.encode("latin-1") + b"\r\n" + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any, Dict[str, str]]:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 30)
        except asyncio.TimeoutError:
            return 400, {"error": "request timeout"}, {}
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, {}
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1", "replace").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad content-length"}, {}
        if length > MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}, {}
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length), 30)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return 400, {"error": "truncated request body"}, {}
        result = self._route(method, target, body, headers)
        if asyncio.iscoroutine(result):
            # A route that needs the event loop (e.g. the fleet's
            # submission path, which journals through an executor)
            # returns a coroutine instead of a response tuple.
            result = await result
        return result

    def _route(
        self, method: str, target: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """Dispatch one request: ``(status, doc-or-text, extra headers)``,
        or a coroutine resolving to that tuple for async routes."""
        raise NotImplementedError

    @staticmethod
    def _wants_prometheus(query: str, headers: Dict[str, str]) -> bool:
        """Content negotiation for ``/metrics``.

        An explicit ``?format=`` wins; otherwise an ``Accept`` header
        that names ``text/plain`` without also naming JSON (the
        Prometheus scraper's shape) selects the exposition format.
        JSON stays the default for everything else.
        """
        params = urllib.parse.parse_qs(query)
        formats = params.get("format")
        if formats:
            return formats[-1].lower() in ("prometheus", "text")
        accept = headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept


def poll_jobs_route(
    get, body: bytes
) -> Tuple[int, Any, Dict[str, str]]:
    """Shared ``POST /jobs/poll`` handler: batched status polling.

    Body: ``{"ids": [...], "include_result": bool}`` (``include_result``
    defaults to true).  Answers ``{"jobs": {id: record}, "unknown":
    [...]}`` — one round-trip for a whole in-flight window instead of
    one ``GET /jobs/<id>`` per job, which is what keeps high-fan-out
    pollers (``ServeClient.wait``, the load generator) from drowning the
    server in per-job requests.  ``get`` is the id → record lookup of
    the owning service (:class:`BatchingService` or the fleet
    supervisor).
    """
    try:
        doc = json.loads(body or b"null")
    except ValueError:
        return 400, {"error": "request body is not valid JSON"}, {}
    if not isinstance(doc, dict) or not isinstance(doc.get("ids"), list):
        return 400, {"error": '"ids" must be a list of job ids'}, {}
    ids = doc["ids"]
    if not all(isinstance(job_id, str) for job_id in ids):
        return 400, {"error": "job ids must be strings"}, {}
    include_result = doc.get("include_result", True)
    if not isinstance(include_result, bool):
        return 400, {"error": '"include_result" must be a boolean'}, {}
    jobs: Dict[str, Any] = {}
    unknown = []
    for job_id in ids:
        record = get(job_id)
        if record is None:
            unknown.append(job_id)
        else:
            jobs[job_id] = record.to_dict(include_result=include_result)
    return 200, {"jobs": jobs, "unknown": unknown}, {}


class ServeApp(JsonHttpApp):
    """Routes HTTP requests onto one :class:`BatchingService`."""

    def __init__(self, service: BatchingService) -> None:
        self.service = service

    def _route(
        self, method: str, target: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        headers = headers or {}
        path, _, query = target.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return (
                200,
                {
                    "status": "draining" if self.service.draining else "ok",
                    "queue_depth": self.service.queue_depth,
                    "queue_limit": self.service.queue_limit,
                },
                {},
            )
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            if self._wants_prometheus(query, headers):
                return (
                    200,
                    prometheus_from_serve_metrics(self.service.metrics()),
                    {"Content-Type": PROMETHEUS_CONTENT_TYPE},
                )
            return 200, self.service.metrics(), {}
        if path == "/jobs":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            supplied = headers.get("x-trace-id")
            trace_id = supplied if valid_trace_id(supplied) else new_trace_id()
            return self._submit(body, trace_id)
        if path == "/jobs/poll":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {}
            return poll_jobs_route(self.service.get, body)
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}, {}
            record = self.service.get(path[len("/jobs/"):])
            if record is None:
                return 404, {"error": "unknown job id"}, {}
            return 200, record.to_dict(include_result=True), {}
        return 404, {"error": f"no route for {path}"}, {}

    def _submit(
        self, body: bytes, trace_id: str
    ) -> Tuple[int, Any, Dict[str, str]]:
        trace_headers = {"X-Trace-Id": trace_id}
        try:
            doc = json.loads(body or b"null")
        except ValueError:
            return (
                400,
                {"error": "request body is not valid JSON",
                 "trace_id": trace_id},
                trace_headers,
            )
        if isinstance(doc, dict) and "jobs" in doc:
            raw_specs = doc.get("jobs")
        else:
            raw_specs = [doc]
        if not isinstance(raw_specs, list):
            return (
                400,
                {"error": '"jobs" must be a list of job specs',
                 "trace_id": trace_id},
                trace_headers,
            )
        try:
            specs = [JobSpec.from_dict(raw) for raw in raw_specs]
            records = self.service.submit(specs, trace_id=trace_id)
        except JobSpecError as exc:
            return (
                400,
                {"error": str(exc), "trace_id": trace_id},
                trace_headers,
            )
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after,
                 "trace_id": trace_id},
                {"Retry-After": f"{exc.retry_after}", **trace_headers},
            )
        except DrainingError as exc:
            return (
                503,
                {"error": str(exc), "retry_after": self.service.retry_after,
                 "trace_id": trace_id},
                {"Retry-After": f"{self.service.retry_after}",
                 **trace_headers},
            )
        return (
            202,
            {
                "trace_id": trace_id,
                "jobs": [r.to_dict(include_result=False) for r in records],
            },
            trace_headers,
        )


def _write_json_atomic(path: str, doc: Any) -> None:
    """Write a JSON document via tmp-file + rename (no torn snapshot).

    Same convention as ``SweepRunner._cache_store``: a SIGTERM landing
    mid-write leaves either the old file or the new one, never a
    truncated hybrid.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory or ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


async def run_server(
    service: BatchingService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
    install_signal_handlers: bool = True,
    ready: Optional[threading.Event] = None,
    stop: Optional[asyncio.Event] = None,
) -> int:
    """Serve until SIGTERM/SIGINT (or ``stop``), then drain gracefully.

    Returns the port actually bound (useful with ``port=0``).
    ``trace_out`` exports the service-lifecycle spans of every retired
    request as a Perfetto-loadable Chrome trace on exit.
    """
    app = ServeApp(service)
    await service.start()
    server = await asyncio.start_server(app.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    stop_event = stop if stop is not None else asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop_event.set)
    print(f"cohort serve: listening on http://{host}:{bound_port}", flush=True)
    service.oplog.emit("server_listening", host=host, port=bound_port)
    await stop_event.wait()
    print("cohort serve: draining", flush=True)
    # Keep the listener open while draining so clients can poll job
    # status; submissions are refused with 503 once draining starts.
    await service.drain()
    if metrics_out:
        _write_json_atomic(metrics_out, service.metrics())
        print(f"cohort serve: metrics snapshot -> {metrics_out}", flush=True)
    if trace_out:
        _write_json_atomic(trace_out, service.service_trace())
        print(f"cohort serve: service trace -> {trace_out}", flush=True)
    if manifest_out:
        from repro.qa import build_manifest, write_manifest

        snapshot = service.metrics()
        svc = snapshot["service"]
        runner = snapshot["runner"]
        artifacts = [
            path
            for path in (metrics_out, trace_out, service.oplog.path)
            if path
        ]
        manifest = build_manifest(
            "serve", snapshot.get("label") or "serve",
            metrics={
                "jobs_submitted": svc["jobs_submitted"],
                "jobs_rejected": svc["jobs_rejected"],
                "jobs_completed": svc["jobs_completed"],
                "jobs_failed": svc["jobs_failed"],
                "batches": svc["batches"],
                "max_queue_depth": svc["max_queue_depth"],
                "runner_cache_hits": runner["cache_hits"],
                "runner_cache_misses": runner["cache_misses"],
                "runner_cache_hit_rate": runner["cache_hit_rate"],
                "runner_jobs_executed": runner["jobs_executed"],
                "runner_engine": runner["engine"],
                "oplog_events": service.oplog.events_emitted,
            },
            engine=runner["engine"],
            artifact_paths=artifacts,
        )
        fingerprint = write_manifest(manifest, manifest_out)
        print(
            f"cohort serve: run manifest -> {manifest_out} "
            f"(fingerprint {fingerprint[:12]})",
            flush=True,
        )
    server.close()
    await server.wait_closed()
    service.oplog.emit("server_exit")
    service.oplog.close()
    print("cohort serve: drained, exiting", flush=True)
    return bound_port


class ServerThread:
    """An in-process ``cohort serve`` for tests and benchmarks.

    Runs the event loop in a daemon thread on an ephemeral port; the
    caller talks to it over real HTTP with
    :class:`repro.serve.client.ServeClient`.
    """

    def __init__(
        self,
        *,
        runner: Optional[SweepRunner] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.runner = runner if runner is not None else SweepRunner(jobs=1)
        self.service_kwargs = service_kwargs
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.service: Optional[BatchingService] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("server not started")
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        """Start the server thread and block until it is accepting."""
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread did not start in time")
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error!r}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced via start()/stop()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.service = BatchingService(self.runner, **self.service_kwargs)
        app = ServeApp(self.service)
        await self.service.start()
        server = await asyncio.start_server(
            app.handle_connection, self.host, self._requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.drain()
        server.close()
        await server.wait_closed()

    def stop(self, timeout: float = 60.0) -> None:
        """Trigger a graceful drain and wait for the thread to exit."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("serve thread did not drain in time")
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error!r}")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
