"""Command-line interface: regenerate the paper's experiments.

Installed as the ``cohort`` console script::

    cohort table1                    # related-work challenge matrix
    cohort table2                    # per-mode optimized timers (fft)
    cohort fig5 --config all_cr      # WCML comparison (one panel)
    cohort fig6 --config all_cr      # normalised execution time
    cohort fig7                      # mode-switch adaptation
    cohort optimize -b fft           # run the optimization engine
    cohort simulate -b fft -t 100 20 20 -1   # one simulation run

Every command prints the rows/series the corresponding paper artefact
reports.

Telemetry (the :mod:`repro.obs` layer) rides along on request::

    cohort simulate -b fft --trace-out run.trace.json \
                           --metrics-out run.metrics.json
    cohort fig6 --metrics-out sweep.metrics.json
    cohort optimize --metrics-out ga.jsonl
    cohort metrics run.metrics.json   # summarise any saved artefact
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles, cohort_bounds
from repro.experiments import (
    FIG5_CONFIGS,
    format_table,
    render_table_i,
    run_mode_switch_experiment,
    run_performance_experiment,
    run_wcml_experiment,
)
from repro.opt import GAConfig, OptimizationEngine
from repro.sim.system import run_simulation
from repro.workloads import benchmark_names, splash_traces


def _ga_config(args: argparse.Namespace) -> GAConfig:
    return GAConfig(
        population_size=args.population,
        generations=args.generations,
        seed=args.seed,
    )


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return jobs


def _nonneg_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _protocol_name(value: str) -> str:
    """Argparse type for ``--protocol``: any *registered* protocol name.

    Validated against the live registry (not a static choices list) so
    third-party protocols registered via ``repro.sim.protocols.register``
    are selectable; the error enumerates what exists.
    """
    from repro.sim.protocols import available_protocols

    if value not in available_protocols():
        raise argparse.ArgumentTypeError(
            f"unknown coherence protocol {value!r}; "
            f"available: {', '.join(available_protocols())}"
        )
    return value


def _add_metrics_out(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument("--metrics-out", metavar="FILE",
                        help=f"write {what} to FILE "
                             "(summarise with `cohort metrics`)")


def _add_manifest_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--manifest-out", metavar="FILE",
                        help="write a run manifest (config fingerprint, "
                             "trace digests, key metrics, artifact digests) "
                             "to FILE; gate it with `cohort gate run`")


def _emit_manifest(path, kind, label, **kwargs) -> None:
    """Build and write a run manifest; prints its fingerprint."""
    from repro.qa import build_manifest, write_manifest

    manifest = build_manifest(kind, label, **kwargs)
    fingerprint = write_manifest(manifest, path)
    print(f"run manifest written to {path} (fingerprint {fingerprint[:12]})")


def _runner_metrics(runner) -> dict:
    """The sweep-runner telemetry scalars a gate can assert over."""
    tele = runner.telemetry()
    keys = ("engine", "cache_hits", "cache_misses", "cache_hit_rate",
            "jobs_executed", "exec_seconds", "lockstep_groups",
            "lockstep_jobs", "worker_failures", "job_timeouts")
    return {f"runner_{key}": tele[key] for key in keys}


def _write_sweep_metrics(args: argparse.Namespace, runner,
                         label: str) -> None:
    """Write the sweep-cache / worker-timing counters of a runner."""
    from repro.obs import SWEEP_METRICS_SCHEMA

    doc = {
        "schema": SWEEP_METRICS_SCHEMA,
        "label": label,
        "runner": runner.telemetry(),
    }
    with open(args.metrics_out, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"sweep metrics written to {args.metrics_out}")


def _add_engine(
    parser: argparse.ArgumentParser, default: str = "lockstep"
) -> None:
    # Single-simulation commands default to "fast": lock-step only pays
    # off when a batch shares one trace set.
    parser.add_argument(
        "--engine", choices=("seed", "fast", "lockstep"), default=default,
        help="simulation engine: 'lockstep' amortises one trace across "
             "same-trace sweep groups, 'fast' is the inline "
             "hit-retirement path, 'seed' forces the event-per-access "
             "reference engine; results are bit-identical across all "
             f"three (default: {default})")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--population", type=int, default=24,
                        help="GA population size")
    parser.add_argument("--generations", type=int, default=20,
                        help="GA generations")
    parser.add_argument("-j", "--jobs", type=_positive_int, default=1,
                        help="worker processes for independent simulations "
                             "and GA fitness evaluation (1 = serial)")


def cmd_table1(args: argparse.Namespace) -> int:
    """``cohort table1``: print the related-work challenge matrix."""
    print(render_table_i())
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    """``cohort table2``: per-mode optimized timer values (Table II)."""
    exp = run_mode_switch_experiment(
        benchmark=args.benchmark,
        scale=args.scale,
        seed=args.seed,
        ga_config=_ga_config(args),
        run_measured=False,
    )
    print(f"Table II equivalent: per-mode timers for {args.benchmark}")
    print(exp.mode_table)
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    """``cohort fig5``: one WCML comparison panel per benchmark."""
    from repro.runner import SweepRunner

    critical = FIG5_CONFIGS[args.config]
    runner = SweepRunner(jobs=args.jobs, engine=args.engine)
    ratios = {}
    for benchmark in args.benchmarks:
        exp = run_wcml_experiment(
            benchmark, critical, scale=args.scale, seed=args.seed,
            ga_config=_ga_config(args), perfect_llc=not args.non_perfect_llc,
            runner=runner,
        )
        print(exp.to_table())
        print(
            f"  bound ratios vs CoHoRT: PCC "
            f"{exp.bound_ratio('PCC', 'CoHoRT'):.2f}x, PENDULUM "
            f"{exp.bound_ratio('PENDULUM', 'CoHoRT'):.2f}x"
        )
        print()
        ratios[f"{benchmark}_pcc_over_cohort"] = \
            exp.bound_ratio("PCC", "CoHoRT")
        ratios[f"{benchmark}_pendulum_over_cohort"] = \
            exp.bound_ratio("PENDULUM", "CoHoRT")
    if args.metrics_out:
        _write_sweep_metrics(args, runner, f"fig5:{args.config}")
    if args.manifest_out:
        _emit_manifest(
            args.manifest_out, "fig5", f"{args.config}",
            metrics={**ratios, **_runner_metrics(runner)},
            engine=args.engine, seed=args.seed,
            artifact_paths=[p for p in (args.metrics_out,) if p],
            environment={"benchmarks": list(args.benchmarks),
                         "scale": args.scale},
        )
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    """``cohort fig6``: execution time normalised to MSI-FCFS."""
    from repro.runner import SweepRunner

    critical = FIG5_CONFIGS[args.config]
    runner = SweepRunner(jobs=args.jobs, engine=args.engine)
    exp = run_performance_experiment(
        args.benchmarks, critical, scale=args.scale, seed=args.seed,
        ga_config=_ga_config(args), perfect_llc=not args.non_perfect_llc,
        runner=runner, include_pmsi=args.pmsi,
    )
    print(exp.to_table())
    if args.metrics_out:
        _write_sweep_metrics(args, runner, f"fig6:{args.config}")
    if args.manifest_out:
        systems = list(exp.results[0].execution_time) if exp.results else []
        slowdowns = {
            "geomean_slowdown_" + s.lower().replace("-", "_"):
                exp.average_slowdown(s)
            for s in systems
        }
        _emit_manifest(
            args.manifest_out, "fig6", f"{args.config}",
            metrics={**slowdowns, **_runner_metrics(runner)},
            engine=args.engine, seed=args.seed,
            artifact_paths=[p for p in (args.metrics_out,) if p],
            environment={"benchmarks": list(args.benchmarks),
                         "scale": args.scale},
        )
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    """``cohort fig7``: the mode-switch adaptation experiment."""
    exp = run_mode_switch_experiment(
        benchmark=args.benchmark, scale=args.scale, seed=args.seed,
        ga_config=_ga_config(args),
    )
    print(exp.mode_table)
    print()
    print(exp.to_table())
    if exp.measured_c0_adaptive is not None:
        print(
            f"\nmeasured c0 memory latency: adaptive="
            f"{exp.measured_c0_adaptive:,} static={exp.measured_c0_static:,}"
        )
    if args.manifest_out:
        _emit_manifest(
            args.manifest_out, "fig7", args.benchmark,
            metrics={
                "measured_c0_adaptive": exp.measured_c0_adaptive,
                "measured_c0_static": exp.measured_c0_static,
            },
            seed=args.seed,
            environment={"scale": args.scale},
        )
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    """``cohort all``: the complete reproduction in one run."""
    from repro.experiments.summary import quick_sanity_table, run_everything

    report = run_everything(
        suite=args.benchmarks,
        scale=args.scale,
        seed=args.seed,
        ga_config=_ga_config(args),
    )
    print(report.render())
    print()
    print(quick_sanity_table(report))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.render() + "\n\n" + quick_sanity_table(report))
        print(f"\nreport written to {args.out}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """``cohort characterize``: workload characterisation table."""
    from repro.workloads import characterize_suite, suite_table

    profiles = characterize_suite(
        num_cores=4, scale=args.scale, seed=args.seed
    )
    print(suite_table(profiles))
    return 0


def cmd_headroom(args: argparse.Namespace) -> int:
    """``cohort headroom``: per-mode requirement-tightening headroom."""
    from repro.analysis import tightening_headroom
    from repro.mcs import Task, TaskSet

    criticalities = [4, 3, 2, 1]
    traces = splash_traces(args.benchmark, 4, scale=args.scale,
                           seed=args.seed)
    profiles = build_profiles(traces, cohort_config([1] * 4).l1)
    engine = OptimizationEngine(profiles, LatencyParams(), _ga_config(args))
    table = engine.optimize_modes(
        criticalities, {m: [None] * 4 for m in range(1, 5)}
    )
    tasks = TaskSet(
        tuple(
            Task(f"tau_{i}", l, traces[i])
            for i, l in enumerate(criticalities)
        )
    )
    headroom = tightening_headroom(
        tasks, table, profiles, LatencyParams(), core_id=0
    )
    print(table)
    rows = [[f"mode {m}", f"{headroom[m]:.2f}x"] for m in sorted(headroom)]
    print()
    print(format_table(
        ["mode", "max tightening of Γ_0"],
        rows,
        title=f"Requirement headroom of c0 per mode ({args.benchmark})",
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``cohort sweep``: the timer trade-off curve for one core."""
    from repro.analysis import wcl_miss

    traces = splash_traces(args.benchmark, 4, scale=args.scale,
                           seed=args.seed)
    config = cohort_config([1] * 4)
    profiles = build_profiles(traces, config.l1)
    sw = config.latencies.slot_width
    rows = []
    for theta in args.sweep:
        thetas = [theta] + [args.corunner_theta] * 3
        own_wcl = wcl_miss(thetas, 0, sw)
        counts = profiles[0].analyze(theta, own_wcl)
        wcml = counts.m_hit * config.latencies.hit + counts.m_miss * own_wcl
        rows.append(
            [theta, counts.m_hit, f"{counts.hit_rate:.0%}", wcml,
             wcl_miss(thetas, 1, sw)]
        )
    print(format_table(
        ["θ_0", "guaranteed hits", "hit rate", "c0 WCML bound",
         "co-runner WCL"],
        rows,
        title=f"Timer trade-off on {args.benchmark} "
        f"(co-runners θ={args.corunner_theta})",
    ))
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    """``cohort optimize``: run the GA timer optimization engine."""
    traces = splash_traces(args.benchmark, 4, scale=args.scale, seed=args.seed)
    config = cohort_config([1] * 4)
    profiles = build_profiles(traces, config.l1)
    ga_log = None
    if args.metrics_out:
        from repro.obs import GAGenerationLog

        ga_log = GAGenerationLog()
    if args.sim_fitness:
        return _optimize_sim_fitness(args, config, traces, profiles, ga_log)
    engine = OptimizationEngine(profiles, LatencyParams(), _ga_config(args))
    result = engine.optimize(
        timed=[True] * 4, jobs=args.jobs, on_generation=ga_log,
        checkpoint_path=args.checkpoint,
    )
    if ga_log is not None:
        ga_log.write_jsonl(args.metrics_out)
        print(f"GA generation log written to {args.metrics_out}")
    print(f"optimized thetas for {args.benchmark}: {result.thetas}")
    print(f"objective (avg per-access WCML): {result.objective:.2f}")
    print(f"feasible: {result.feasible}, GA evaluations: "
          f"{result.ga.evaluations}, wall time: {result.wall_seconds:.1f}s")
    rows = [
        [f"c{b.core_id}", b.m_hit, b.m_miss, b.wcl, b.wcml]
        for b in result.bounds
    ]
    print(format_table(["core", "M_hit", "M_miss", "WCL", "WCML"], rows))
    if args.manifest_out:
        _emit_manifest(
            args.manifest_out, "optimize", args.benchmark,
            config=config, traces=traces,
            metrics={
                "objective": result.objective,
                "feasible": result.feasible,
                "ga_evaluations": result.ga.evaluations,
                "wall_seconds": result.wall_seconds,
                "thetas": ",".join(str(t) for t in result.thetas),
            },
            seed=args.seed,
            artifact_paths=[p for p in (args.metrics_out,) if p],
        )
    return 0


def _optimize_sim_fitness(args, config, traces, profiles, ga_log) -> int:
    """The measured-objective GA: fitness by simulation, batched in
    lock-step per generation (constraint C1 stays analytic)."""
    import time

    from repro.opt import GeneticAlgorithm, SimulationFitness, TimerProblem

    problem = TimerProblem(profiles, LatencyParams(), timed=[True] * 4)
    fit = SimulationFitness(problem, config, traces, engine=args.engine)
    ga = GeneticAlgorithm(
        problem.gene_bounds(), fit.fitness, _ga_config(args), map_fn=fit
    )
    started = time.perf_counter()
    result = ga.run(on_generation=ga_log, checkpoint_path=args.checkpoint)
    wall = time.perf_counter() - started
    if ga_log is not None:
        ga_log.write_jsonl(args.metrics_out)
        print(f"GA generation log written to {args.metrics_out}")
    evaluation = problem.evaluate(result.best_genes)
    print(f"optimized thetas for {args.benchmark} (simulated fitness): "
          f"{evaluation.thetas}")
    print(f"objective (avg measured latency/access): "
          f"{result.best_fitness:.2f}")
    print(f"feasible (analytic C1): {evaluation.feasible}, GA evaluations: "
          f"{result.evaluations}, wall time: {wall:.1f}s")
    tele = fit.telemetry()
    print(f"engine={tele['engine']}: {tele['jobs_executed']} simulations "
          f"({tele['lockstep_jobs']} in {tele['lockstep_groups']} lock-step "
          f"groups), {tele['cache_hits']} memoized")
    rows = [
        [f"c{b.core_id}", b.m_hit, b.m_miss, b.wcl, b.wcml]
        for b in evaluation.bounds
    ]
    print(format_table(["core", "M_hit", "M_miss", "WCL", "WCML"], rows))
    if args.manifest_out:
        _emit_manifest(
            args.manifest_out, "optimize", f"{args.benchmark} sim-fitness",
            config=config, traces=traces,
            metrics={
                "objective": result.best_fitness,
                "feasible": evaluation.feasible,
                "ga_evaluations": result.evaluations,
                "wall_seconds": wall,
                "thetas": ",".join(str(t) for t in evaluation.thetas),
                "sim_jobs_executed": tele["jobs_executed"],
                "sim_cache_hits": tele["cache_hits"],
                "lockstep_groups": tele["lockstep_groups"],
                "lockstep_jobs": tele["lockstep_jobs"],
            },
            engine=args.engine, seed=args.seed,
            artifact_paths=[p for p in (args.metrics_out,) if p],
        )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """``cohort faults``: seeded fault-injection campaigns + detection matrix."""
    from repro.fi import FaultKind, run_campaigns

    kinds = None
    if args.kinds:
        kinds = [FaultKind(k) for k in args.kinds]
    traces = splash_traces(args.benchmark, len(args.thetas),
                           scale=args.scale, seed=args.seed)
    report = run_campaigns(
        cohort_config(args.thetas),
        traces,
        campaigns=args.campaigns,
        seed=args.seed,
        kinds=kinds,
        n_faults=args.faults_per_campaign,
        response=args.response,
    )
    print(f"{args.campaigns} campaigns on {args.benchmark} "
          f"(baseline {report.baseline_cycles:,} cycles, "
          f"response={report.response})")
    print()
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\ndetection matrix written to {args.json_out}")
    silent = report.silent_corruptions()
    if silent:
        print(f"\n{len(silent)} SILENT CORRUPTION(S):", file=sys.stderr)
        for c in silent:
            print(f"  campaign {c.index} ({c.kind}, seed {c.seed}): "
                  f"{c.detail}", file=sys.stderr)
    # The exit policy itself lives in the shipped "faults" gate spec:
    # build the campaign manifest and let the one engine decide.
    from repro.qa import build_manifest, evaluate_spec, load_spec
    from repro.qa import write_manifest

    totals = report.totals()
    manifest = build_manifest(
        "faults", f"{args.benchmark} x{args.campaigns}",
        config=cohort_config(args.thetas), traces=traces,
        metrics={
            "campaigns": len(report.campaigns),
            "injections": sum(
                c.injections.get("injected", 0) for c in report.campaigns
            ),
            "detected": totals["detected"],
            "survived": totals["survived"],
            "silent_corruptions": totals["silent_corruption"],
            "baseline_cycles": report.baseline_cycles,
        },
        seed=args.seed,
        artifact_paths=[args.json_out] if args.json_out else (),
        environment={"response": report.response},
    )
    if args.manifest_out:
        fingerprint = write_manifest(manifest, args.manifest_out)
        print(f"run manifest written to {args.manifest_out} "
              f"(fingerprint {fingerprint[:12]})")
    gate = evaluate_spec(load_spec("faults"), manifest)
    if not gate.passed:
        print(file=sys.stderr)
        print(gate.render(), file=sys.stderr)
    return gate.exit_code


def _load_trace_file(path: str):
    from repro.sim.trace import Trace

    if path.endswith(".npz"):
        return Trace.load(path)
    with open(path) as fh:
        return Trace.from_csv(fh.read())


def cmd_trace_generate(args: argparse.Namespace) -> int:
    """``cohort trace generate``: write benchmark traces to disk."""
    import os

    traces = splash_traces(args.benchmark, args.cores,
                           scale=args.scale, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    for core_id, trace in enumerate(traces):
        stem = os.path.join(args.out, f"{args.benchmark}_c{core_id}")
        if args.format == "npz":
            trace.save(stem + ".npz")
        else:
            with open(stem + ".csv", "w") as fh:
                fh.write(trace.to_csv())
    print(f"wrote {len(traces)} {args.format} traces to {args.out}/")
    return 0


def cmd_trace_inspect(args: argparse.Namespace) -> int:
    """``cohort trace inspect``: summarise trace files."""
    rows = []
    for path in args.files:
        trace = _load_trace_file(path)
        rows.append(
            [
                path,
                len(trace),
                trace.unique_lines(64),
                f"{trace.write_ratio:.2f}",
                int(trace.gaps.sum()),
            ]
        )
    print(format_table(
        ["trace", "accesses", "lines", "write ratio", "compute cycles"],
        rows,
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """``cohort simulate``: one simulation run with bounds next to measurements."""
    if args.config:
        from repro.params import load_config

        base = load_config(args.config)
        args.thetas = base.thetas
    if args.trace_files:
        traces = [_load_trace_file(p) for p in args.trace_files]
        if len(traces) != len(args.thetas):
            raise SystemExit(
                f"{len(args.thetas)} thetas but {len(traces)} trace files"
            )
    else:
        traces = splash_traces(args.benchmark, len(args.thetas),
                               scale=args.scale, seed=args.seed)
    if args.config:
        from repro.params import load_config

        config = load_config(args.config)
    else:
        config = cohort_config(args.thetas)
    if args.protocol is not None:
        from dataclasses import replace

        config = replace(config, protocol=args.protocol)
    from repro.sim.kernel import SimulationLimitError
    from repro.sim.oracle import CoherenceViolationError

    telemetry = None
    try:
        if args.trace_out or args.metrics_out:
            from repro.obs import Telemetry
            from repro.sim.system import System

            # Telemetry needs the full event stream, which only the
            # per-event engines publish; --engine is ignored here.
            system = System(config, traces)
            telemetry = Telemetry.attach(
                system, sample_every=args.sample_every, label="simulate"
            )
            stats = system.run()
        elif args.engine == "lockstep":
            from repro.sim.lockstep import run_simulation_lockstep

            stats = run_simulation_lockstep(config, traces)
        else:
            stats = run_simulation(
                config, traces, fast_path=args.engine != "seed"
            )
    except CoherenceViolationError as exc:
        print(f"coherence violation: {exc}", file=sys.stderr)
        if not args.trace_out:
            print("hint: rerun with --trace-out run.trace.json to capture "
                  "the event trace leading up to the violation",
                  file=sys.stderr)
        return 1
    except SimulationLimitError as exc:
        print(f"simulation limit: {exc}", file=sys.stderr)
        if not args.trace_out:
            print("hint: rerun with --trace-out run.trace.json to see "
                  "where the run stopped making progress", file=sys.stderr)
        return 1
    profiles = build_profiles(traces, config.l1)
    bounds = cohort_bounds(args.thetas, profiles, config.latencies)
    rows = []
    for core, bound in zip(stats.cores, bounds):
        rows.append([
            f"c{core.core_id}", core.hits, core.misses,
            core.total_memory_latency, bound.wcml, core.max_request_latency,
            bound.wcl,
        ])
    source = "trace files" if args.trace_files else args.benchmark
    print(format_table(
        ["core", "hits", "misses", "WCML (meas)", "WCML (bound)",
         "max lat (meas)", "WCL (bound)"],
        rows,
        title=f"{source} with Θ={args.thetas}",
    ))
    print(f"execution time: {stats.execution_time:,} cycles")
    if telemetry is not None:
        print()
        print(telemetry.render_blame())
        if args.trace_out:
            telemetry.write_trace(args.trace_out)
            print(f"trace-event JSON written to {args.trace_out} "
                  "(load in Perfetto / chrome://tracing)")
        if args.metrics_out:
            telemetry.write_report(args.metrics_out)
            print(f"run report written to {args.metrics_out}")
    if args.manifest_out:
        from repro.runner import stats_to_dict

        _emit_manifest(
            args.manifest_out, "simulate",
            f"{source} thetas={args.thetas}",
            config=config, traces=traces, stats=stats_to_dict(stats),
            engine="event" if telemetry is not None else args.engine,
            seed=args.seed,
            artifact_paths=[
                p for p in (args.trace_out, args.metrics_out) if p
            ],
        )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """``cohort metrics``: summarise saved telemetry artefacts."""
    from repro.obs import load_jsonl, summarise

    status = 0
    for path in args.files:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except ValueError:
            # Not one JSON document: try JSON Lines (GA generation log).
            try:
                doc = load_jsonl(path)
            except ValueError:
                print(f"{path}: neither JSON nor JSONL", file=sys.stderr)
                status = 1
                continue
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if len(args.files) > 1:
            print(f"== {path}")
        print(summarise(doc))
    return status


def _parse_gate_params(pairs) -> dict:
    """``--param key=value`` overrides; values are parsed as JSON."""
    out = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except ValueError:
            out[key] = raw
    return out


def _run_gate(args, candidate_path: str, baseline_path) -> int:
    """Shared body of ``gate run`` and ``gate diff``."""
    from repro.qa import evaluate_spec, load_manifest, load_spec

    try:
        spec = load_spec(args.spec)
    except (OSError, ValueError) as exc:
        print(f"cannot load gate spec: {exc}", file=sys.stderr)
        return 2
    try:
        candidate = load_manifest(candidate_path)
        baseline = (
            load_manifest(baseline_path) if baseline_path else None
        )
    except (OSError, ValueError) as exc:
        print(f"cannot load manifest: {exc}", file=sys.stderr)
        return 2
    try:
        report = evaluate_spec(
            spec, candidate, baseline,
            _parse_gate_params(args.param) or None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"verdict report written to {args.report_out}")
    return report.exit_code


def cmd_gate_run(args: argparse.Namespace) -> int:
    """``cohort gate run``: evaluate a spec over one manifest."""
    return _run_gate(args, args.manifest, args.baseline)


def cmd_gate_diff(args: argparse.Namespace) -> int:
    """``cohort gate diff``: compare candidate against baseline."""
    return _run_gate(args, args.candidate, args.baseline)


def cmd_gate_promote(args: argparse.Namespace) -> int:
    """``cohort gate promote``: diff, then install candidate on pass."""
    import shutil

    status = _run_gate(args, args.candidate, args.baseline)
    if status != 0:
        print("promotion refused: candidate failed the gate",
              file=sys.stderr)
        return status
    shutil.copyfile(args.candidate, args.baseline)
    print(f"promoted {args.candidate} -> {args.baseline}")
    return 0


def cmd_gate_list(args: argparse.Namespace) -> int:
    """``cohort gate list``: the gate specs shipped with the package."""
    from repro.qa import available_specs, load_spec

    for name in available_specs():
        spec = load_spec(name)
        pair = " [baseline+candidate pair]" if spec.requires_baseline else ""
        print(f"{name}/{spec.version}: {len(spec.questions)} questions"
              f"{pair}")
        for q in spec.questions:
            print(f"  {q.id} [{q.severity}] — {q.question}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``cohort serve``: the batched, backpressured simulation service."""
    import asyncio

    from repro.obs import OpLogger
    from repro.runner import SweepRunner
    from repro.serve import BatchingService, run_server

    runner_kwargs = dict(
        jobs=args.jobs, timeout=args.job_timeout, engine=args.engine,
        cache_budget_bytes=args.cache_budget,
    )
    if args.cache_dir is not None:
        runner_kwargs["cache_dir"] = args.cache_dir
    runner = SweepRunner(**runner_kwargs)
    service = BatchingService(
        runner,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        queue_limit=args.queue_limit,
        retry_after=args.retry_after,
        oplog=OpLogger(path=args.oplog) if args.oplog else None,
    )
    asyncio.run(
        run_server(
            service, args.host, args.port, metrics_out=args.metrics_out,
            trace_out=args.trace_out, manifest_out=args.manifest_out,
        )
    )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """``cohort fleet``: a supervised, self-healing shard fleet.

    Spawns N ``cohort serve`` shard subprocesses sharing one hardened
    result cache, routes jobs by consistent hash of their content key,
    journals every accepted job to a per-shard write-ahead intake log
    before acknowledging it, and restarts crashed/hung shards with
    capped exponential backoff while live shards absorb the failover.
    """
    import asyncio

    from repro.obs import OpLogger
    from repro.serve.fleet import ShardSupervisor, run_fleet

    supervisor = ShardSupervisor(
        shards=args.shards,
        host=args.host,
        fleet_dir=args.fleet_dir,
        cache_dir=args.cache_dir,
        shard_jobs=args.jobs,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        shard_queue_limit=args.queue_limit,
        engine=args.engine,
        job_timeout=args.job_timeout,
        cache_budget_bytes=args.cache_budget,
        admission_limit=args.admission_limit,
        retry_after=args.retry_after,
        heartbeat_deadline=args.heartbeat_deadline,
        oplog=OpLogger(path=args.oplog, component="fleet")
        if args.oplog else None,
    )
    asyncio.run(
        run_fleet(
            supervisor, args.host, args.port, metrics_out=args.metrics_out,
        )
    )
    return 0


def cmd_obs_tail(args: argparse.Namespace) -> int:
    """``cohort obs tail``: print the last N oplog events, one per line."""
    from repro.obs.ops import format_event, read_oplog

    try:
        events = read_oplog(args.oplog)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for event in events[-args.lines:]:
        print(format_event(event))
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """``cohort obs report``: event counts and lifecycle summary."""
    from repro.obs.ops import compute_slo, read_oplog, render_slo

    try:
        events = read_oplog(args.oplog)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    counts = {}
    for event in events:
        key = (event.get("component", "?"), event.get("event", "?"))
        counts[key] = counts.get(key, 0) + 1
    rows = [
        [component, name, count]
        for (component, name), count in sorted(counts.items())
    ]
    print(format_table(
        ["component", "event", "count"], rows,
        title=f"{args.oplog}: {len(events)} events",
    ))
    print()
    print(render_slo(compute_slo(events)))
    return 0


def cmd_obs_slo(args: argparse.Namespace) -> int:
    """``cohort obs slo``: compute SLO inputs; optionally gate them.

    Writes a ``kind="slo"`` run manifest with ``--manifest-out`` (the
    shape ``cohort gate run --spec slo`` consumes) and, with
    ``--gate``, evaluates the shipped ``slo`` spec immediately — the
    exit code is then the gate verdict.
    """
    from repro.obs.ops import compute_slo, read_oplog, render_slo

    try:
        events = read_oplog(args.oplog)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    metrics = compute_slo(events)
    print(render_slo(metrics))
    manifest = None
    if args.manifest_out or args.gate:
        from repro.qa import build_manifest

        manifest = build_manifest(
            "slo", args.label or args.oplog, metrics=metrics,
            artifact_paths=[args.oplog],
        )
    if args.manifest_out:
        from repro.qa import write_manifest

        fingerprint = write_manifest(manifest, args.manifest_out)
        print(f"slo manifest written to {args.manifest_out} "
              f"(fingerprint {fingerprint[:12]})")
    if args.gate:
        from repro.qa import evaluate_spec, load_spec

        report = evaluate_spec(
            load_spec("slo"), manifest,
            params=_parse_gate_params(args.param) or None,
        )
        print()
        print(report.render())
        return report.exit_code
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """``cohort submit``: send jobs to a running ``cohort serve``."""
    from repro.serve import BackpressureError, ServeClient

    theta_sets = args.theta_set or [args.thetas]
    specs = [
        {
            "benchmark": args.benchmark,
            "thetas": thetas,
            "scale": args.scale,
            "seed": args.seed,
        }
        for thetas in theta_sets
    ]
    client = ServeClient(args.url, timeout=args.timeout)
    try:
        accepted = client.submit(specs, max_retries=args.max_retries)
    except BackpressureError as exc:
        print(
            f"rejected: queue full (server suggests retrying in "
            f"{exc.retry_after}s)",
            file=sys.stderr,
        )
        return 1
    for doc in accepted:
        print(f"accepted {doc['id']} ({doc['spec']['thetas']})")
    if args.no_wait:
        return 0
    records = client.wait(
        [doc["id"] for doc in accepted], timeout=args.timeout
    )
    status = 0
    for doc in accepted:
        record = records[doc["id"]]
        if record["status"] == "done":
            result = record["result"]
            print(
                f"{doc['id']}: done final_cycle={result['final_cycle']:,} "
                f"execution_time={result['execution_time']:,}"
            )
        else:
            print(f"{doc['id']}: FAILED — {record['error']}", file=sys.stderr)
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``cohort`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="cohort",
        description="CoHoRT (DATE 2025) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="related-work challenge matrix")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table2", help="per-mode optimized timer values")
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    _add_common(p)
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("fig5", help="WCML: CoHoRT vs PCC vs PENDULUM")
    p.add_argument("--config", default="all_cr", choices=sorted(FIG5_CONFIGS))
    p.add_argument("-b", "--benchmarks", nargs="+", default=["fft", "lu"],
                   choices=benchmark_names())
    p.add_argument("--non-perfect-llc", action="store_true",
                   help="use the non-perfect LLC + DRAM model (footnote 1)")
    _add_metrics_out(p, "sweep cache/timing counters")
    _add_manifest_out(p)
    _add_engine(p)
    _add_common(p)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="normalised execution time")
    p.add_argument("--config", default="all_cr", choices=sorted(FIG5_CONFIGS))
    p.add_argument("-b", "--benchmarks", nargs="+",
                   default=["fft", "lu", "radix"], choices=benchmark_names())
    p.add_argument("--non-perfect-llc", action="store_true")
    p.add_argument("--pmsi", action="store_true",
                   help="add the PMSI-style predictable baseline "
                        "(protocol registry plugin) as a fifth column")
    _add_metrics_out(p, "sweep cache/timing counters")
    _add_manifest_out(p)
    _add_engine(p)
    _add_common(p)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig7", help="mode-switch adaptation")
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    _add_manifest_out(p)
    _add_common(p)
    p.set_defaults(fn=cmd_fig7)

    p = sub.add_parser("all", help="run the complete reproduction")
    p.add_argument("-b", "--benchmarks", nargs="+",
                   default=["fft", "lu", "radix", "barnes"],
                   choices=benchmark_names())
    p.add_argument("-o", "--out", help="also write the report to this file")
    _add_common(p)
    p.set_defaults(fn=cmd_all)

    p = sub.add_parser("optimize", help="run the timer optimization engine")
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    p.add_argument("--checkpoint", metavar="FILE",
                   help="save GA state to FILE each generation and resume "
                        "from it if present (schema-checked)")
    p.add_argument("--sim-fitness", action="store_true",
                   help="score timer vectors by *simulated* average memory "
                        "latency instead of the analytic WCML bound; each "
                        "GA generation is batched through the lock-step "
                        "engine (constraint C1 stays analytic)")
    _add_metrics_out(p, "the per-generation GA log (JSON Lines)")
    _add_manifest_out(p)
    _add_engine(p)
    _add_common(p)
    p.set_defaults(fn=cmd_optimize)

    from repro.fi.plan import ALL_KINDS

    p = sub.add_parser(
        "faults",
        help="seeded fault-injection campaigns (detection matrix)",
    )
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    p.add_argument("-t", "--thetas", nargs="+", type=int,
                   default=[100, 20, 20, 20],
                   help="per-core timers (-1 = MSI)")
    p.add_argument("--campaigns", type=_positive_int, default=14,
                   help="number of seeded campaigns to run")
    p.add_argument("--kinds", nargs="+", metavar="KIND",
                   choices=[k.value for k in ALL_KINDS],
                   help="restrict to these fault kinds (default: all)")
    p.add_argument("--faults-per-campaign", type=_positive_int, default=2,
                   help="faults injected per campaign plan")
    p.add_argument("--response", default="degrade_to_msi",
                   choices=("degrade_to_msi", "none"),
                   help="self-healing response to detected timer faults")
    p.add_argument("--json-out", metavar="FILE",
                   help="write the full detection-matrix report to FILE")
    _add_manifest_out(p)
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign master seed (trace seed rides along)")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("simulate", help="one simulation run")
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    p.add_argument("-t", "--thetas", nargs="+", type=int,
                   default=[100, 20, 20, 20],
                   help="per-core timers (-1 = MSI)")
    p.add_argument("--trace-files", nargs="+",
                   help="run these trace files (.npz/.csv) instead of a "
                        "generated benchmark; one per core")
    p.add_argument("--config",
                   help="load the full system configuration from a JSON "
                        "file (see repro.params.save_config); overrides "
                        "--thetas")
    p.add_argument("--protocol", type=_protocol_name, default=None,
                   help="coherence protocol to simulate (any registered "
                        "name, e.g. timed_msi, msi, pmsi); overrides the "
                        "configuration's protocol field")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace-event / Perfetto JSON "
                        "trace of the run to FILE")
    _add_metrics_out(p, "the structured JSON run report")
    _add_manifest_out(p)
    p.add_argument("--sample-every", type=int, default=500, metavar="CYCLES",
                   help="time-series sampling cadence for the telemetry "
                        "counters (0 disables sampling; only active with "
                        "--trace-out/--metrics-out)")
    _add_engine(p, default="fast")
    _add_common(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("metrics",
                       help="summarise saved telemetry artefacts "
                            "(run reports, traces, sweep metrics, GA logs)")
    p.add_argument("files", nargs="+",
                   help="files written by --trace-out/--metrics-out")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "serve",
        help="batched, backpressured simulation service over HTTP",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = ephemeral; the bound port is printed)")
    p.add_argument("-j", "--jobs", type=_positive_int, default=1,
                   help="worker processes of the underlying sweep runner")
    p.add_argument("--max-batch", type=_positive_int, default=8,
                   help="largest batch dispatched to the runner")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="seconds to wait for submissions to coalesce")
    p.add_argument("--queue-limit", type=_positive_int, default=64,
                   help="admission queue bound; beyond it submissions "
                        "get 429 + Retry-After")
    p.add_argument("--retry-after", type=float, default=0.5,
                   help="Retry-After hint (seconds) on backpressure")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory shared by all clients "
                        "(default: the runner's standard cache)")
    p.add_argument("--cache-budget", type=_nonneg_int, default=0,
                   metavar="BYTES",
                   help="on-disk result-cache size budget in bytes; "
                        "oldest entries are evicted (LRU by mtime, under "
                        "a cross-process lock) to stay within it "
                        "(default: 0 = unbounded)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--metrics-out", default=None,
                   help="write a final /metrics snapshot here on drain "
                        "(atomic tmp-file + rename)")
    p.add_argument("--oplog", default=None, metavar="FILE",
                   help="append structured JSON-lines operational events "
                        "(schema repro.obs/oplog/1) to FILE; inspect with "
                        "`cohort obs tail|report|slo`")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome-trace/Perfetto JSON of per-request "
                        "service-lifecycle spans here on drain")
    p.add_argument("--manifest-out", default=None, metavar="FILE",
                   help="write a run manifest wrapping the final metrics "
                        "snapshot here on drain")
    _add_engine(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="supervised self-healing shard fleet (N serve subprocesses)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8780,
                   help="router TCP port (0 = ephemeral; shards always "
                        "bind ephemeral ports)")
    p.add_argument("--shards", type=_positive_int, default=2,
                   help="serve shard subprocesses to supervise")
    p.add_argument("--fleet-dir", default=".cohort_fleet",
                   help="state directory: per-shard intake journals, "
                        "logs, oplogs (default: .cohort_fleet)")
    p.add_argument("-j", "--jobs", type=_positive_int, default=1,
                   help="worker processes per shard's sweep runner")
    p.add_argument("--max-batch", type=_positive_int, default=8,
                   help="largest chunk dispatched to one shard at once")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="per-shard batching window in seconds")
    p.add_argument("--queue-limit", type=_positive_int, default=64,
                   help="per-shard admission queue bound")
    p.add_argument("--admission-limit", type=_positive_int, default=256,
                   help="fleet-wide pending-job bound; beyond it "
                        "submissions get 429 + Retry-After")
    p.add_argument("--retry-after", type=float, default=0.5,
                   help="Retry-After hint (seconds) on backpressure")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory shared by every shard "
                        "(default: <fleet-dir>/cache)")
    p.add_argument("--cache-budget", type=_nonneg_int, default=0,
                   metavar="BYTES",
                   help="per-shard view of the shared cache's size "
                        "budget; see `cohort serve --cache-budget`")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--heartbeat-deadline", type=float, default=3.0,
                   help="seconds without a healthy /healthz answer "
                        "before a shard is declared down and restarted")
    p.add_argument("--metrics-out", default=None,
                   help="write a final fleet /metrics snapshot here on "
                        "drain (atomic tmp-file + rename)")
    p.add_argument("--oplog", default=None, metavar="FILE",
                   help="append fleet lifecycle events (admit, dispatch, "
                        "shard_down, failover, journal_replay, retire) "
                        "to FILE")
    _add_engine(p)
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "obs",
        help="operational-log tooling (tail, report, SLO gating)",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    t = obs_sub.add_parser("tail", help="print the last N oplog events")
    t.add_argument("oplog", help="JSON-lines oplog written by "
                                 "`cohort serve --oplog`")
    t.add_argument("-n", "--lines", type=_positive_int, default=20,
                   help="events to print (default: 20)")
    t.set_defaults(fn=cmd_obs_tail)

    rp = obs_sub.add_parser(
        "report", help="event counts + request-lifecycle summary"
    )
    rp.add_argument("oplog")
    rp.set_defaults(fn=cmd_obs_report)

    s = obs_sub.add_parser(
        "slo",
        help="compute SLO inputs from an oplog; emit a gateable manifest",
    )
    s.add_argument("oplog")
    s.add_argument("--label", default=None,
                   help="manifest label (default: the oplog path)")
    s.add_argument("--manifest-out", metavar="FILE",
                   help="write a kind=slo run manifest for "
                        "`cohort gate run --spec slo`")
    s.add_argument("--gate", action="store_true",
                   help="evaluate the shipped slo gate spec immediately; "
                        "exit code becomes the verdict")
    s.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="override an slo spec param (with --gate); "
                        "repeatable")
    s.set_defaults(fn=cmd_obs_slo)

    p = sub.add_parser("submit", help="submit jobs to a running serve")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("-b", "--benchmark", default="fft")
    p.add_argument("-t", "--thetas", type=int, nargs="+",
                   default=[100, 20, 20, 20])
    p.add_argument("--theta-set", type=int, nargs="+", action="append",
                   help="repeatable: one job per timer vector")
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-retries", type=int, default=3,
                   help="retries after a 429 before giving up")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="client-side wait timeout in seconds")
    p.add_argument("--no-wait", action="store_true",
                   help="submit and exit without polling for results")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "gate",
        help="declarative quality gates over run manifests",
    )
    gate_sub = p.add_subparsers(dest="gate_command", required=True)

    r = gate_sub.add_parser(
        "run",
        help="evaluate a gate spec over one manifest "
             "(optionally against a baseline)",
    )
    r.add_argument("--spec", required=True,
                   help="shipped spec name (`cohort gate list`) or a "
                        "spec JSON file path")
    r.add_argument("--manifest", required=True,
                   help="candidate run manifest (written by --manifest-out)")
    r.add_argument("--baseline",
                   help="baseline run manifest for pair assertions")
    r.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="override a spec param (value parsed as JSON); "
                        "repeatable")
    r.add_argument("--report-out", metavar="FILE",
                   help="write the verdict report JSON to FILE")
    r.set_defaults(fn=cmd_gate_run)

    d = gate_sub.add_parser(
        "diff",
        help="compare a candidate manifest against a baseline "
             "(default spec: promotion)",
    )
    d.add_argument("baseline", help="baseline run manifest")
    d.add_argument("candidate", help="candidate run manifest")
    d.add_argument("--spec", default="promotion")
    d.add_argument("--param", action="append", metavar="KEY=VALUE")
    d.add_argument("--report-out", metavar="FILE")
    d.set_defaults(fn=cmd_gate_diff)

    pr = gate_sub.add_parser(
        "promote",
        help="diff, then copy the candidate manifest over the baseline "
             "path when the gate passes",
    )
    pr.add_argument("baseline", help="baseline manifest (overwritten on pass)")
    pr.add_argument("candidate", help="candidate run manifest")
    pr.add_argument("--spec", default="promotion")
    pr.add_argument("--param", action="append", metavar="KEY=VALUE")
    pr.add_argument("--report-out", metavar="FILE")
    pr.set_defaults(fn=cmd_gate_promote)

    ls = gate_sub.add_parser("list", help="list shipped gate specs")
    ls.set_defaults(fn=cmd_gate_list)

    p = sub.add_parser("characterize", help="workload characterisation")
    _add_common(p)
    p.set_defaults(fn=cmd_characterize)

    p = sub.add_parser("headroom", help="per-mode requirement headroom")
    p.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    _add_common(p)
    p.set_defaults(fn=cmd_headroom)

    p = sub.add_parser("sweep", help="timer trade-off curve for core 0")
    p.add_argument("-b", "--benchmark", default="barnes",
                   choices=benchmark_names())
    p.add_argument("--sweep", nargs="+", type=int,
                   default=[1, 5, 15, 40, 100, 250, 600])
    p.add_argument("--corunner-theta", type=int, default=60)
    _add_common(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("trace", help="trace-file tooling")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    g = trace_sub.add_parser("generate", help="write benchmark traces to disk")
    g.add_argument("-b", "--benchmark", default="fft",
                   choices=benchmark_names())
    g.add_argument("-o", "--out", required=True, help="output directory")
    g.add_argument("--cores", type=int, default=4)
    g.add_argument("--format", choices=("npz", "csv"), default="npz")
    _add_common(g)
    g.set_defaults(fn=cmd_trace_generate)

    i = trace_sub.add_parser("inspect", help="summarise trace files")
    i.add_argument("files", nargs="+")
    i.set_defaults(fn=cmd_trace_inspect)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
