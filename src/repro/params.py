"""Global configuration objects for the CoHoRT reproduction.

Everything the paper's experimental setup (Section VIII) parameterises is
collected here: cache geometries, bus latencies, per-core coherence
configuration (the timer registers) and whole-system simulation options.

The defaults mirror the paper: four out-of-order cores, 16 KiB direct-mapped
private caches with 64-byte lines, an 8-way shared LLC, and hit / request /
data latencies of 1 / 4 / 50 cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

#: Special timer-register value that reduces a core's protocol to plain
#: snooping MSI (Section III-B of the paper).
MSI_THETA = -1


class MemOp(enum.IntEnum):
    """A memory operation kind as seen by the cache hierarchy."""

    LOAD = 0
    STORE = 1


class ArbiterKind(str, enum.Enum):
    """Shared-bus arbitration policies implemented by :mod:`repro.sim.arbiter`."""

    RROF = "rrof"          #: Round-Robin Oldest-First (CoHoRT / PCC).
    ROUND_ROBIN = "rr"     #: Plain round-robin (rotates on every grant).
    FCFS = "fcfs"          #: COTS first-come first-serve (baseline MSI system).
    TDM = "tdm"            #: Time-division multiplexing over critical cores
    #: with non-critical cores served only in slack (PENDULUM).


class CriticalityLevel(enum.IntEnum):
    """Convenience names for the criticality levels used in the evaluation.

    The model itself supports any number of levels (``1`` is the lowest);
    these names exist only for readable example/benchmark code.
    """

    LEVEL_1 = 1
    LEVEL_2 = 2
    LEVEL_3 = 3
    LEVEL_4 = 4
    LEVEL_5 = 5


@dataclass(frozen=True)
class LatencyParams:
    """Bus and cache latencies, in cycles.

    ``slot_width`` (``SW`` in the paper's Equation 1) is the worst-case bus
    occupancy of one complete transaction: a request broadcast followed by a
    data transfer.
    """

    hit: int = 1
    request: int = 4
    data: int = 50

    def __post_init__(self) -> None:
        if self.hit < 1 or self.request < 1 or self.data < 1:
            raise ValueError("all latencies must be at least one cycle")

    @property
    def slot_width(self) -> int:
        """``SW``: request latency plus data latency."""
        return self.request + self.data


@dataclass(frozen=True)
class CacheGeometry:
    """Size / associativity / line size of one cache level."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    ways: int = 1

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                "cache size must be a whole number of (line_bytes * ways)"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def set_index(self, line_addr: int) -> int:
        """Map a line address (byte address >> log2(line)) to a set index."""
        return line_addr % self.num_sets


@dataclass(frozen=True)
class CoreConfig:
    """Per-core coherence and criticality configuration.

    ``theta`` is the coherence timer threshold register of Section III-B:
    ``theta >= 1`` selects time-based coherence with that protection window,
    while ``theta == MSI_THETA`` (-1) freezes the countdown counter and the
    core behaves exactly as a snooping MSI core.

    ``criticality`` is the level :math:`l_i` of the task currently mapped to
    the core; ``critical`` is the PENDULUM-style binary Cr/nCr flag derived
    from it by the experiment configurations.
    """

    theta: int = MSI_THETA
    criticality: int = 1
    critical: bool = True

    def __post_init__(self) -> None:
        if self.theta != MSI_THETA and self.theta < 1:
            raise ValueError(
                f"theta must be >= 1 or MSI_THETA (-1), got {self.theta}"
            )
        if self.criticality < 1:
            raise ValueError("criticality levels start at 1")

    @property
    def is_msi(self) -> bool:
        return self.theta == MSI_THETA

    @property
    def is_timed(self) -> bool:
        return self.theta != MSI_THETA


@dataclass(frozen=True)
class SimConfig:
    """Whole-system configuration for :class:`repro.sim.system.System`."""

    num_cores: int = 4
    cores: Optional[Sequence[CoreConfig]] = None
    l1: CacheGeometry = field(default_factory=CacheGeometry)
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=1024 * 1024, line_bytes=64, ways=8
        )
    )
    latencies: LatencyParams = field(default_factory=LatencyParams)
    arbiter: ArbiterKind = ArbiterKind.RROF
    #: Name of the coherence protocol, resolved through
    #: :func:`repro.sim.protocols.get_protocol` at system-build time.
    #: ``"timed_msi"`` is CoHoRT's heterogeneous timed/MSI protocol;
    #: ``"msi"`` forces plain snooping MSI on every core and ``"pmsi"``
    #: selects the PMSI-style predictable baseline.  Third-party
    #: protocols registered via :func:`repro.sim.protocols.register` are
    #: selectable here by name.
    protocol: str = "timed_msi"
    #: Perfect LLC (paper's main configuration): every access hits in the LLC.
    perfect_llc: bool = True
    #: Fixed main-memory latency for the non-perfect LLC model (footnote 1).
    dram_latency: int = 100
    #: Route dirty cache-to-cache transfers through the LLC (write-back then
    #: refetch) as the PCC/PMSI family of predictable protocols does.
    via_llc_transfers: bool = False
    #: Serialise eviction write-backs on the main bus instead of the
    #: dedicated write-back port (see :mod:`repro.sim.bus`).
    wb_on_bus: bool = False
    #: Hits-over-misses window of the non-blocking private caches: how many
    #: trace entries a core may run ahead past an outstanding miss.
    runahead_window: int = 8
    #: Enable the golden-value coherence oracle (used by the test-suite).
    check_coherence: bool = False
    #: Safety valve: abort the simulation after this many cycles.
    max_cycles: int = 50_000_000

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.cores is not None and len(self.cores) != self.num_cores:
            raise ValueError(
                f"len(cores)={len(self.cores)} does not match "
                f"num_cores={self.num_cores}"
            )
        if self.l1.line_bytes != self.llc.line_bytes:
            raise ValueError("L1 and LLC must use the same line size")
        if self.runahead_window < 0:
            raise ValueError("runahead_window must be non-negative")
        if self.dram_latency < 0:
            raise ValueError("dram_latency must be non-negative")

    def core_config(self, core_id: int) -> CoreConfig:
        """The :class:`CoreConfig` for ``core_id`` (defaults to MSI)."""
        if self.cores is None:
            return CoreConfig()
        return self.cores[core_id]

    @property
    def thetas(self) -> List[int]:
        """The timer vector Θ across all cores."""
        return [self.core_config(i).theta for i in range(self.num_cores)]

    def with_thetas(self, thetas: Sequence[int]) -> "SimConfig":
        """A copy of this configuration with the timer vector replaced."""
        if len(thetas) != self.num_cores:
            raise ValueError("one theta per core required")
        base = [self.core_config(i) for i in range(self.num_cores)]
        new_cores = [replace(cfg, theta=int(t)) for cfg, t in zip(base, thetas)]
        return replace(self, cores=tuple(new_cores))


def config_to_dict(config: SimConfig) -> dict:
    """Serialise a :class:`SimConfig` to a plain JSON-compatible dict."""
    return {
        "num_cores": config.num_cores,
        "cores": [
            {
                "theta": cc.theta,
                "criticality": cc.criticality,
                "critical": cc.critical,
            }
            for cc in (
                [config.core_config(i) for i in range(config.num_cores)]
            )
        ],
        "l1": {
            "size_bytes": config.l1.size_bytes,
            "line_bytes": config.l1.line_bytes,
            "ways": config.l1.ways,
        },
        "llc": {
            "size_bytes": config.llc.size_bytes,
            "line_bytes": config.llc.line_bytes,
            "ways": config.llc.ways,
        },
        "latencies": {
            "hit": config.latencies.hit,
            "request": config.latencies.request,
            "data": config.latencies.data,
        },
        "arbiter": config.arbiter.value,
        "protocol": config.protocol,
        "perfect_llc": config.perfect_llc,
        "dram_latency": config.dram_latency,
        "via_llc_transfers": config.via_llc_transfers,
        "wb_on_bus": config.wb_on_bus,
        "runahead_window": config.runahead_window,
    }


def config_from_dict(data: dict) -> SimConfig:
    """Rebuild a :class:`SimConfig` from :func:`config_to_dict` output."""
    cores = tuple(
        CoreConfig(
            theta=int(cc["theta"]),
            criticality=int(cc.get("criticality", 1)),
            critical=bool(cc.get("critical", True)),
        )
        for cc in data["cores"]
    )
    return SimConfig(
        num_cores=int(data["num_cores"]),
        cores=cores,
        l1=CacheGeometry(**data["l1"]),
        llc=CacheGeometry(**data["llc"]),
        latencies=LatencyParams(**data["latencies"]),
        arbiter=ArbiterKind(data["arbiter"]),
        protocol=str(data.get("protocol", "timed_msi")),
        perfect_llc=bool(data.get("perfect_llc", True)),
        dram_latency=int(data.get("dram_latency", 100)),
        via_llc_transfers=bool(data.get("via_llc_transfers", False)),
        wb_on_bus=bool(data.get("wb_on_bus", False)),
        runahead_window=int(data.get("runahead_window", 8)),
    )


def save_config(config: SimConfig, path: str) -> None:
    """Write a configuration to a JSON file."""
    import json

    with open(path, "w") as fh:
        json.dump(config_to_dict(config), fh, indent=2)


def load_config(path: str) -> SimConfig:
    """Read a configuration from a JSON file."""
    import json

    with open(path) as fh:
        return config_from_dict(json.load(fh))


def cohort_config(
    thetas: Sequence[int],
    criticalities: Optional[Sequence[int]] = None,
    critical: Optional[Sequence[bool]] = None,
    **kwargs,
) -> SimConfig:
    """Build a CoHoRT system configuration from a timer vector.

    Convenience constructor used throughout the examples and benchmarks:
    RROF arbitration, heterogeneous timed/MSI coherence per ``thetas``.
    """
    n = len(thetas)
    if criticalities is None:
        criticalities = [1] * n
    if critical is None:
        critical = [t != MSI_THETA for t in thetas]
    cores = tuple(
        CoreConfig(theta=int(t), criticality=int(l), critical=bool(c))
        for t, l, c in zip(thetas, criticalities, critical)
    )
    kwargs.setdefault("arbiter", ArbiterKind.RROF)
    return SimConfig(num_cores=n, cores=cores, **kwargs)


def msi_fcfs_config(num_cores: int = 4, **kwargs) -> SimConfig:
    """The COTS baseline of Figure 6: plain MSI with an FCFS arbiter."""
    cores = tuple(CoreConfig(theta=MSI_THETA) for _ in range(num_cores))
    kwargs.setdefault("arbiter", ArbiterKind.FCFS)
    return SimConfig(num_cores=num_cores, cores=cores, **kwargs)


def pcc_config(num_cores: int = 4, **kwargs) -> SimConfig:
    """The PCC baseline: predictable MSI, RROF, transfers via the LLC."""
    cores = tuple(CoreConfig(theta=MSI_THETA) for _ in range(num_cores))
    kwargs.setdefault("arbiter", ArbiterKind.RROF)
    kwargs.setdefault("via_llc_transfers", True)
    return SimConfig(num_cores=num_cores, cores=cores, **kwargs)


def pmsi_config(num_cores: int = 4, **kwargs) -> SimConfig:
    """A PMSI-style predictable-MSI baseline [Hassan et al.]: snooping
    MSI timing with invalidate-on-share handovers, dirty transfers routed
    through the LLC, and RROF arbitration.  Selected purely through the
    protocol registry (``protocol="pmsi"``) — the engine is unchanged."""
    cores = tuple(CoreConfig(theta=MSI_THETA) for _ in range(num_cores))
    kwargs.setdefault("arbiter", ArbiterKind.RROF)
    kwargs.setdefault("protocol", "pmsi")
    return SimConfig(num_cores=num_cores, cores=cores, **kwargs)


def pendulum_star_config(
    thetas: Sequence[int],
    **kwargs,
) -> SimConfig:
    """The PENDULUM* baseline [17]: requirement-aware timed coherence.

    PENDULUM* introduced per-core timers with guaranteed-hit analysis —
    the requirement-awareness CoHoRT builds on — but every core must run
    the time-based protocol (no heterogeneity, so no MSI cores, and no
    criticality/mode support).  Expressed here as an all-timed CoHoRT
    configuration with RROF arbitration; passing ``MSI_THETA`` is
    rejected to reflect the missing heterogeneity.
    """
    if any(t == MSI_THETA for t in thetas):
        raise ValueError(
            "PENDULUM* has no heterogeneous MSI mode; all cores are timed"
        )
    return cohort_config(list(thetas), critical=[True] * len(thetas), **kwargs)


def pendulum_config(
    critical: Sequence[bool],
    theta: int = 300,
    **kwargs,
) -> SimConfig:
    """The PENDULUM baseline: the time-based protocol with one global
    timer on *every* core (criticality only affects arbitration), TDM
    arbitration over critical cores, non-critical cores served only in
    slack."""
    cores = tuple(
        CoreConfig(
            theta=theta,
            criticality=2 if is_cr else 1,
            critical=bool(is_cr),
        )
        for is_cr in critical
    )
    kwargs.setdefault("arbiter", ArbiterKind.TDM)
    return SimConfig(num_cores=len(critical), cores=cores, **kwargs)
