"""Worst-case timing analysis for CoHoRT and the baseline systems.

* :mod:`repro.analysis.wcl` — per-request worst-case latency bounds
  (Equation 1 and the baselines' bounds).
* :mod:`repro.analysis.wcml` — whole-task worst-case memory latency
  (Equations 2 and 3) and per-system bound builders.
* :mod:`repro.analysis.cache_analysis` — the static in-isolation
  guaranteed-hit analysis that feeds the optimization engine.
"""

from repro.analysis.cache_analysis import (
    GuaranteedCounts,
    IsolationProfile,
    build_profiles,
)
from repro.analysis.schedulability import (
    ModeFeasibility,
    SchedulabilityReport,
    first_feasible_mode,
    schedulability_report,
    tightening_headroom,
)
from repro.analysis.wcl import (
    wcl_miss,
    wcl_miss_all,
    wcl_miss_msi_rrof,
    wcl_miss_nonperfect,
    wcl_miss_pcc,
    wcl_miss_pendulum,
    wcl_miss_shared_wb,
)
from repro.analysis.wcml import (
    CoreBound,
    average_wcml,
    cohort_bounds,
    meets_requirements,
    pcc_bounds,
    pendulum_bounds,
    wcml_snoop,
    wcml_timed,
)

__all__ = [
    "GuaranteedCounts",
    "IsolationProfile",
    "build_profiles",
    "ModeFeasibility",
    "SchedulabilityReport",
    "first_feasible_mode",
    "schedulability_report",
    "tightening_headroom",
    "wcl_miss",
    "wcl_miss_all",
    "wcl_miss_msi_rrof",
    "wcl_miss_nonperfect",
    "wcl_miss_pcc",
    "wcl_miss_pendulum",
    "wcl_miss_shared_wb",
    "CoreBound",
    "average_wcml",
    "cohort_bounds",
    "meets_requirements",
    "pcc_bounds",
    "pendulum_bounds",
    "wcml_snoop",
    "wcml_timed",
]
