"""Static in-isolation cache analysis: guaranteed hits under a timer.

This is the "cache analysis model" the optimization engine of Section V
uses as a black box to capture the Θ→M_hit relationship (Figure 2a).

**Model.**  Under worst-case interference every other core perpetually
requests every line, so a timed line is lost exactly ``θ`` cycles after
its acquisition (the countdown counter never replenishes).  An access is
a *guaranteed hit* iff

1. it hits in isolation on the private cache geometry (direct-mapped
   residency depends only on the core's own access stream, so isolation
   residency is preserved under interference), and
2. the line's current ownership state serves it (stores need M; a store
   to a Shared copy is an upgrade transaction and counts as a miss,
   matching the simulator), and
3. it is issued strictly before the protection window closes —
   ``θ`` cycles after the acquiring transaction's completion — where
   elapsed time is computed pessimistically: every non-guaranteed access
   is charged the per-request worst-case latency ``WCL`` and every
   guaranteed hit the hit latency.

The pessimistic time-charging makes the analysis *sound*: measured
elapsed times in any real execution are never larger, so a guaranteed
hit can never turn into a miss (the test-suite checks experimental hits
dominate guaranteed hits on random traces).

For an MSI core (``θ = -1``) no hits can be guaranteed and the analysis
degenerates to Equation 3 (all ``Λ`` accesses assumed misses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.params import MSI_THETA, CacheGeometry, MemOp
from repro.sim.timer import MAX_THETA
from repro.sim.trace import Trace


@dataclass(frozen=True)
class GuaranteedCounts:
    """Output of the analysis for one core at one (θ, WCL) point."""

    m_hit: int
    m_miss: int

    @property
    def total(self) -> int:
        return self.m_hit + self.m_miss

    @property
    def hit_rate(self) -> float:
        return self.m_hit / self.total if self.total else 0.0


class IsolationProfile:
    """Pre-processed per-core trace ready for repeated (θ, WCL) queries.

    Construction is O(n); each :meth:`analyze` call is a single O(n)
    pass and results are memoised, which is what makes the genetic
    optimization engine practical.
    """

    def __init__(
        self,
        trace: Trace,
        geometry: CacheGeometry,
        hit_latency: int = 1,
    ) -> None:
        if geometry.ways != 1:
            raise ValueError(
                "the guaranteed-hit analysis models direct-mapped L1 caches"
            )
        self.trace = trace
        self.geometry = geometry
        self.hit_latency = hit_latency
        lines = trace.line_addrs(geometry.line_bytes)
        self._lines = lines.astype(np.int64)
        self._sets = (lines % geometry.num_sets).astype(np.int64)
        self._gaps = trace.gaps.astype(np.int64)
        self._stores = trace.ops == int(MemOp.STORE)
        self._cache: Dict[Tuple[int, int], GuaranteedCounts] = {}
        self._sat_cache: Dict[int, int] = {}

    @property
    def num_accesses(self) -> int:
        return len(self.trace)

    # ------------------------------------------------------------- analysis

    def analyze(self, theta: int, wcl: int) -> GuaranteedCounts:
        """Guaranteed hits/misses at timer ``theta`` and per-miss cost ``wcl``."""
        if wcl < 1:
            raise ValueError("wcl must be at least one cycle")
        if theta == MSI_THETA:
            return GuaranteedCounts(m_hit=0, m_miss=self.num_accesses)
        if theta < 1:
            raise ValueError(f"theta must be >= 1 or MSI_THETA, got {theta}")
        key = (theta, wcl)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        hits, _ = self._pass(theta=theta, wcl=wcl)
        result = GuaranteedCounts(m_hit=hits, m_miss=self.num_accesses - hits)
        self._cache[key] = result
        return result

    def analyze_flags(self, theta: int, wcl: int) -> np.ndarray:
        """Per-access guaranteed-hit booleans (test/debug aid)."""
        if theta == MSI_THETA:
            return np.zeros(self.num_accesses, dtype=bool)
        _, flags = self._pass(theta=theta, wcl=wcl, want_flags=True)
        return flags

    def _pass(
        self, theta: float, wcl: int, want_flags: bool = False
    ) -> Tuple[int, Optional[np.ndarray]]:
        """One sequential analysis pass.  ``theta`` may be ``inf``.

        The cache state lives in flat per-set arrays and the trace arrays
        are converted to Python lists up front — both are significant
        constant-factor wins for this hot loop (the optimization engine
        calls it once per distinct (θ, WCL) query).
        """
        lines = self._lines.tolist()
        sets = self._sets.tolist()
        gaps = self._gaps.tolist()
        stores = self._stores.tolist()
        hit_latency = self.hit_latency
        n = len(lines)
        flags = np.zeros(n, dtype=bool) if want_flags else None

        num_sets = self.geometry.num_sets
        occupant = [-1] * num_sets
        modified = [False] * num_sets
        window_end = [0.0] * num_sets
        time = 0.0
        hits = 0
        for k in range(n):
            issue = time + gaps[k]
            s = sets[k]
            if occupant[s] == lines[k] and issue < window_end[s]:
                if not stores[k] or modified[s]:
                    hits += 1
                    time = issue + hit_latency
                    if flags is not None:
                        flags[k] = True
                    continue
            # Miss (cold, conflict, window expired, or upgrade).
            fill = issue + wcl
            occupant[s] = lines[k]
            modified[s] = stores[k]
            window_end[s] = fill + theta
            time = fill
        return hits, flags

    # ----------------------------------------------------------- saturation

    def theta_sat(self, wcl: int) -> int:
        """Smallest timer at which guaranteed hits saturate (Section V).

        Computed from a single pass with an unbounded timer: the largest
        observed acquisition-to-reuse elapsed time, plus one cycle (the
        window check is strict).  Clamped to the 16-bit register range.
        """
        if wcl in self._sat_cache:
            return self._sat_cache[wcl]
        lines = self._lines.tolist()
        sets = self._sets.tolist()
        gaps = self._gaps.tolist()
        stores = self._stores.tolist()
        hit_latency = self.hit_latency
        n = len(lines)

        num_sets = self.geometry.num_sets
        occupant = [-1] * num_sets
        modified = [False] * num_sets
        acquired = [0.0] * num_sets
        time = 0.0
        max_elapsed = 0.0
        for k in range(n):
            issue = time + gaps[k]
            s = sets[k]
            if occupant[s] == lines[k] and (not stores[k] or modified[s]):
                elapsed = issue - acquired[s]
                if elapsed > max_elapsed:
                    max_elapsed = elapsed
                time = issue + hit_latency
                continue
            fill = issue + wcl
            occupant[s] = lines[k]
            modified[s] = stores[k]
            acquired[s] = fill
            time = fill
        sat = min(int(max_elapsed) + 1, MAX_THETA)
        self._sat_cache[wcl] = sat
        return sat

    # ------------------------------------------------------------ hit curve

    def hit_curve(
        self, thetas: Sequence[int], wcl: int
    ) -> List[GuaranteedCounts]:
        """Guaranteed counts for a sweep of timer values (fixed WCL)."""
        return [self.analyze(t, wcl) for t in thetas]


def build_profiles(
    traces: Sequence[Trace],
    geometry: CacheGeometry,
    hit_latency: int = 1,
) -> List[IsolationProfile]:
    """One :class:`IsolationProfile` per core."""
    return [IsolationProfile(t, geometry, hit_latency) for t in traces]
