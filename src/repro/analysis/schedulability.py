"""Schedulability and sensitivity analysis over mode tables.

Section VI's mode-switching story, quantified: given a task set and the
per-mode timer vectors of a Mode-Switch LUT, this module answers

* *is* a requirement vector schedulable, and at which mode
  (:func:`first_feasible_mode`);
* *how much* requirement tightening each mode can absorb before the
  system becomes unschedulable (:func:`tightening_headroom`) — the
  quantitative version of the Figure-7 experiment;
* a full per-mode feasibility report (:func:`schedulability_report`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.params import LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcml import CoreBound, cohort_bounds

if TYPE_CHECKING:  # avoid an analysis ↔ opt/mcs import cycle at runtime
    from repro.mcs.task import TaskSet
    from repro.opt.engine import ModeTable


@dataclass(frozen=True)
class ModeFeasibility:
    """Feasibility of one mode against one requirement vector."""

    mode: int
    feasible: bool
    bounds: List[CoreBound]
    #: Per-core slack Γ_i − WCML_i (None where no requirement applies).
    slack: List[Optional[float]]

    @property
    def min_slack(self) -> float:
        values = [s for s in self.slack if s is not None]
        return min(values) if values else math.inf


@dataclass
class SchedulabilityReport:
    """Feasibility of every mode for one requirement vector."""

    requirements: List[Optional[float]]
    modes: List[ModeFeasibility] = field(default_factory=list)

    @property
    def feasible_modes(self) -> List[int]:
        return [m.mode for m in self.modes if m.feasible]

    @property
    def schedulable(self) -> bool:
        return bool(self.feasible_modes)

    @property
    def first_feasible(self) -> Optional[int]:
        feasible = self.feasible_modes
        return feasible[0] if feasible else None


def _mode_feasibility(
    mode: int,
    thetas: Sequence[int],
    tasks: TaskSet,
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
    requirements: Sequence[Optional[float]],
) -> ModeFeasibility:
    bounds = cohort_bounds(list(thetas), profiles, latencies)
    slack: List[Optional[float]] = []
    feasible = True
    for core_id, gamma in enumerate(requirements):
        if gamma is None or not tasks[core_id].guaranteed_at(mode):
            slack.append(None)
            continue
        s = gamma - bounds[core_id].wcml
        slack.append(s)
        if s < 0:
            feasible = False
    return ModeFeasibility(mode=mode, feasible=feasible, bounds=bounds,
                           slack=slack)


def schedulability_report(
    tasks: TaskSet,
    mode_table: ModeTable,
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
    requirements: Sequence[Optional[float]],
) -> SchedulabilityReport:
    """Evaluate every mode of the table against the requirement vector.

    Degraded cores (criticality below the mode) are exempt from their
    requirement at that mode, exactly as the run-time controller treats
    them.
    """
    if len(requirements) != len(tasks):
        raise ValueError("one requirement slot per core required")
    report = SchedulabilityReport(requirements=list(requirements))
    for mode in mode_table.modes:
        report.modes.append(
            _mode_feasibility(
                mode, mode_table.thetas[mode], tasks, profiles, latencies,
                requirements,
            )
        )
    return report


def first_feasible_mode(
    tasks: TaskSet,
    mode_table: ModeTable,
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
    requirements: Sequence[Optional[float]],
) -> Optional[int]:
    """The lowest feasible mode, or None when unschedulable everywhere."""
    report = schedulability_report(
        tasks, mode_table, profiles, latencies, requirements
    )
    return report.first_feasible


def tightening_headroom(
    tasks: TaskSet,
    mode_table: ModeTable,
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
    core_id: int,
    base_requirement: Optional[float] = None,
) -> Dict[int, float]:
    """Max tightening factor of one core's requirement per mode.

    For each mode *m* in which ``core_id`` keeps its guarantee, returns
    the largest factor *f* such that ``base_requirement / f`` is still
    met at that mode — i.e. ``base / bound_m``.  ``base_requirement``
    defaults to the core's bound at the lowest mode (so headroom at the
    lowest mode is exactly 1.0), making the dict directly comparable to
    the Figure-7 stage factors.
    """
    if not mode_table.modes:
        raise ValueError("empty mode table")
    if base_requirement is None:
        lowest = mode_table.modes[0]
        base_requirement = cohort_bounds(
            mode_table.thetas[lowest], profiles, latencies
        )[core_id].wcml
    if base_requirement <= 0:
        raise ValueError("base requirement must be positive")
    headroom: Dict[int, float] = {}
    for mode in mode_table.modes:
        if not tasks[core_id].guaranteed_at(mode):
            continue
        bound = cohort_bounds(
            mode_table.thetas[mode], profiles, latencies
        )[core_id].wcml
        if bound <= 0:
            headroom[mode] = math.inf
        else:
            headroom[mode] = base_requirement / bound
    return headroom
