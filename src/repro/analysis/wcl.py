"""Per-request worst-case latency (WCL) bounds.

:func:`wcl_miss` is Equation 1 of the paper — the CoHoRT bound under RROF
arbitration.  The module also derives the per-request bounds used for the
baselines in the evaluation:

* :func:`wcl_miss_pcc` — the PCC / predictable-MSI family, in which every
  interfering core holds the line for at most one transaction but dirty
  handovers cost a write-back slot plus a re-fetch slot through the LLC.
* :func:`wcl_miss_pendulum` — PENDULUM's pessimistic bound: TDM
  re-alignment around every timer-protected handover, and *no* bound at
  all for non-critical cores (they are served only in slack).
* :func:`wcl_miss_shared_wb` — Equation 1 extended with one write-back
  slot per interfering core, for configurations that serialise eviction
  write-backs on the main bus (``SimConfig.wb_on_bus``).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.params import MSI_THETA, LatencyParams


def wcl_miss(
    thetas: Sequence[int], core_id: int, slot_width: int
) -> int:
    """Equation 1: worst-case per-request latency of ``core_id``'s miss.

    .. math::

        WCL_i = SW + (N-1) \\cdot SW +
                \\sum_{j \\ne i} (\\theta_j + SW) \\ [\\theta_j \\ge 0]

    The first slot covers the head of the broadcast order fetching the
    line from shared memory; each timed interferer then holds the line
    for its timer period plus a (worst-case mis-aligned) handover slot;
    the final slot transfers the data to the requester.
    """
    n = len(thetas)
    if not 0 <= core_id < n:
        raise IndexError(f"core_id {core_id} out of range for {n} cores")
    if slot_width < 1:
        raise ValueError("slot width must be positive")
    total = slot_width + (n - 1) * slot_width
    for j, theta in enumerate(thetas):
        if j == core_id:
            continue
        if theta != MSI_THETA:
            if theta < 0:
                raise ValueError(f"invalid theta {theta} for core {j}")
            total += theta + slot_width
    return total


def wcl_miss_all(thetas: Sequence[int], slot_width: int) -> List[int]:
    """Equation 1 evaluated for every core."""
    return [wcl_miss(thetas, i, slot_width) for i in range(len(thetas))]


def wcl_miss_shared_wb(
    thetas: Sequence[int], core_id: int, slot_width: int
) -> int:
    """Equation 1 plus one write-back slot per core (shared-WB-bus option).

    The one-slot-per-core budget relies on RROF consuming a core's turn
    when a bus write-back drains (``Arbiter.on_writeback_completed``):
    a core cannot drain two buffered write-backs ahead of another core's
    waiting request.
    """
    return wcl_miss(thetas, core_id, slot_width) + len(thetas) * slot_width


def wcl_miss_pcc(num_cores: int, slot_width: int) -> int:
    """Per-request bound of the predictable-MSI (PCC) baseline.

    Under RROF every other core completes at most one transaction ahead of
    the requester; each transaction costs two slots in the worst case
    (the dirty owner's write-back plus the LLC re-fetch), and the
    requester's own service costs the same two slots:

    .. math:: WCL^{PCC} = 2 N \\cdot SW
    """
    if num_cores < 1:
        raise ValueError("need at least one core")
    return 2 * num_cores * slot_width


def wcl_miss_pendulum(
    num_cores: int,
    num_critical: int,
    theta: int,
    slot_width: int,
    critical: bool = True,
) -> float:
    """Per-request bound of the PENDULUM baseline.

    In PENDULUM [16] *every* core runs the time-based protocol with one
    global timer value — criticality only affects arbitration — so a
    critical requester can wait behind the timer of every co-runner,
    critical or not.  Critical cores share a TDM schedule of period
    ``P = N_{cr} · SW``; in the worst case the requester waits one full
    period to broadcast its request, another full period to be granted
    its data slot once ready, and, per interfering core, the timer plus
    a TDM re-alignment before each handover slot (this re-alignment
    per-hop is the pessimism the paper's Section VII calls out):

    .. math:: WCL^{PEND} = 2P + (N - 1)(\\theta + P + SW) + SW

    Non-critical cores are served only when no critical core has an
    outstanding request, so their latency is unbounded (``math.inf``).
    """
    if num_critical < 1:
        raise ValueError("PENDULUM needs at least one critical core")
    if num_cores < num_critical:
        raise ValueError("num_cores must include the critical cores")
    if theta < 1:
        raise ValueError("PENDULUM's global timer must be >= 1")
    if not critical:
        return math.inf
    period = num_critical * slot_width
    return (
        2 * period
        + (num_cores - 1) * (theta + period + slot_width)
        + slot_width
    )


def wcl_miss_nonperfect(
    thetas: Sequence[int],
    core_id: int,
    slot_width: int,
    dram_latency: int,
) -> int:
    """Equation 1 extended for the non-perfect LLC (our extension).

    The paper's analysis assumes a perfect LLC; with a real LLC each
    transfer whose data source is the shared memory may additionally
    wait for a DRAM fetch (``dram_latency``), an un-drained eviction
    write-back (one data latency on the dedicated port) and an LLC
    insertion that defers around an in-flight bus transfer (bounded by
    one further slot).  At most ``N`` transfers sit on the request's
    critical path, so the margin is ``N · (D + L_data + SW)`` — safe but
    conservative, as the tightness benchmark shows.

    Note this extends the *per-request* bound only: guaranteed-hit
    counts (Equation 2) are not sound under a non-perfect LLC because
    inclusion back-invalidations can evict timer-protected lines.
    """
    n = len(thetas)
    if dram_latency < 0:
        raise ValueError("dram_latency must be non-negative")
    base = wcl_miss(thetas, core_id, slot_width)
    data_latency = slot_width  # conservative: >= the data phase
    return base + n * (dram_latency + data_latency + slot_width)


def wcl_miss_msi_rrof(num_cores: int, slot_width: int) -> int:
    """Per-request bound for plain-MSI cores under RROF (no timers).

    This is Equation 1 with every ``θ_j = -1``: ``N · SW``.  Useful for
    heterogeneous configurations in which an MSI core still wants a bound.
    """
    return num_cores * slot_width


def slot_width(latencies: LatencyParams) -> int:
    """``SW`` as used throughout the analysis."""
    return latencies.slot_width
