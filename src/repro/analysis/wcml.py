"""Worst-Case Memory Latency (WCML) bounds — Equations 2 and 3.

WCML is the total memory latency a task can suffer across all its
``Λ`` accesses (Definition 1).  For a timed core the in-isolation cache
analysis guarantees ``M_hit`` hits (Equation 2); for an MSI core no hits
can be guaranteed and all accesses are assumed misses (Equation 3).

The helpers at the bottom compute the per-core analytical bounds of
every system in the paper's evaluation (CoHoRT, PCC, PENDULUM), which is
what Figures 5 and 7 plot as the "T bars".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.params import MSI_THETA, LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcl import (
    wcl_miss,
    wcl_miss_pcc,
    wcl_miss_pendulum,
)


def wcml_timed(
    m_hit: int, m_miss: int, wcl: float, hit_latency: int = 1
) -> float:
    """Equation 2: ``M_hit · L_hit + M_miss · WCL_miss``."""
    if m_hit < 0 or m_miss < 0:
        raise ValueError("hit/miss counts must be non-negative")
    return m_hit * hit_latency + m_miss * wcl


def wcml_snoop(num_accesses: int, wcl: float) -> float:
    """Equation 3: ``Λ · WCL_miss`` (all accesses assumed misses)."""
    if num_accesses < 0:
        raise ValueError("access count must be non-negative")
    return num_accesses * wcl


@dataclass(frozen=True)
class CoreBound:
    """The analytical memory-latency bound of one core's task."""

    core_id: int
    wcml: float
    wcl: float
    m_hit: int
    m_miss: int

    @property
    def accesses(self) -> int:
        return self.m_hit + self.m_miss

    @property
    def average_per_access(self) -> float:
        """The per-core term of the optimization objective (Section V)."""
        if self.accesses == 0:
            return 0.0
        return self.wcml / self.accesses

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.wcml)


def cohort_bounds(
    thetas: Sequence[int],
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
) -> List[CoreBound]:
    """Per-core CoHoRT bounds for a timer vector Θ.

    Timed cores use Equation 2 with the guaranteed-hit analysis; MSI
    cores (``θ = -1``) use Equation 3.  Both use the per-request bound of
    Equation 1 evaluated against the co-runners' timers.
    """
    if len(thetas) != len(profiles):
        raise ValueError("one profile per core required")
    sw = latencies.slot_width
    bounds: List[CoreBound] = []
    for i, (theta, profile) in enumerate(zip(thetas, profiles)):
        wcl = wcl_miss(thetas, i, sw)
        if theta == MSI_THETA:
            lam = profile.num_accesses
            bounds.append(
                CoreBound(
                    core_id=i,
                    wcml=wcml_snoop(lam, wcl),
                    wcl=wcl,
                    m_hit=0,
                    m_miss=lam,
                )
            )
        else:
            counts = profile.analyze(theta, wcl)
            bounds.append(
                CoreBound(
                    core_id=i,
                    wcml=wcml_timed(
                        counts.m_hit, counts.m_miss, wcl, latencies.hit
                    ),
                    wcl=wcl,
                    m_hit=counts.m_hit,
                    m_miss=counts.m_miss,
                )
            )
    return bounds


def pcc_bounds(
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
) -> List[CoreBound]:
    """Per-core bounds of the predictable-MSI (PCC) baseline: Equation 3."""
    n = len(profiles)
    wcl = wcl_miss_pcc(n, latencies.slot_width)
    return [
        CoreBound(
            core_id=i,
            wcml=wcml_snoop(p.num_accesses, wcl),
            wcl=wcl,
            m_hit=0,
            m_miss=p.num_accesses,
        )
        for i, p in enumerate(profiles)
    ]


def pendulum_bounds(
    critical: Sequence[bool],
    theta: int,
    profiles: Sequence[IsolationProfile],
    latencies: LatencyParams,
) -> List[CoreBound]:
    """Per-core bounds of the PENDULUM baseline.

    Critical cores: Equation 3 with PENDULUM's pessimistic per-request
    bound.  Non-critical cores: unbounded (``inf``), since the arbiter
    serves them only when no critical core has a pending request.
    """
    if len(critical) != len(profiles):
        raise ValueError("one profile per core required")
    n_cr = sum(1 for c in critical if c)
    bounds: List[CoreBound] = []
    for i, (is_cr, p) in enumerate(zip(critical, profiles)):
        wcl = wcl_miss_pendulum(
            len(critical), n_cr, theta, latencies.slot_width, critical=is_cr
        )
        bounds.append(
            CoreBound(
                core_id=i,
                wcml=wcml_snoop(p.num_accesses, wcl),
                wcl=wcl,
                m_hit=0,
                m_miss=p.num_accesses,
            )
        )
    return bounds


def average_wcml(bounds: Sequence[CoreBound]) -> float:
    """The optimization objective: mean per-access WCML across cores."""
    if not bounds:
        raise ValueError("no bounds supplied")
    return sum(b.average_per_access for b in bounds) / len(bounds)


def meets_requirements(
    bounds: Sequence[CoreBound],
    requirements: Sequence[Optional[float]],
) -> bool:
    """Constraint C1: every core with a requirement satisfies it.

    ``requirements[i] = None`` means core *i* has no WCML requirement.
    """
    if len(bounds) != len(requirements):
        raise ValueError("one requirement slot per core required")
    for bound, gamma in zip(bounds, requirements):
        if gamma is not None and bound.wcml > gamma:
            return False
    return True
