"""The coherence-protocol registry.

Protocols are named singletons; the simulator resolves
``SimConfig.protocol`` through :func:`get_protocol` at system-build
time, so a new protocol is selectable purely by registering it — no
engine edits::

    from repro.sim.protocols import register
    from repro.sim.protocols.base import CoherenceProtocol, TransitionTables

    register(CoherenceProtocol("mesi_like", TransitionTables(...)))

and then ``SimConfig(protocol="mesi_like")`` or
``cohort simulate --protocol mesi_like``.

See ``docs/protocol.md`` for the full third-party-protocol walkthrough.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.protocols.base import (
    AccessOutcome,
    CoherenceProtocol,
    HandoverAction,
    SnoopAction,
    TransitionTables,
)
from repro.sim.protocols.builtin import (
    BUILTIN_PROTOCOLS,
    MSI,
    MSI_CLASSIFY,
    PMSI,
    TIMED_MSI,
    TIMED_MSI_SNOOP,
)

__all__ = [
    "AccessOutcome",
    "CoherenceProtocol",
    "HandoverAction",
    "SnoopAction",
    "TransitionTables",
    "TIMED_MSI",
    "MSI",
    "PMSI",
    "MSI_CLASSIFY",
    "TIMED_MSI_SNOOP",
    "register",
    "get_protocol",
    "available_protocols",
    "unregister",
]

#: The default protocol name (the paper's CoHoRT configuration).
DEFAULT_PROTOCOL = TIMED_MSI.name

_REGISTRY: Dict[str, CoherenceProtocol] = {}


def register(protocol: CoherenceProtocol, replace: bool = False) -> CoherenceProtocol:
    """Add a protocol to the registry under ``protocol.name``.

    Returns the protocol for chaining.  Re-registering an existing name
    raises unless ``replace=True`` (useful in tests).
    """
    if not replace and protocol.name in _REGISTRY:
        raise ValueError(
            f"protocol {protocol.name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[protocol.name] = protocol
    return protocol


def unregister(name: str) -> None:
    """Remove a protocol (no-op when absent).  Built-ins may be removed
    too — tests use this to restore a pristine registry."""
    _REGISTRY.pop(name, None)


def get_protocol(name: str) -> CoherenceProtocol:
    """Resolve a protocol by name; the error enumerates what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown coherence protocol {name!r}; "
            f"available: {', '.join(available_protocols())}"
        ) from None


def available_protocols() -> List[str]:
    """The registered protocol names, sorted."""
    return sorted(_REGISTRY)


for _protocol in BUILTIN_PROTOCOLS:
    register(_protocol)
del _protocol
