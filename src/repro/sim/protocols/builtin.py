"""The built-in protocols: heterogeneous timed/MSI, plain MSI, and PMSI.

Each protocol is *pure data* — the same engine executes all three; only
the transition tables (and two routing flags) differ:

* ``timed_msi`` — the paper's CoHoRT protocol.  Per-core θ registers
  select timed or MSI behaviour; timed copies arm the countdown counter
  on a conflicting snoop and invalidate on reader handovers (Figure 3).
* ``msi`` — every core behaves as a plain snooping MSI core regardless
  of its θ register: shared copies invalidate immediately on a remote
  writer, owners concede immediately and downgrade M→S on a reader
  handover.  The COTS baseline of Figure 6 is this protocol plus FCFS
  arbitration.
* ``pmsi`` — a PMSI-style predictable-MSI baseline: MSI timing for
  every core, but *invalidate-on-share* reader handovers and dirty
  transfers routed through the LLC (write-back then re-fetch), the
  transfer discipline of the PMSI/PCC family of predictable protocols.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.params import MemOp
from repro.sim.cache import LineState
from repro.sim.protocols.base import (
    AccessOutcome,
    CoherenceProtocol,
    HandoverAction,
    SnoopAction,
    TransitionTables,
)

_I, _S, _M = LineState.I, LineState.S, LineState.M
_LOAD, _STORE = MemOp.LOAD, MemOp.STORE

#: The MSI-family classification table (shared by all three built-ins):
#: S/M serve loads, only M serves stores, a store to a live S copy is an
#: ownership upgrade, everything else is a data miss.
MSI_CLASSIFY: Dict[Tuple[LineState, MemOp], AccessOutcome] = {
    (_I, _LOAD): AccessOutcome.MISS_GETS,
    (_I, _STORE): AccessOutcome.MISS_GETM,
    (_S, _LOAD): AccessOutcome.HIT,
    (_S, _STORE): AccessOutcome.UPGRADE,
    (_M, _LOAD): AccessOutcome.HIT,
    (_M, _STORE): AccessOutcome.HIT,
}

#: Snoop reactions keyed by (timed_core, state).  MSI rows: S copies
#: invalidate at once, owners concede at once.  Timed rows: both states
#: arm the countdown counter.
TIMED_MSI_SNOOP: Dict[Tuple[bool, LineState], SnoopAction] = {
    (False, _S): SnoopAction.INVALIDATE,
    (False, _M): SnoopAction.CONCEDE,
    (True, _S): SnoopAction.TIMER,
    (True, _M): SnoopAction.TIMER,
}

TIMED_MSI = CoherenceProtocol(
    name="timed_msi",
    heterogeneous=True,
    tables=TransitionTables(
        classify=MSI_CLASSIFY,
        snoop=TIMED_MSI_SNOOP,
        reader_handover={
            False: HandoverAction.KEEP_SHARED,
            True: HandoverAction.INVALIDATE,
        },
    ),
    description="CoHoRT heterogeneous timed/MSI coherence (per-core θ)",
)

MSI = CoherenceProtocol(
    name="msi",
    heterogeneous=False,
    tables=TransitionTables(
        classify=MSI_CLASSIFY,
        snoop=TIMED_MSI_SNOOP,
        reader_handover={
            False: HandoverAction.KEEP_SHARED,
            True: HandoverAction.INVALIDATE,
        },
    ),
    description="plain snooping MSI on every core (ignores θ registers)",
)

PMSI = CoherenceProtocol(
    name="pmsi",
    heterogeneous=False,
    force_via_llc=True,
    tables=TransitionTables(
        classify=MSI_CLASSIFY,
        snoop=TIMED_MSI_SNOOP,
        reader_handover={
            False: HandoverAction.INVALIDATE,
            True: HandoverAction.INVALIDATE,
        },
    ),
    description=(
        "PMSI-style predictable MSI: invalidate-on-share, transfers via LLC"
    ),
)

BUILTIN_PROTOCOLS = (TIMED_MSI, MSI, PMSI)
