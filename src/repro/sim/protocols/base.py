"""The declarative coherence-protocol layer.

A :class:`CoherenceProtocol` packages every *per-line decision* of the
snooping engine as data — three transition tables consulted at the three
decision points of a line's life:

* **classify** — how a local access against the line's (effective)
  stable state is served: hit, GetS/GetM miss, or upgrade.  Consulted
  by the core-facing access path.
* **snoop** — what a resident copy does when a *conflicting* remote
  request is observed on the bus: invalidate at once, concede ownership
  at once (remaining only as the data source), or arm the CoHoRT
  countdown timer.  Keyed by ``(timed_core, state)``.
* **reader_handover** — what an owner does after sourcing data for a
  remote *reader*: keep a Shared copy (plain MSI) or invalidate
  (timed cores per Figure 3, and PMSI-style invalidate-on-share).

What is *not* in the tables is deliberately protocol-independent and
lives in :mod:`repro.sim.engine`: conflict detection (a waiting writer
conflicts with every copy, a waiting reader only with the owner),
same-line FIFO request ordering, and bus/backend mechanics.

Protocols are stateless singletons registered by name in
:mod:`repro.sim.protocols`; selecting one is configuration
(``SimConfig.protocol`` / ``cohort --protocol``), not code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Tuple

from repro.params import MemOp
from repro.sim.cache import LineState
from repro.sim.messages import ReqKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.private_cache import PrivateCache


class AccessOutcome(enum.Enum):
    """Classification of a local access against the private cache."""

    HIT = "hit"
    MISS_GETS = "gets"
    MISS_GETM = "getm"
    UPGRADE = "upg"

    @property
    def req_kind(self) -> ReqKind:
        if self is AccessOutcome.MISS_GETS:
            return ReqKind.GETS
        if self is AccessOutcome.MISS_GETM:
            return ReqKind.GETM
        if self is AccessOutcome.UPGRADE:
            return ReqKind.UPG
        raise ValueError("hits carry no request kind")


class SnoopAction(enum.Enum):
    """Reaction of a resident copy to a conflicting remote request."""

    IGNORE = "ignore"          #: the copy is unaffected.
    INVALIDATE = "invalidate"  #: drop the copy immediately (MSI S copy).
    CONCEDE = "concede"        #: owner concedes at once, stays as source.
    TIMER = "timer"            #: arm the countdown-counter expiry (Fig. 3).


class HandoverAction(enum.Enum):
    """What a data-sourcing owner does after a remote *reader* handover."""

    KEEP_SHARED = "keep_shared"  #: downgrade M→S and keep the copy (MSI).
    INVALIDATE = "invalidate"    #: invalidate-on-share (timed cores, PMSI).


ClassifyTable = Mapping[Tuple[LineState, MemOp], AccessOutcome]
SnoopTable = Mapping[Tuple[bool, LineState], SnoopAction]
HandoverTable = Mapping[bool, HandoverAction]

#: The classify entries every MSI-family protocol shares; protocols whose
#: HIT set equals this one are eligible for the engine's inlined hit path.
STANDARD_HIT_STATES: frozenset = frozenset(
    {
        (LineState.S, MemOp.LOAD),
        (LineState.M, MemOp.LOAD),
        (LineState.M, MemOp.STORE),
    }
)


@dataclass(frozen=True)
class TransitionTables:
    """The three decision tables of one protocol (see module docstring)."""

    classify: ClassifyTable
    snoop: SnoopTable
    reader_handover: HandoverTable

    def validate(self) -> None:
        """Check table completeness; raises ``ValueError`` on gaps."""
        for state in (LineState.I, LineState.S, LineState.M):
            for op in (MemOp.LOAD, MemOp.STORE):
                if (state, op) not in self.classify:
                    raise ValueError(
                        f"classify table misses ({state.name}, {op.name})"
                    )
        if self.classify[(LineState.I, MemOp.LOAD)] is AccessOutcome.HIT:
            raise ValueError("an invalid line cannot serve a load")
        if self.classify[(LineState.I, MemOp.STORE)] is AccessOutcome.HIT:
            raise ValueError("an invalid line cannot serve a store")
        for timed in (False, True):
            for state in (LineState.S, LineState.M):
                if (timed, state) not in self.snoop:
                    raise ValueError(
                        f"snoop table misses (timed={timed}, {state.name})"
                    )
            if timed not in self.reader_handover:
                raise ValueError(
                    f"reader_handover table misses timed={timed}"
                )


class CoherenceProtocol:
    """One pluggable coherence protocol: a name plus transition tables.

    ``heterogeneous`` selects CoHoRT's per-core timed/MSI mix: when True
    a core's behaviour follows its timer register (``θ == -1`` → MSI,
    ``θ >= 1`` → timed); when False every core takes the MSI
    (``timed=False``) rows of the tables regardless of its θ.

    ``force_via_llc`` routes dirty owner handovers through the LLC
    (write-back, then re-fetch) independent of
    ``SimConfig.via_llc_transfers`` — the PCC/PMSI family's transfer
    discipline.
    """

    __slots__ = ("name", "tables", "heterogeneous", "force_via_llc", "description")

    def __init__(
        self,
        name: str,
        tables: TransitionTables,
        heterogeneous: bool = True,
        force_via_llc: bool = False,
        description: str = "",
    ) -> None:
        tables.validate()
        self.name = name
        self.tables = tables
        self.heterogeneous = heterogeneous
        self.force_via_llc = force_via_llc
        self.description = description

    # -- per-core view -----------------------------------------------------

    def core_is_timed(self, cache: "PrivateCache") -> bool:
        """Whether ``cache``'s copies use the countdown-timer rows."""
        return self.heterogeneous and not cache.is_msi

    # -- decision points ---------------------------------------------------

    def classify(
        self, cache: "PrivateCache", op: MemOp, line_addr: int
    ) -> AccessOutcome:
        """Hit/miss classification of a local access, right now.

        A *frozen* copy (conceded to a remote writer, awaiting the data
        transfer) serves nothing and classifies as invalid.
        """
        line = cache.lookup(line_addr)
        state = (
            LineState.I if line is None or line.frozen else line.state
        )
        return self.tables.classify[(state, MemOp(op))]

    def snoop_action(
        self, cache: "PrivateCache", state: LineState
    ) -> SnoopAction:
        """Reaction of ``cache``'s copy in ``state`` to a conflict."""
        return self.tables.snoop[(self.core_is_timed(cache), state)]

    def reader_handover(self, cache: "PrivateCache") -> HandoverAction:
        """Post-handover fate of ``cache``'s owned copy after a GetS."""
        return self.tables.reader_handover[self.core_is_timed(cache)]

    # -- engine integration ------------------------------------------------

    def uses_standard_hits(self) -> bool:
        """True when the inlined hot-path hit predicate is valid.

        The engine's per-access fast path hardcodes the MSI-family hit
        set (S/M serve loads, only M serves stores).  A protocol whose
        classify table declares exactly that HIT set may use it; any
        other table forces the general :meth:`classify` call per access.
        """
        hits = {
            key
            for key, outcome in self.tables.classify.items()
            if outcome is AccessOutcome.HIT
        }
        return hits == set(STANDARD_HIT_STATES)

    def via_llc(self, config_via_llc: bool) -> bool:
        """Effective transfer routing given the system configuration."""
        return bool(config_via_llc or self.force_via_llc)

    def __repr__(self) -> str:
        kind = "heterogeneous" if self.heterogeneous else "homogeneous"
        return f"CoherenceProtocol({self.name!r}, {kind})"
