"""Generic cache storage structures shared by the L1s and the LLC.

These classes model *storage and replacement* only; the coherence state
machine that manipulates them lives in :mod:`repro.sim.private_cache` and
:mod:`repro.sim.system`.

Both arrays maintain their valid-line counts incrementally (``__len__``
and :meth:`SetAssociativeArray.occupancy` are O(1)): every sanctioned
mutation path — :meth:`CacheLine.invalidate`, :meth:`DirectMappedArray.
install`, :meth:`repro.sim.private_cache.PrivateCache.fill`, and the
set-associative insert/remove — keeps the counter in sync.  Poking a
line's fields directly bypasses the bookkeeping; use ``install``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.params import CacheGeometry


class LineState(enum.IntEnum):
    """MSI stable states of a private cache line."""

    I = 0  # noqa: E741 - the canonical protocol name
    S = 1
    M = 2


@dataclass(slots=True)
class CacheLine:
    """One private cache line with its CoHoRT coherence metadata.

    ``fill_cycle`` and ``generation`` drive the lazy timer model: the
    countdown counter conceptually loaded θ at ``fill_cycle`` and the
    generation counter disambiguates stale timer-expiry events after a
    line has been invalidated and refetched.
    """

    line_addr: int = -1
    state: LineState = LineState.I
    fill_cycle: int = 0
    #: Version of the data held (golden-value oracle; see tests).
    version: int = 0
    dirty: bool = False
    #: Cycle at which a remote conflicting request was observed, or None.
    pending_inv_since: Optional[int] = None
    #: True when the pending remote request is a GetS (downgrade), not a GetM.
    pending_is_downgrade: bool = False
    #: Earliest cycle at which the pending invalidation/handover may be
    #: actioned (the lazy countdown-counter expiry), or None.
    inv_at: Optional[int] = None
    #: The countdown counter reached zero with the remote request pending:
    #: the line is conceded and only awaits the bus transfer.
    handover_ready: bool = False
    generation: int = 0
    #: Back-reference to the owning :class:`DirectMappedArray` (if any),
    #: used to maintain its valid-line counter across invalidations.
    owner: Optional["DirectMappedArray"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def valid(self) -> bool:
        return self.state != LineState.I

    @property
    def frozen(self) -> bool:
        """Conceded to a remote *writer*: the line serves no further hits.

        A line conceded to a remote *reader* (downgrade) keeps serving local
        accesses until the data transfer actually completes.
        """
        return self.handover_ready and not self.pending_is_downgrade

    def can_serve(self, store: bool) -> bool:
        """Whether a local access hits on this line right now."""
        if not self.valid or self.frozen:
            return False
        if store:
            return self.state == LineState.M
        return True

    def arm_pending(self, now: int) -> None:
        """Record a remote conflicting request observed at ``now``.

        The only sanctioned way to set ``pending_inv_since`` — keeps the
        owning array's pending-line counter in sync (the telemetry
        sampler reads it in O(1) instead of scanning the array)."""
        self.pending_inv_since = now
        if self.owner is not None:
            self.owner._pending_count += 1

    def clear_pending(self) -> None:
        """Clear all pending-invalidation state (after a handover)."""
        if self.pending_inv_since is not None and self.owner is not None:
            self.owner._pending_count -= 1
        self.pending_inv_since = None
        self.pending_is_downgrade = False
        self.inv_at = None
        self.handover_ready = False

    def invalidate(self) -> None:
        """Drop the line to I, clearing metadata and bumping the generation."""
        if self.state != LineState.I and self.owner is not None:
            self.owner._valid_count -= 1
        self.state = LineState.I
        self.dirty = False
        self.clear_pending()
        self.generation += 1


class DirectMappedArray:
    """Storage of a direct-mapped private cache (one line per set)."""

    __slots__ = ("geometry", "_lines", "_set_mask", "_valid_count",
                 "_pending_count")

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways != 1:
            raise ValueError("DirectMappedArray models ways == 1 only")
        self.geometry = geometry
        self._lines: List[CacheLine] = [
            CacheLine(owner=self) for _ in range(geometry.num_sets)
        ]
        #: num_sets is validated to be a power of two, so indexing reduces
        #: to a mask — the hot paths use it instead of ``set_index``.
        self._set_mask = geometry.num_sets - 1
        self._valid_count = 0
        self._pending_count = 0

    def slot(self, line_addr: int) -> CacheLine:
        """The (single) slot a line address maps to."""
        return self._lines[line_addr & self._set_mask]

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """The resident line for this address, or ``None``."""
        line = self._lines[line_addr & self._set_mask]
        if line.state and line.line_addr == line_addr:
            return line
        return None

    def victim(self, line_addr: int) -> Optional[CacheLine]:
        """The line a fill of ``line_addr`` would evict, or ``None``."""
        line = self._lines[line_addr & self._set_mask]
        if line.state and line.line_addr != line_addr:
            return line
        return None

    def install(self, line_addr: int, state: LineState = LineState.S) -> CacheLine:
        """Place a line directly into its slot (tests / setup helper).

        Maintains the valid-line counter; any resident line in the slot is
        invalidated first.
        """
        slot = self._lines[line_addr & self._set_mask]
        if slot.valid:
            slot.invalidate()
        if state != LineState.I:
            self._valid_count += 1
        slot.line_addr = line_addr
        slot.state = state
        return slot

    def valid_lines(self) -> Iterator[CacheLine]:
        """Iterate over the currently valid lines."""
        return (line for line in self._lines if line.valid)

    def pending_count(self) -> int:
        """Lines with a remote request currently pending, in O(1).

        Maintained by :meth:`CacheLine.arm_pending` /
        :meth:`CacheLine.clear_pending`; the telemetry sampler reads it
        every sample, so it must not require a scan."""
        return self._pending_count

    def recount(self) -> int:
        """Recompute the valid-line count by scanning (O(num_sets)).

        Diagnostic only: must always equal ``len(self)``.  The test-suite
        asserts this after protocol activity to catch any mutation path
        that bypasses the incremental counter."""
        return sum(1 for line in self._lines if line.valid)

    def recount_pending(self) -> int:
        """Recompute the pending-line count by scanning (diagnostic).

        Must always equal :meth:`pending_count`; asserted by the test
        suite after protocol activity."""
        return sum(
            1 for line in self._lines if line.pending_inv_since is not None
        )

    def __len__(self) -> int:
        return self._valid_count


@dataclass(slots=True)
class LLCLine:
    """One LLC line: data version plus LRU bookkeeping."""

    line_addr: int
    version: int = 0
    last_touch: int = 0


class SetAssociativeArray:
    """Storage of the set-associative, LRU-replaced shared LLC."""

    __slots__ = ("geometry", "_sets", "_set_mask", "_occupancy")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List[Dict[int, LLCLine]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self._set_mask = geometry.num_sets - 1
        self._occupancy = 0

    def _set(self, line_addr: int) -> Dict[int, LLCLine]:
        return self._sets[line_addr & self._set_mask]

    def lookup(self, line_addr: int, cycle: int = 0, touch: bool = True) -> Optional[LLCLine]:
        """The resident LLC line, optionally touching LRU state."""
        line = self._sets[line_addr & self._set_mask].get(line_addr)
        if line is not None and touch:
            line.last_touch = cycle
        return line

    def peek_victim(self, line_addr: int) -> Optional[int]:
        """Line address that inserting ``line_addr`` would evict, or None."""
        cache_set = self._set(line_addr)
        if line_addr in cache_set or len(cache_set) < self.geometry.ways:
            return None
        return min(cache_set, key=lambda a: (cache_set[a].last_touch, a))

    def insert(self, line_addr: int, cycle: int, version: int = 0) -> Optional[LLCLine]:
        """Insert a line; return the evicted LRU victim if the set was full."""
        cache_set = self._set(line_addr)
        if line_addr in cache_set:
            line = cache_set[line_addr]
            line.last_touch = cycle
            return None
        victim: Optional[LLCLine] = None
        if len(cache_set) >= self.geometry.ways:
            lru_addr = min(cache_set, key=lambda a: (cache_set[a].last_touch, a))
            victim = cache_set.pop(lru_addr)
            self._occupancy -= 1
        cache_set[line_addr] = LLCLine(line_addr=line_addr, version=version, last_touch=cycle)
        self._occupancy += 1
        return victim

    def remove(self, line_addr: int) -> Optional[LLCLine]:
        """Remove and return a line (None if absent)."""
        line = self._set(line_addr).pop(line_addr, None)
        if line is not None:
            self._occupancy -= 1
        return line

    def recount(self) -> int:
        """Recompute the occupancy by scanning (diagnostic; O(lines))."""
        return sum(len(cache_set) for cache_set in self._sets)

    def occupancy(self) -> int:
        """Total valid lines across all sets."""
        return self._occupancy
