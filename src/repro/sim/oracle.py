"""The golden-value coherence oracle.

Every store bumps a per-line *golden version* and stamps it on the
written cache line; loads (when checking is enabled) must observe the
latest golden version.  The version plumbing is always on — write-backs
and the LLC/DRAM version stores rely on it — while the single-writer /
read-latest *checks* are enabled by ``SimConfig.check_coherence`` (the
property-based test-suite runs with them on).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.sim.cache import CacheLine, LineState
from repro.sim.private_cache import PrivateCache


class CoherenceViolationError(RuntimeError):
    """The golden-value oracle observed a protocol violation."""


class CoherenceOracle:
    """Tracks golden versions and (optionally) checks every access."""

    __slots__ = ("check", "_caches", "_golden", "_now")

    def __init__(
        self,
        check: bool,
        caches: Sequence[PrivateCache],
        now: Callable[[], int],
    ) -> None:
        self.check = check
        self._caches = caches
        self._golden: Dict[int, int] = {}
        self._now = now

    def perform_write(self, core_id: int, line: CacheLine) -> None:
        """Perform a store: bump the golden version of the line."""
        addr = line.line_addr
        if self.check:
            if line.state != LineState.M:
                raise CoherenceViolationError(
                    f"c{core_id} stores to line {addr} in state {line.state.name}"
                )
            for cache in self._caches:
                if cache.core_id == core_id:
                    continue
                other = cache.lookup(addr)
                if other is not None and other.valid:
                    raise CoherenceViolationError(
                        f"c{core_id} writes line {addr} while c{cache.core_id} "
                        f"holds it in {other.state.name} "
                        f"(cycle {self._now()})"
                    )
        version = self._golden.get(addr, 0) + 1
        self._golden[addr] = version
        line.version = version
        line.dirty = True

    def check_read(self, core_id: int, line: CacheLine) -> None:
        """Check a load observes the latest performed write."""
        if not self.check:
            return
        addr = line.line_addr
        expected = self._golden.get(addr, 0)
        if line.version != expected:
            raise CoherenceViolationError(
                f"c{core_id} reads line {addr} version {line.version}, "
                f"expected {expected} (cycle {self._now()})"
            )
