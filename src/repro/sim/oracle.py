"""The golden-value coherence oracle.

Every store bumps a per-line *golden version* and stamps it on the
written cache line; loads (when checking is enabled) must observe the
latest golden version.  The version plumbing is always on — write-backs
and the LLC/DRAM version stores rely on it — while the single-writer /
read-latest *checks* are enabled by ``SimConfig.check_coherence`` (the
property-based test-suite runs with them on).

Violations raise :class:`CoherenceViolationError`, which carries the
offending core, line address, cycle and violation kind as structured
attributes, and whose message includes the core's criticality, the
current operating mode and the line's remaining timer budget (when the
owning :class:`~repro.sim.system.System` supplies a ``core_info``
callback) — fault-injection campaign reports are built from these.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.params import MSI_THETA
from repro.sim.cache import CacheLine, LineState
from repro.sim.private_cache import PrivateCache

#: ``core_info`` callback: core id → context mapping (criticality, mode).
CoreInfoFn = Callable[[int], Dict[str, object]]


class CoherenceViolationError(RuntimeError):
    """The golden-value oracle observed a protocol violation.

    Structured fields (``core``, ``line``, ``cycle``, ``kind``) mirror
    the rendered message so CLI diagnostics and fault-campaign reports
    never have to parse it.
    """

    def __init__(
        self,
        message: str,
        *,
        core: Optional[int] = None,
        line: Optional[int] = None,
        cycle: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.core = core
        self.line = line
        self.cycle = cycle
        self.kind = kind


class CoherenceOracle:
    """Tracks golden versions and (optionally) checks every access."""

    __slots__ = ("check", "_caches", "_golden", "_now", "_core_info")

    def __init__(
        self,
        check: bool,
        caches: Sequence[PrivateCache],
        now: Callable[[], int],
        core_info: Optional[CoreInfoFn] = None,
    ) -> None:
        self.check = check
        self._caches = caches
        self._golden: Dict[int, int] = {}
        self._now = now
        self._core_info = core_info

    # -- context -----------------------------------------------------------

    def golden_versions(self) -> Dict[int, int]:
        """Snapshot of the per-line golden versions (campaign audits)."""
        return dict(self._golden)

    def expected_version(self, line_addr: int) -> int:
        """The latest performed write's version for ``line_addr``."""
        return self._golden.get(line_addr, 0)

    def describe_core(
        self, core_id: int, line: Optional[CacheLine] = None
    ) -> str:
        """Render one core's coherence context for diagnostics.

        Includes the criticality level and current operating mode (when
        the system supplied them), the timer register, and — when a line
        with an armed countdown is given — its remaining timer budget.
        """
        cache = self._caches[core_id]
        parts = []
        if self._core_info is not None:
            info = self._core_info(core_id)
            parts.append(f"crit={info.get('criticality', '?')}")
            mode = info.get("mode")
            parts.append(f"mode={'-' if mode is None else mode}")
        theta = cache.theta
        parts.append("θ=MSI" if theta == MSI_THETA else f"θ={theta}")
        if line is not None and line.inv_at is not None:
            parts.append(f"timer budget={max(0, line.inv_at - self._now())}")
        return f"c{core_id}[{' '.join(parts)}]"

    def _violation(
        self, kind: str, core_id: int, line: CacheLine, detail: str
    ) -> CoherenceViolationError:
        cycle = self._now()
        return CoherenceViolationError(
            f"{kind}: {self.describe_core(core_id, line)} {detail} "
            f"(cycle {cycle})",
            core=core_id,
            line=line.line_addr,
            cycle=cycle,
            kind=kind,
        )

    # -- checks ------------------------------------------------------------

    def perform_write(self, core_id: int, line: CacheLine) -> None:
        """Perform a store: bump the golden version of the line."""
        addr = line.line_addr
        if self.check:
            if line.state != LineState.M:
                raise self._violation(
                    "write-without-ownership", core_id, line,
                    f"stores to line {addr} in state {line.state.name}",
                )
            for cache in self._caches:
                if cache.core_id == core_id:
                    continue
                other = cache.lookup(addr)
                if other is not None and other.valid:
                    raise self._violation(
                        "multiple-copies-on-write", core_id, line,
                        f"writes line {addr} while "
                        f"{self.describe_core(cache.core_id, other)} holds "
                        f"it in {other.state.name}",
                    )
        version = self._golden.get(addr, 0) + 1
        self._golden[addr] = version
        line.version = version
        line.dirty = True

    def unchecked_writer(self) -> Callable[[CacheLine], None]:
        """A ``perform_write`` closure minus the coherence checks.

        For hot paths that have already excluded checked configurations
        (the lock-step engine peels ``check_coherence=True``); raises if
        checking is on, since the closure would skip the single-writer
        check.
        """
        if self.check:
            raise RuntimeError(
                "unchecked_writer() requires check_coherence=False"
            )
        golden = self._golden

        def write(line: CacheLine) -> None:
            version = golden.get(line.line_addr, 0) + 1
            golden[line.line_addr] = version
            line.version = version
            line.dirty = True

        return write

    def check_read(self, core_id: int, line: CacheLine) -> None:
        """Check a load observes the latest performed write."""
        if not self.check:
            return
        addr = line.line_addr
        expected = self._golden.get(addr, 0)
        if line.version != expected:
            raise self._violation(
                "stale-read", core_id, line,
                f"reads line {addr} version {line.version}, "
                f"expected {expected}",
            )
