"""Fixed-latency main-memory model (non-perfect LLC configuration).

The paper's footnote 1 reports that a non-perfect LLC backed by a
fixed-latency main memory shows the same observations as the perfect-LLC
experiments; this model provides that backing store.  It also acts as the
version-of-record for the golden-value coherence oracle: LLC evictions
write versions back here and LLC fills read them, so no write is ever
lost regardless of cache churn.
"""

from __future__ import annotations

from typing import Dict


class FixedLatencyDRAM:
    """A flat memory with a fixed access latency and per-line versions."""

    def __init__(self, latency: int) -> None:
        if latency < 0:
            raise ValueError("DRAM latency must be non-negative")
        self.latency = latency
        self._versions: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read_version(self, line_addr: int) -> int:
        """Version of the line stored in memory (0 if never written)."""
        self.reads += 1
        return self._versions.get(line_addr, 0)

    def write_version(self, line_addr: int, version: int) -> None:
        """Store a written-back line version."""
        self.writes += 1
        self._versions[line_addr] = version

    def peek_version(self, line_addr: int) -> int:
        """Read without counting an access (oracle/debug use)."""
        return self._versions.get(line_addr, 0)
