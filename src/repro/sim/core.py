"""The trace-replay core model.

Each core replays a :class:`~repro.sim.trace.Trace`: it computes for the
access's ``gap`` cycles, then issues the access to its private cache.
Hits retire after the hit latency; a miss hands a coherence request to
the protocol engine and the core waits for the fill.

The paper's cores are out-of-order with non-blocking private caches
"allowing hits-over-misses"; this is modelled as a bounded *run-ahead*
window: while one miss is outstanding, the core keeps executing
subsequent trace entries **as long as they hit**, up to
``runahead_window`` entries, stopping early at the first further miss.
Run-ahead hits overlap with the miss latency, which is exactly the
performance effect the timer-protected lines of CoHoRT amplify.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.sim.trace import Trace


class CoreState(enum.Enum):
    """Execution state of a replay core."""

    RUNNING = "running"
    WAITING = "waiting"   #: one miss outstanding (run-ahead may continue).
    DONE = "done"


class Core:
    """Replays one trace against the memory system."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        system: "object",
        line_bytes: int,
        hit_latency: int,
        runahead_window: int,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.system = system
        self.hit_latency = hit_latency
        self.runahead_window = runahead_window
        self._line_addrs = trace.line_addrs(line_bytes)
        self._gaps = trace.gaps
        self._ops = trace.ops

        self.state = CoreState.RUNNING
        self.pos = 0
        self._epoch = 0
        self._miss_index: Optional[int] = None
        # Run-ahead bookkeeping (valid only while WAITING):
        self._ra_next: Optional[Tuple[int, int]] = None       # (index, due cycle)
        self._ra_blocked: Optional[Tuple[int, int]] = None    # (index, cycle)
        self._ra_exhausted: Optional[Tuple[int, int]] = None  # (next index, cycle)
        self.finish_cycle: Optional[int] = None

    # -- helpers ---------------------------------------------------------------

    def _entry(self, i: int) -> Tuple[int, int, int]:
        """(gap, op, line_addr) of entry ``i``."""
        return int(self._gaps[i]), int(self._ops[i]), int(self._line_addrs[i])

    @property
    def done(self) -> bool:
        return self.state == CoreState.DONE

    @property
    def num_entries(self) -> int:
        return len(self.trace)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first access (called once by the system)."""
        if self.num_entries == 0:
            self._finish(0)
            return
        gap, _op, _line = self._entry(0)
        self._schedule_issue(0, at=gap)

    def _schedule_issue(self, index: int, at: int) -> None:
        epoch = self._epoch
        self.system.kernel.schedule(
            at, self.system.PHASE_CORE, lambda: self._issue(epoch, index)
        )

    def _finish(self, cycle: int) -> None:
        self.state = CoreState.DONE
        self.finish_cycle = cycle
        self.system.on_core_done(self.core_id, cycle)

    def _advance(self, next_index: int, retire_cycle: int) -> None:
        """Move on after retiring everything before ``next_index``."""
        self.pos = next_index
        if next_index >= self.num_entries:
            self._finish(retire_cycle)
            return
        gap, _op, _line = self._entry(next_index)
        self._schedule_issue(next_index, at=retire_cycle + gap)

    # -- normal issue -------------------------------------------------------------

    def _issue(self, epoch: int, index: int) -> None:
        if epoch != self._epoch or self.state == CoreState.DONE:
            return
        now = self.system.kernel.now
        _gap, op, line = self._entry(index)
        hit = self.system.try_access(self.core_id, op, line, runahead=False)
        if hit:
            self._advance(index + 1, now + self.hit_latency)
            return
        # Miss: the system created and enqueued the coherence request.
        self.state = CoreState.WAITING
        self._miss_index = index
        self._ra_next = None
        self._ra_blocked = None
        self._ra_exhausted = None
        nxt = index + 1
        if self.runahead_window > 0 and nxt < self.num_entries:
            gap, _o, _l = self._entry(nxt)
            self._schedule_ra(nxt, at=now + gap)
        else:
            self._ra_exhausted = (nxt, now)

    # -- run-ahead ----------------------------------------------------------------

    def _schedule_ra(self, index: int, at: int) -> None:
        epoch = self._epoch
        self._ra_next = (index, at)
        self.system.kernel.schedule(
            at, self.system.PHASE_CORE, lambda: self._ra_step(epoch, index)
        )

    def _ra_step(self, epoch: int, index: int) -> None:
        if epoch != self._epoch or self.state != CoreState.WAITING:
            return
        now = self.system.kernel.now
        _gap, op, line = self._entry(index)
        hit = self.system.try_access(self.core_id, op, line, runahead=True)
        if not hit:
            self._ra_next = None
            self._ra_blocked = (index, now)
            return
        retire = now + self.hit_latency
        nxt = index + 1
        assert self._miss_index is not None
        within_window = (nxt - self._miss_index) <= self.runahead_window
        if nxt < self.num_entries and within_window:
            gap, _o, _l = self._entry(nxt)
            self._schedule_ra(nxt, at=retire + gap)
        else:
            self._ra_next = None
            self._ra_exhausted = (nxt, retire)

    # -- fill ---------------------------------------------------------------------

    def on_fill(self, fill_cycle: int) -> None:
        """The outstanding miss completed; resume execution."""
        if self.state != CoreState.WAITING:
            raise RuntimeError(f"core {self.core_id} got a fill while not waiting")
        self._epoch += 1  # cancels any in-flight run-ahead event
        self.state = CoreState.RUNNING
        self._miss_index = None
        if self._ra_next is not None:
            index, due = self._ra_next
            # The run-ahead check for `index` was due at `due`; its gap has
            # already been consumed, so issue it as soon as both the gap and
            # the fill allow.
            self.pos = index
            self._schedule_issue(index, at=max(fill_cycle, due))
        elif self._ra_blocked is not None:
            index, since = self._ra_blocked
            self.pos = index
            self._schedule_issue(index, at=max(fill_cycle, since))
        else:
            assert self._ra_exhausted is not None
            index, at = self._ra_exhausted
            self._advance(index, retire_cycle=max(fill_cycle, at))
        self._ra_next = None
        self._ra_blocked = None
        self._ra_exhausted = None
