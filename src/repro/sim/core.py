"""The trace-replay core model.

Each core replays a :class:`~repro.sim.trace.Trace`: it computes for the
access's ``gap`` cycles, then issues the access to its private cache.
Hits retire after the hit latency; a miss hands a coherence request to
the protocol engine and the core waits for the fill.

The paper's cores are out-of-order with non-blocking private caches
"allowing hits-over-misses"; this is modelled as a bounded *run-ahead*
window: while one miss is outstanding, the core keeps executing
subsequent trace entries **as long as they hit**, up to
``runahead_window`` entries, stopping early at the first further miss.
Run-ahead hits overlap with the miss latency, which is exactly the
performance effect the timer-protected lines of CoHoRT amplify.

Performance: consecutive hits are retired *inline* whenever
:meth:`~repro.sim.kernel.EventKernel.advance_if_next` proves that the
issue event the core would schedule is the next event to run anyway —
no other core, timer or bus event can observe or change state in
between, so skipping the heap round-trip is cycle-identical to the
event-per-access path (``fast_path=False`` restores the latter; the
regression suite asserts equivalence on random workloads).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.sim.trace import Trace, decode_trace


class CoreState(enum.Enum):
    """Execution state of a replay core."""

    RUNNING = "running"
    WAITING = "waiting"   #: one miss outstanding (run-ahead may continue).
    DONE = "done"


class Core:
    """Replays one trace against the memory system."""

    __slots__ = (
        "core_id",
        "trace",
        "system",
        "hit_latency",
        "runahead_window",
        "fast_path",
        "_decoded",
        "_line_addrs",
        "_gaps",
        "_ops",
        "state",
        "pos",
        "_epoch",
        "_miss_index",
        "_ra_next",
        "_ra_blocked",
        "_ra_exhausted",
        "finish_cycle",
    )

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        system: "object",
        line_bytes: int,
        hit_latency: int,
        runahead_window: int,
        fast_path: bool = True,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.system = system
        self.hit_latency = hit_latency
        self.runahead_window = runahead_window
        self.fast_path = fast_path
        # Plain Python lists: per-entry indexing of numpy arrays allocates
        # a numpy scalar per access, which dominates the replay loop.  The
        # lists come from the process-local decoded-trace cache, so a sweep
        # re-running one trace under many configs decodes it exactly once.
        decoded = decode_trace(trace, line_bytes)
        self._decoded = decoded
        self._line_addrs = decoded.lines
        self._gaps = decoded.gaps
        self._ops = decoded.ops

        self.state = CoreState.RUNNING
        self.pos = 0
        self._epoch = 0
        self._miss_index: Optional[int] = None
        # Run-ahead bookkeeping (valid only while WAITING):
        self._ra_next: Optional[Tuple[int, int]] = None       # (index, due cycle)
        self._ra_blocked: Optional[Tuple[int, int]] = None    # (index, cycle)
        self._ra_exhausted: Optional[Tuple[int, int]] = None  # (next index, cycle)
        self.finish_cycle: Optional[int] = None

    # -- helpers ---------------------------------------------------------------

    def _entry(self, i: int) -> Tuple[int, int, int]:
        """(gap, op, line_addr) of entry ``i``."""
        return self._gaps[i], self._ops[i], self._line_addrs[i]

    @property
    def done(self) -> bool:
        return self.state == CoreState.DONE

    @property
    def num_entries(self) -> int:
        return len(self._gaps)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first access (called once by the system)."""
        if self.num_entries == 0:
            self._finish(0)
            return
        self._schedule_issue(0, at=self._gaps[0])

    def _schedule_issue(self, index: int, at: int) -> None:
        self.system.kernel.schedule(
            at, self.system.PHASE_CORE, self._issue, self._epoch, index
        )

    def _finish(self, cycle: int) -> None:
        self.state = CoreState.DONE
        self.finish_cycle = cycle
        self.system.on_core_done(self.core_id, cycle)

    def _advance(self, next_index: int, retire_cycle: int) -> None:
        """Move on after retiring everything before ``next_index``."""
        self.pos = next_index
        if next_index >= self.num_entries:
            self._finish(retire_cycle)
            return
        self._schedule_issue(next_index, at=retire_cycle + self._gaps[next_index])

    # -- normal issue -------------------------------------------------------------

    def _issue(self, epoch: int, index: int) -> None:
        if epoch != self._epoch or self.state == CoreState.DONE:
            return
        system = self.system
        kernel = system.kernel
        try_access = system.try_access
        advance_if_next = kernel.advance_if_next
        gaps = self._gaps
        ops = self._ops
        lines = self._line_addrs
        core_id = self.core_id
        hit_latency = self.hit_latency
        n = len(gaps)
        phase_core = system.PHASE_CORE
        fast = self.fast_path
        while True:
            if not try_access(core_id, ops[index], lines[index], False):
                break
            retire = kernel._now + hit_latency
            nxt = index + 1
            if nxt >= n:
                self.pos = nxt
                self._finish(retire)
                return
            due = retire + gaps[nxt]
            self.pos = nxt
            if fast and advance_if_next(due, phase_core):
                # The issue event for `nxt` would be the next event popped:
                # retire it inline without touching the heap.
                index = nxt
                continue
            self._schedule_issue(nxt, at=due)
            return
        # Miss: the system created and enqueued the coherence request.
        now = kernel._now
        self.state = CoreState.WAITING
        self._miss_index = index
        self._ra_next = None
        self._ra_blocked = None
        self._ra_exhausted = None
        nxt = index + 1
        if self.runahead_window > 0 and nxt < n:
            self._schedule_ra(nxt, at=now + gaps[nxt])
        else:
            self._ra_exhausted = (nxt, now)

    # -- run-ahead ----------------------------------------------------------------

    def _schedule_ra(self, index: int, at: int) -> None:
        self._ra_next = (index, at)
        self.system.kernel.schedule(
            at, self.system.PHASE_CORE, self._ra_step, self._epoch, index
        )

    def _ra_step(self, epoch: int, index: int) -> None:
        if epoch != self._epoch or self.state != CoreState.WAITING:
            return
        system = self.system
        kernel = system.kernel
        try_access = system.try_access
        advance_if_next = kernel.advance_if_next
        gaps = self._gaps
        ops = self._ops
        lines = self._line_addrs
        core_id = self.core_id
        hit_latency = self.hit_latency
        window = self.runahead_window
        n = len(gaps)
        phase_core = system.PHASE_CORE
        fast = self.fast_path
        miss_index = self._miss_index
        assert miss_index is not None
        while True:
            if not try_access(core_id, ops[index], lines[index], True):
                self._ra_next = None
                self._ra_blocked = (index, kernel._now)
                return
            retire = kernel._now + hit_latency
            nxt = index + 1
            if nxt >= n or (nxt - miss_index) > window:
                self._ra_next = None
                self._ra_exhausted = (nxt, retire)
                return
            due = retire + gaps[nxt]
            if fast and advance_if_next(due, phase_core):
                self._ra_next = (nxt, due)
                index = nxt
                continue
            self._schedule_ra(nxt, at=due)
            return

    # -- fill ---------------------------------------------------------------------

    def on_fill(self, fill_cycle: int) -> None:
        """The outstanding miss completed; resume execution."""
        if self.state != CoreState.WAITING:
            raise RuntimeError(f"core {self.core_id} got a fill while not waiting")
        self._epoch += 1  # cancels any in-flight run-ahead event
        self.state = CoreState.RUNNING
        self._miss_index = None
        if self._ra_next is not None:
            index, due = self._ra_next
            # The run-ahead check for `index` was due at `due`; its gap has
            # already been consumed, so issue it as soon as both the gap and
            # the fill allow.
            self.pos = index
            self._schedule_issue(index, at=max(fill_cycle, due))
        elif self._ra_blocked is not None:
            index, since = self._ra_blocked
            self.pos = index
            self._schedule_issue(index, at=max(fill_cycle, since))
        else:
            assert self._ra_exhausted is not None
            index, at = self._ra_exhausted
            self._advance(index, retire_cycle=max(fill_cycle, at))
        self._ra_next = None
        self._ra_blocked = None
        self._ra_exhausted = None
