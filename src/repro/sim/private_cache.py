"""The per-core private cache controller.

Each controller owns a direct-mapped storage array, the CoHoRT timer
threshold register θ (``MSI_THETA`` selects plain snooping MSI, Section
III-B) and the Mode-Switch LUT of Section VI.  The controller performs
the lazy countdown-counter arithmetic; hit/miss *classification* is
delegated to the configured :class:`~repro.sim.protocols.base.
CoherenceProtocol`'s classify table, and the snooping engine that
coordinates controllers lives in :mod:`repro.sim.engine`.

``AccessOutcome`` historically lived here and is re-exported for
compatibility; its home is :mod:`repro.sim.protocols.base`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.params import MSI_THETA, CacheGeometry, MemOp
from repro.sim.cache import CacheLine, DirectMappedArray, LineState
from repro.sim.protocols.base import AccessOutcome, CoherenceProtocol
from repro.sim.timer import ModeSwitchLUT, invalidation_cycle, validate_theta

__all__ = ["AccessOutcome", "EvictedLine", "PrivateCache"]


@dataclass
class EvictedLine:
    """Snapshot of a line displaced by a fill."""

    line_addr: int
    dirty: bool
    version: int


class PrivateCache:
    """One core's L1 cache controller with CoHoRT timer hardware."""

    __slots__ = (
        "core_id",
        "geometry",
        "protocol",
        "_theta",
        "lut",
        "array",
        "fills",
        "evictions",
        "dirty_evictions",
        "back_invalidations",
    )

    def __init__(
        self,
        core_id: int,
        geometry: CacheGeometry,
        theta: int,
        lut: Optional[ModeSwitchLUT] = None,
        protocol: Optional[CoherenceProtocol] = None,
    ) -> None:
        validate_theta(theta)
        if protocol is None:
            # Imported lazily: builtin tables import this module's types.
            from repro.sim.protocols.builtin import TIMED_MSI

            protocol = TIMED_MSI
        self.core_id = core_id
        self.geometry = geometry
        self.protocol = protocol
        self._theta = theta
        self.lut = lut if lut is not None else ModeSwitchLUT()
        self.array = DirectMappedArray(geometry)
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.back_invalidations = 0

    # -- timer register ------------------------------------------------------

    @property
    def theta(self) -> int:
        """The timer threshold register of this core (current mode)."""
        return self._theta

    def set_theta(self, theta: int) -> None:
        """Reprogram the timer threshold register (run-time protocol switch)."""
        validate_theta(theta)
        self._theta = theta

    @property
    def is_msi(self) -> bool:
        return self._theta == MSI_THETA

    def apply_mode(self, mode: int) -> int:
        """Switch operating mode: load θ for ``mode`` from the LUT."""
        theta = self.lut.lookup(mode)
        self.set_theta(theta)
        return theta

    # -- lookups ---------------------------------------------------------------

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """The resident line for this address, or None."""
        return self.array.lookup(line_addr)

    def classify(self, op: MemOp, line_addr: int) -> AccessOutcome:
        """Hit/miss classification of a local access, right now.

        Delegates to the protocol's classify table against the line's
        *effective* state (frozen copies classify as invalid).
        """
        return self.protocol.classify(self, op, line_addr)

    # -- pending-invalidation timer arithmetic ----------------------------------

    def mark_pending(
        self, line: CacheLine, now: int, downgrade: bool
    ) -> int:
        """Record a remote conflicting request against a resident line.

        Returns the cycle at which the countdown counter will allow the
        invalidation/handover (``now`` itself for an MSI core).  Idempotent:
        an already-pending line keeps its earlier deadline; a pending
        *downgrade* escalates to a pending *invalidation* when a writer
        arrives, keeping the same deadline.
        """
        if not line.valid:
            raise ValueError("cannot mark an invalid line pending")
        if line.pending_inv_since is None:
            line.arm_pending(now)
            line.pending_is_downgrade = downgrade
            line.inv_at = invalidation_cycle(
                line.fill_cycle, self._theta, now
            )
        elif line.pending_is_downgrade and not downgrade:
            line.pending_is_downgrade = False
        return line.inv_at

    # -- fills / evictions -------------------------------------------------------

    def fill(
        self,
        line_addr: int,
        state: LineState,
        cycle: int,
        version: int,
    ) -> Optional[EvictedLine]:
        """Install a line; return the displaced victim, if any.

        The caller (the protocol engine) is responsible for writing back a
        dirty victim and for re-evaluating requests that were waiting on
        either line.
        """
        if state == LineState.I:
            raise ValueError("cannot fill to the invalid state")
        slot = self.array.slot(line_addr)
        victim: Optional[EvictedLine] = None
        if slot.valid and slot.line_addr != line_addr:
            victim = EvictedLine(
                line_addr=slot.line_addr,
                dirty=slot.dirty,
                version=slot.version,
            )
            self.evictions += 1
            if slot.dirty:
                self.dirty_evictions += 1
            slot.invalidate()
        if not slot.valid:
            self.array._valid_count += 1
        slot.line_addr = line_addr
        slot.state = state
        slot.fill_cycle = cycle
        slot.version = version
        slot.dirty = False
        slot.clear_pending()
        slot.generation += 1
        self.fills += 1
        return victim

    def back_invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        """Inclusion-driven invalidation from the LLC (non-perfect mode).

        Overrides any running timer.  Returns the dropped copy so a dirty
        version can be merged into the LLC/memory.
        """
        line = self.lookup(line_addr)
        if line is None:
            return None
        snapshot = EvictedLine(
            line_addr=line.line_addr, dirty=line.dirty, version=line.version
        )
        line.invalidate()
        self.back_invalidations += 1
        return snapshot

    # -- introspection -------------------------------------------------------------

    def resident_lines(self) -> int:
        """Number of valid lines currently held.

        O(1): reads the array's incrementally-maintained valid-line
        counter (``DirectMappedArray.__len__``), never scanning the
        storage.  :meth:`repro.sim.cache.DirectMappedArray.recount`
        recomputes the same quantity by scanning — the consistency tests
        assert the two always agree.
        """
        return len(self.array)

    def __repr__(self) -> str:
        proto = "MSI" if self.is_msi else f"timed(θ={self._theta})"
        return (
            f"PrivateCache(c{self.core_id}, {self.protocol.name}/{proto}, "
            f"{self.resident_lines()}/{self.geometry.num_sets} lines)"
        )
