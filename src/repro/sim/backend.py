"""The memory backend layer: what sits behind the shared bus.

The snooping engine only ever asks a :class:`MemoryBackend` four
questions — *can this line be sourced right now*, *what version does it
hold*, *accept this write-back*, *snarf this transferred version* — and
the backend answers them for two storage models matching the paper's
footnote-1 split:

* :class:`PerfectLLC` — every access hits in the LLC (the paper's main
  configuration); the backend is a plain version store and never evicts.
* :class:`LLCWithDRAM` — a set-associative, LRU-replaced LLC backed by
  :class:`~repro.sim.dram.FixedLatencyDRAM`.  Misses start a DRAM fetch
  before the data transfer can be granted, and insertions may evict a
  line, back-invalidating the L1 copies (inclusion).

Both backends own the eviction write-back buffer (one pending write-back
per line), including its two draining disciplines: the dedicated
write-back port (default) and serialised write-backs on the shared bus
(``SimConfig.wb_on_bus``).  Observable backend activity — write-backs,
DRAM fetches, back-invalidations — is published on the system's
:class:`~repro.sim.events.EventBus`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.params import SimConfig
from repro.sim.dram import FixedLatencyDRAM
from repro.sim.kernel import PHASE_EFFECT
from repro.sim.llc import SharedLLC
from repro.sim.messages import BusJob, JobKind, Writeback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System


class MemoryBackend:
    """Interface and shared write-back plumbing of the backend layer."""

    name = "abstract"

    #: The owning system; assigned by :meth:`attach` before any traffic.
    system: "System"

    def __init__(self, config: SimConfig, llc: SharedLLC) -> None:
        self.config = config
        self.llc = llc
        #: line address → buffered dirty-eviction write-back.
        self._wbs: Dict[int, Writeback] = {}
        #: lines whose write-back currently occupies the shared bus.
        self._wb_inflight: Set[int] = set()

    def attach(self, system: "System") -> None:
        """Wire the backend into a system (kernel, events, engine)."""
        self.system = system

    # -- sourcing ----------------------------------------------------------

    def ready_for_read(self, line_addr: int) -> bool:
        """Whether the backend can source ``line_addr`` right now.

        False while the latest data for the line still sits in a
        write-back buffer, and false when the storage model needs a DRAM
        fetch first (which this call then starts).
        """
        if line_addr in self._wbs:
            return False
        return self._probe(line_addr)

    def _probe(self, line_addr: int) -> bool:
        raise NotImplementedError

    def record_fill_access(self, line_addr: int, cycle: int) -> None:
        """Account one data transfer sourced from the backend."""
        self.llc.record_access(line_addr, cycle)

    def version(self, line_addr: int) -> int:
        """Current golden version the backend would source."""
        return self.llc.version(line_addr)

    def snarf(self, line_addr: int, version: int, cycle: int) -> None:
        """Absorb a version observed on a cache-to-cache transfer."""
        self.llc.write_version(line_addr, version, cycle)

    # -- write-backs -------------------------------------------------------

    def enqueue_writeback(self, core_id: int, line_addr: int, version: int) -> None:
        """Buffer one dirty-eviction write-back and start draining it."""
        assert line_addr not in self._wbs, (
            f"second write-back for line {line_addr} while one is pending"
        )
        system = self.system
        wb = Writeback(
            core_id=core_id,
            line_addr=line_addr,
            version=version,
            created_cycle=system.kernel.now,
            seq=system.next_seq(),
        )
        self._wbs[line_addr] = wb
        system.events.emit(
            "writeback", core=core_id, line=line_addr, on_bus=self.config.wb_on_bus
        )
        if self.config.wb_on_bus:
            system.request_arbitration()
        else:
            # Dedicated write-back port: completes after the data latency.
            system.kernel.schedule(
                system.kernel.now + self.config.latencies.data,
                PHASE_EFFECT,
                self.on_wb_done,
                wb,
            )

    def has_pending_writeback(self, line_addr: int) -> bool:
        """Whether a write-back for the line is still buffered."""
        return line_addr in self._wbs

    def buffered_version(self, line_addr: int) -> Optional[int]:
        """Version held by a still-buffered write-back, or ``None``.

        Campaign audits use this to prove the latest golden version of a
        line is reachable somewhere (cache copy, backend, or this
        buffer) at end of run."""
        wb = self._wbs.get(line_addr)
        return None if wb is None else wb.version

    def pending_writeback_count(self) -> int:
        """Write-backs currently buffered (draining or awaiting the bus).

        The write-back queue depth sampled by the telemetry layer
        (:mod:`repro.obs.metrics`)."""
        return len(self._wbs)

    def bus_jobs(self) -> List[BusJob]:
        """Grantable write-back jobs (``wb_on_bus`` discipline only)."""
        if not self.config.wb_on_bus:
            return []
        return [
            BusJob(JobKind.WRITEBACK, wb.core_id, wb.seq, wb=wb)
            for line_addr, wb in self._wbs.items()
            if line_addr not in self._wb_inflight
        ]

    def mark_inflight(self, wb: Writeback) -> None:
        """The arbiter granted this write-back a bus slot."""
        self._wb_inflight.add(wb.line_addr)

    def on_wb_done(self, wb: Writeback) -> None:
        """A write-back drained: commit the version and release waiters."""
        system = self.system
        self.llc.write_version(wb.line_addr, wb.version, system.kernel.now)
        self._wbs.pop(wb.line_addr, None)
        self._wb_inflight.discard(wb.line_addr)
        system.events.emit("wb_done", core=wb.core_id, line=wb.line_addr)
        system.engine.update_line(wb.line_addr)


class PerfectLLC(MemoryBackend):
    """Paper's main configuration: every access hits in the LLC."""

    name = "perfect_llc"

    def _probe(self, line_addr: int) -> bool:
        return True


class LLCWithDRAM(MemoryBackend):
    """Non-perfect LLC backed by fixed-latency DRAM (footnote 1)."""

    name = "llc_with_dram"

    def __init__(self, config: SimConfig, llc: SharedLLC) -> None:
        super().__init__(config, llc)
        self._dram_fetches: Set[int] = set()

    @property
    def dram(self) -> FixedLatencyDRAM:
        return self.llc.dram

    def _probe(self, line_addr: int) -> bool:
        if not self.llc.present(line_addr):
            self._start_dram_fetch(line_addr)
            return False
        return True

    def _start_dram_fetch(self, line_addr: int) -> None:
        if line_addr in self._dram_fetches:
            return
        self._dram_fetches.add(line_addr)
        system = self.system
        system.events.emit("dram_fetch", line=line_addr)
        system.kernel.schedule(
            system.kernel.now + self.dram.latency,
            PHASE_EFFECT,
            self._on_dram_fill,
            line_addr,
        )

    def _on_dram_fill(self, line_addr: int) -> None:
        system = self.system
        engine = system.engine
        now = system.kernel.now
        victim_addr = self.llc.peek_victim(line_addr)
        if victim_addr is not None and (
            victim_addr == engine.transfer_line or victim_addr in self._wbs
        ):
            # Evicting this victim now would corrupt an in-flight transfer
            # or an un-drained write-back; retry shortly.
            system.kernel.schedule(
                max(now + 1, system.bus.busy_until),
                PHASE_EFFECT,
                self._on_dram_fill,
                line_addr,
            )
            return
        self._dram_fetches.discard(line_addr)
        victim = self.llc.fill_from_memory(line_addr, now)
        if victim is not None:
            merged = victim.version
            for cache in system.caches:
                snap = cache.back_invalidate(victim.line_addr)
                if snap is not None:
                    system.events.emit(
                        "back_invalidate",
                        core=cache.core_id,
                        line=victim.line_addr,
                        dirty=snap.dirty,
                    )
                    if snap.dirty:
                        merged = snap.version
            victim.version = merged
            self.llc.evict_to_memory(victim)
            engine.refresh_snoop(victim.line_addr)
            engine.update_line(victim.line_addr)
        engine.update_line(line_addr)


def build_backend(config: SimConfig, dram: FixedLatencyDRAM) -> MemoryBackend:
    """The backend matching ``config.perfect_llc`` (footnote-1 split)."""
    llc = SharedLLC(config.llc, config.perfect_llc, dram)
    if config.perfect_llc:
        return PerfectLLC(config, llc)
    return LLCWithDRAM(config, llc)
