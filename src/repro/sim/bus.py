"""The shared snooping bus.

A thin occupancy model: at most one job (request broadcast or data
transfer) holds the bus at a time; the protocol engine grants jobs chosen
by the arbiter and schedules their completion.  Write-backs drain through
a dedicated write-back port to the LLC by default (``wb_on_bus=False``)
so that eviction traffic does not interfere with the latency bound of
Equation 1; setting ``wb_on_bus=True`` serialises them on the main bus
instead (with a correspondingly extended analytical bound, see
:func:`repro.analysis.wcl.wcl_miss_shared_wb`).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.messages import BusJob


class SharedBus:
    """Single-occupancy bus with separate job and stall horizons.

    Two clocks back the occupancy model.  ``_job_done`` is the completion
    cycle of the currently granted job; :meth:`release` checks only this
    one, so a fault-injected stall overlapping an in-flight transfer does
    not make the engine's perfectly timed release look early.  A
    ``_stall_until`` horizon records injected occupancy; grants honour
    whichever horizon is later.
    """

    def __init__(self) -> None:
        self._job_done = 0
        self._stall_until = 0
        self._current: Optional[BusJob] = None

    def idle(self, now: int) -> bool:
        """Whether the bus can accept a grant at ``now``."""
        return now >= self.busy_until

    @property
    def current_job(self) -> Optional[BusJob]:
        return self._current

    @property
    def busy_until(self) -> int:
        """First cycle at which a new grant may happen."""
        return max(self._job_done, self._stall_until)

    def grant(self, job: BusJob, now: int, duration: int) -> int:
        """Occupy the bus with ``job``; returns the completion cycle."""
        if not self.idle(now):
            raise RuntimeError(
                f"bus grant at cycle {now} while busy until {self.busy_until}"
            )
        if duration < 1:
            raise ValueError("bus occupancy must be at least one cycle")
        self._job_done = now + duration
        self._current = job
        return self._job_done

    def release(self, now: int) -> None:
        """Called by the engine when the current job completes.

        Checked against the job's own completion cycle, not the stall
        horizon: a stall injected mid-transfer extends the time until the
        *next* grant, but the in-flight job still completes on schedule.
        """
        if now < self._job_done:
            raise RuntimeError("bus released before the job completed")
        self._current = None

    def stall(self, now: int, duration: int) -> int:
        """Externally-injected occupancy without a job (fault injection).

        Extends ``busy_until`` so no new grant can happen before the
        stall ends; there is no current job and no release is required.
        An in-flight job keeps its own completion cycle — the stall only
        delays subsequent arbitration.  The caller is responsible for
        re-requesting arbitration at the returned cycle.  Only
        :mod:`repro.fi` uses this — the protocol engine itself always
        occupies the bus through :meth:`grant`.
        """
        if duration < 1:
            raise ValueError("bus stall must be at least one cycle")
        self._stall_until = max(self._stall_until, now + duration)
        return self.busy_until
