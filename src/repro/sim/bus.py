"""The shared snooping bus.

A thin occupancy model: at most one job (request broadcast or data
transfer) holds the bus at a time; the protocol engine grants jobs chosen
by the arbiter and schedules their completion.  Write-backs drain through
a dedicated write-back port to the LLC by default (``wb_on_bus=False``)
so that eviction traffic does not interfere with the latency bound of
Equation 1; setting ``wb_on_bus=True`` serialises them on the main bus
instead (with a correspondingly extended analytical bound, see
:func:`repro.analysis.wcl.wcl_miss_shared_wb`).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.messages import BusJob


class SharedBus:
    """Single-occupancy bus with a busy-until clock."""

    def __init__(self) -> None:
        self._busy_until = 0
        self._current: Optional[BusJob] = None

    def idle(self, now: int) -> bool:
        """Whether the bus can accept a grant at ``now``."""
        return now >= self._busy_until

    @property
    def current_job(self) -> Optional[BusJob]:
        return self._current

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def grant(self, job: BusJob, now: int, duration: int) -> int:
        """Occupy the bus with ``job``; returns the completion cycle."""
        if not self.idle(now):
            raise RuntimeError(
                f"bus grant at cycle {now} while busy until {self._busy_until}"
            )
        if duration < 1:
            raise ValueError("bus occupancy must be at least one cycle")
        self._busy_until = now + duration
        self._current = job
        return self._busy_until

    def release(self, now: int) -> None:
        """Called by the engine when the current job completes."""
        if now < self._busy_until:
            raise RuntimeError("bus released before the job completed")
        self._current = None

    def stall(self, now: int, duration: int) -> int:
        """Externally-injected occupancy without a job (fault injection).

        Extends ``busy_until`` so no grant can happen before the stall
        ends; there is no current job and no release is required.  The
        caller is responsible for re-requesting arbitration at the
        returned cycle.  Only :mod:`repro.fi` uses this — the protocol
        engine itself always occupies the bus through :meth:`grant`.
        """
        if duration < 1:
            raise ValueError("bus stall must be at least one cycle")
        self._busy_until = max(self._busy_until, now + duration)
        return self._busy_until
