"""Memory access traces.

A :class:`Trace` is a per-core sequence of memory accesses, each with a
*gap* (compute cycles the core spends before issuing the access, counted
from the retirement of the previous access), an operation kind and a byte
address.  Traces are what the workload generators in
:mod:`repro.workloads` produce and what the simulator's cores replay.
"""

from __future__ import annotations

import hashlib
import io
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.params import MemOp


@dataclass(frozen=True)
class TraceAccess:
    """One memory access of a trace."""

    gap: int
    op: MemOp
    addr: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.addr < 0:
            raise ValueError("addresses are non-negative byte addresses")


class Trace:
    """An immutable sequence of :class:`TraceAccess` entries.

    Internally array-backed so that large traces stay compact and the
    in-isolation cache analysis can vectorise over them.
    """

    __slots__ = ("_gaps", "_ops", "_addrs", "_digest")

    def __init__(self, accesses: Iterable[TraceAccess] = ()) -> None:
        gaps: List[int] = []
        ops: List[int] = []
        addrs: List[int] = []
        for acc in accesses:
            gaps.append(acc.gap)
            ops.append(int(acc.op))
            addrs.append(acc.addr)
        self._gaps = np.asarray(gaps, dtype=np.int64)
        self._ops = np.asarray(ops, dtype=np.int8)
        self._addrs = np.asarray(addrs, dtype=np.int64)
        self._digest: str = ""

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        gaps: Sequence[int],
        ops: Sequence[int],
        addrs: Sequence[int],
    ) -> "Trace":
        """Build a trace directly from parallel arrays (no copies of lists)."""
        gaps = np.asarray(gaps, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int8)
        addrs = np.asarray(addrs, dtype=np.int64)
        if not (len(gaps) == len(ops) == len(addrs)):
            raise ValueError("gaps, ops and addrs must have equal length")
        if len(gaps) and gaps.min() < 0:
            raise ValueError("gaps must be non-negative")
        if len(addrs) and addrs.min() < 0:
            raise ValueError("addresses must be non-negative")
        if len(ops) and not np.isin(ops, (int(MemOp.LOAD), int(MemOp.STORE))).all():
            raise ValueError("ops must be MemOp values")
        trace = cls.__new__(cls)
        trace._gaps = gaps
        trace._ops = ops
        trace._addrs = addrs
        trace._digest = ""
        return trace

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._gaps)

    def __getitem__(self, i: int) -> TraceAccess:
        return TraceAccess(
            gap=int(self._gaps[i]),
            op=MemOp(int(self._ops[i])),
            addr=int(self._addrs[i]),
        )

    def __iter__(self) -> Iterator[TraceAccess]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            np.array_equal(self._gaps, other._gaps)
            and np.array_equal(self._ops, other._ops)
            and np.array_equal(self._addrs, other._addrs)
        )

    def __repr__(self) -> str:
        return (
            f"Trace(n={len(self)}, addrs={self.footprint_bytes}, "
            f"writes={self.num_stores})"
        )

    # -- raw views ---------------------------------------------------------

    @property
    def gaps(self) -> np.ndarray:
        return self._gaps

    @property
    def ops(self) -> np.ndarray:
        return self._ops

    @property
    def addrs(self) -> np.ndarray:
        return self._addrs

    def line_addrs(self, line_bytes: int) -> np.ndarray:
        """Line addresses (byte address divided by the line size)."""
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        return self._addrs // line_bytes

    def content_digest(self) -> str:
        """Content hash over the raw access arrays (memoized per object).

        Two traces with equal accesses share a digest regardless of how
        they were constructed; the decoded-trace cache below is keyed on
        it so every process decodes each distinct trace at most once.
        """
        if not self._digest:
            h = hashlib.sha1()
            h.update(self._gaps.tobytes())
            h.update(self._ops.tobytes())
            h.update(self._addrs.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # -- summary statistics --------------------------------------------------

    @property
    def num_accesses(self) -> int:
        return len(self)

    @property
    def num_stores(self) -> int:
        return int((self._ops == int(MemOp.STORE)).sum())

    @property
    def num_loads(self) -> int:
        return len(self) - self.num_stores

    @property
    def write_ratio(self) -> float:
        return self.num_stores / len(self) if len(self) else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Number of distinct byte addresses touched by the trace."""
        if len(self) == 0:
            return 0
        return int(np.unique(self._addrs).size)

    def unique_lines(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.line_addrs(line_bytes)).size)

    # -- transformations -----------------------------------------------------

    def slice(self, start: int, stop: int) -> "Trace":
        """The sub-trace of accesses ``[start, stop)``."""
        return Trace.from_arrays(
            self._gaps[start:stop], self._ops[start:stop], self._addrs[start:stop]
        )

    def concat(self, other: "Trace") -> "Trace":
        """This trace followed by ``other``."""
        return Trace.from_arrays(
            np.concatenate([self._gaps, other._gaps]),
            np.concatenate([self._ops, other._ops]),
            np.concatenate([self._addrs, other._addrs]),
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Save to an ``.npz`` file."""
        np.savez_compressed(path, gaps=self._gaps, ops=self._ops, addrs=self._addrs)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        with np.load(path) as data:
            return cls.from_arrays(data["gaps"], data["ops"], data["addrs"])

    def to_csv(self) -> str:
        """Render as ``gap,op,addr`` CSV text (op is ``R`` or ``W``)."""
        buf = io.StringIO()
        for i in range(len(self)):
            op = "W" if self._ops[i] == int(MemOp.STORE) else "R"
            buf.write(f"{int(self._gaps[i])},{op},{int(self._addrs[i])}\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Parse ``gap,op,addr`` CSV text (op is ``R`` or ``W``)."""
        gaps: List[int] = []
        ops: List[int] = []
        addrs: List[int] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: expected 'gap,op,addr'")
            gap, op, addr = parts
            op = op.strip().upper()
            if op not in ("R", "W"):
                raise ValueError(f"line {lineno}: op must be R or W, got {op!r}")
            gaps.append(int(gap))
            ops.append(int(MemOp.STORE) if op == "W" else int(MemOp.LOAD))
            addrs.append(int(addr))
        return cls.from_arrays(gaps, ops, addrs)


class DecodedTrace:
    """Immutable decode products of one ``(trace, line_bytes)`` pair.

    Owns the per-entry Python lists the replay cores index (building them
    is the dominant per-``System`` setup cost) plus the numpy planes the
    lock-step engine scans.  Instances are shared: consumers must treat
    every field as read-only.
    """

    __slots__ = (
        "n", "line_bytes", "lines", "gaps", "ops",
        "lines_np", "gaps_np", "ops_np", "store_mask", "store_pos",
        "_set_idx", "_due_prefix",
    )

    def __init__(self, trace: Trace, line_bytes: int) -> None:
        lines_np = trace.line_addrs(line_bytes)
        self.n = len(trace)
        self.line_bytes = line_bytes
        self.lines = lines_np.tolist()
        self.gaps = trace.gaps.tolist()
        self.ops = trace.ops.tolist()
        self.lines_np = lines_np
        self.gaps_np = trace.gaps
        self.ops_np = trace.ops
        self.store_mask = trace.ops != int(MemOp.LOAD)
        #: Indices of store accesses, ascending (for batched write commits).
        self.store_pos = np.flatnonzero(self.store_mask)
        self._set_idx: Dict[int, np.ndarray] = {}
        self._due_prefix: Dict[int, np.ndarray] = {}

    def set_index(self, num_sets: int) -> np.ndarray:
        """Per-access direct-mapped set index (cached per geometry)."""
        cached = self._set_idx.get(num_sets)
        if cached is None:
            cached = self.lines_np & (num_sets - 1)
            self._set_idx[num_sets] = cached
        return cached

    def due_prefix(self, hit_latency: int) -> np.ndarray:
        """Prefix sums of retire times along an uninterrupted hit chain.

        ``due[k] - due[s]`` is the issue-cycle distance between accesses
        ``k`` and ``s`` when every access in between hits: each entry
        costs its own gap plus one hit latency.
        """
        cached = self._due_prefix.get(hit_latency)
        if cached is None:
            cached = np.cumsum(self.gaps_np) + np.arange(self.n, dtype=np.int64) * hit_latency
            self._due_prefix[hit_latency] = cached
        return cached


#: Process-local decoded-trace cache, content-keyed (LRU-bounded).
_DECODE_CACHE: "OrderedDict[Tuple[str, int], DecodedTrace]" = OrderedDict()
_DECODE_CACHE_MAX = 256
#: Cumulative cache statistics, surfaced as ``trace_decode_hits`` in
#: :meth:`repro.runner.SweepRunner.telemetry`.
decode_stats = {"hits": 0, "misses": 0}


def decode_trace(trace: Trace, line_bytes: int) -> DecodedTrace:
    """The shared :class:`DecodedTrace` for ``trace`` at ``line_bytes``.

    Content-keyed: equal traces hit the same entry no matter how many
    `Trace` objects carry them (sweep jobs rebuild traces per payload).
    """
    key = (trace.content_digest(), line_bytes)
    dec = _DECODE_CACHE.get(key)
    if dec is not None:
        decode_stats["hits"] += 1
        _DECODE_CACHE.move_to_end(key)
        return dec
    decode_stats["misses"] += 1
    dec = DecodedTrace(trace, line_bytes)
    _DECODE_CACHE[key] = dec
    while len(_DECODE_CACHE) > _DECODE_CACHE_MAX:
        _DECODE_CACHE.popitem(last=False)
    return dec


def clear_decode_cache() -> None:
    """Drop cached decodes and reset the hit/miss counters (tests)."""
    _DECODE_CACHE.clear()
    decode_stats["hits"] = 0
    decode_stats["misses"] = 0


def merge_stats(traces: Sequence[Trace], line_bytes: int = 64) -> Tuple[int, int]:
    """Total accesses and number of lines shared by at least two traces."""
    total = sum(len(t) for t in traces)
    seen: dict = {}
    shared = set()
    for idx, t in enumerate(traces):
        for line in np.unique(t.line_addrs(line_bytes)):
            line = int(line)
            if line in seen and seen[line] != idx:
                shared.add(line)
            else:
                seen[line] = idx
    return total, len(shared)
