"""The shared, inclusive last-level cache.

Two operating modes mirror the paper's evaluation:

* **perfect** (default, Section VIII): every access hits; the LLC is a
  plain version store and never evicts.  This isolates coherence
  interference from main-memory interference, as the paper does.
* **non-perfect** (footnote 1): an 8-way set-associative LRU array backed
  by :class:`~repro.sim.dram.FixedLatencyDRAM`.  Misses cost the DRAM
  latency before the data transfer can start, and insertions may evict a
  line, triggering back-invalidation of the L1 copies (inclusion).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.params import CacheGeometry
from repro.sim.cache import LLCLine, SetAssociativeArray
from repro.sim.dram import FixedLatencyDRAM


class SharedLLC:
    """Version-tracking shared LLC with perfect and non-perfect modes."""

    def __init__(
        self,
        geometry: CacheGeometry,
        perfect: bool,
        dram: FixedLatencyDRAM,
    ) -> None:
        self.geometry = geometry
        self.perfect = perfect
        self.dram = dram
        self._versions: Dict[int, int] = {}
        self._array: Optional[SetAssociativeArray] = (
            None if perfect else SetAssociativeArray(geometry)
        )
        self.hits = 0
        self.misses = 0

    # -- presence ----------------------------------------------------------

    def present(self, line_addr: int, cycle: int = 0) -> bool:
        """Whether the line can be served without a DRAM fetch."""
        if self.perfect:
            return True
        return self._array.lookup(line_addr, cycle, touch=False) is not None

    def record_access(self, line_addr: int, cycle: int) -> bool:
        """Account one LLC access; returns hit/miss and touches LRU."""
        if self.perfect:
            self.hits += 1
            return True
        line = self._array.lookup(line_addr, cycle, touch=True)
        if line is None:
            self.misses += 1
            return False
        self.hits += 1
        return True

    # -- data versions -----------------------------------------------------

    def version(self, line_addr: int) -> int:
        """Current version of the line as held by the LLC."""
        if self.perfect:
            return self._versions.get(line_addr, 0)
        line = self._array.lookup(line_addr, 0, touch=False)
        if line is None:
            raise KeyError(f"line {line_addr} not resident in the LLC")
        return line.version

    def write_version(self, line_addr: int, version: int, cycle: int = 0) -> None:
        """Accept a write-back / snarfed data version."""
        if self.perfect:
            self._versions[line_addr] = version
            return
        line = self._array.lookup(line_addr, cycle, touch=True)
        if line is None:
            # Write-back to a line the LLC has meanwhile evicted: the data
            # continues straight to main memory.
            self.dram.write_version(line_addr, version)
            return
        line.version = version

    # -- fills / evictions (non-perfect mode) --------------------------------

    def peek_victim(self, line_addr: int) -> Optional[int]:
        """Line a fill of ``line_addr`` would evict (non-perfect mode)."""
        if self.perfect:
            return None
        return self._array.peek_victim(line_addr)

    def fill_from_memory(self, line_addr: int, cycle: int) -> Optional[LLCLine]:
        """Insert a line fetched from DRAM; return the evicted victim, if any.

        The caller is responsible for back-invalidating L1 copies of the
        victim and merging any dirty L1 data before calling
        :meth:`evict_to_memory`.
        """
        if self.perfect:
            return None
        version = self.dram.read_version(line_addr)
        return self._array.insert(line_addr, cycle, version=version)

    def evict_to_memory(self, victim: LLCLine) -> None:
        """Write an evicted LLC line's version to main memory."""
        self.dram.write_version(victim.line_addr, victim.version)

    def occupancy(self) -> int:
        """Number of resident (or version-tracked) lines."""
        if self.perfect:
            return len(self._versions)
        return self._array.occupancy()
