"""Shared-bus arbitration policies.

Four policies cover every system evaluated in the paper:

* :class:`RROFArbiter` — Round-Robin Oldest-First [18], used by CoHoRT and
  the PCC baseline.  Cores are granted in a cyclic sequence; a core
  stalled on a remote timer is skipped without losing its position, and a
  core rotates to the back exactly when the bus finishes serving it (a
  request completes, or a shared-bus write-back drains) — the discipline
  the Equation-1 WCL bound charges.  See the class docstring for why.
* :class:`RoundRobinArbiter` — plain RR (rotates on every grant).
* :class:`FCFSArbiter` — COTS first-come first-serve, the normalisation
  baseline of Figure 6.
* :class:`TDMArbiter` — PENDULUM's time-division multiplexing: fixed
  slots cycle over the *critical* cores only; non-critical cores are
  served exclusively when no critical core has an outstanding request.

Arbiters choose among :class:`~repro.sim.messages.BusJob` candidates
whenever the bus goes idle.  A decision either grants a job now or asks to
be woken at a later cycle (TDM slot boundaries).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.params import ArbiterKind, SimConfig
from repro.sim.messages import BusJob, JobKind


@dataclass(frozen=True)
class ArbitrationDecision:
    """Outcome of one arbitration round."""

    job: Optional[BusJob] = None
    #: If no job is granted, re-arbitrate at this cycle (TDM boundaries).
    wake_at: Optional[int] = None


def _best_job(jobs: List[BusJob]) -> BusJob:
    """A core's highest-priority job: DATA > BROADCAST > WRITEBACK, oldest first."""
    return min(jobs, key=lambda j: (int(j.kind), j.seq))


def _jobs_by_core(jobs: Sequence[BusJob]) -> Dict[int, List[BusJob]]:
    by_core: Dict[int, List[BusJob]] = {}
    for job in jobs:
        by_core.setdefault(job.core_id, []).append(job)
    return by_core


class Arbiter(ABC):
    """Base class of all arbitration policies."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores

    @abstractmethod
    def decide(
        self,
        cycle: int,
        jobs: Sequence[BusJob],
        busy_cores: Set[int],
    ) -> ArbitrationDecision:
        """Pick a job to grant at ``cycle`` among grantable ``jobs``.

        ``busy_cores`` is the set of cores with *any* outstanding request,
        including requests that are waiting on remote timers and therefore
        have no grantable job right now (the TDM policy needs this to
        decide whether non-critical cores may use the slack).
        """

    def on_request_completed(self, core_id: int) -> None:
        """Notification that one of ``core_id``'s requests finished."""

    def on_writeback_completed(self, core_id: int) -> None:
        """Notification that a write-back slot granted to ``core_id`` on
        the shared bus completed (``wb_on_bus=True`` configurations only;
        write-backs draining through the dedicated port never touch the
        arbiter)."""


class RROFArbiter(Arbiter):
    """Round-Robin Oldest-First: rotate the served core to the back.

    A core keeps its position while it is merely *waiting* — stalled on a
    remote timer, or with nothing grantable — so skipped turns cost it
    nothing.  Its position is consumed the moment the bus finishes serving
    it: when one of its requests completes, or (under ``wb_on_bus=True``)
    when one of its write-backs drains.  The served core then drops behind
    *every* core still waiting, not merely one slot.

    That full rotation is what the Equation-1 WCL derivation charges: each
    competing core delays a request by at most one slot (plus its timer
    term) because after being served it cannot be served again until the
    victim has had its turn.  A rotate-only-if-head variant (moving the
    core only when it sat at the front) would let a core ahead of the
    requester be served unboundedly often while the head core stalls on a
    remote timer, and the per-request latency property tests catch exactly
    that.  The same budget is why write-backs rotate too: the shared-WB
    bound (:func:`repro.analysis.wcl.wcl_miss_shared_wb`) charges one
    write-back slot per competing core, which only holds if a core cannot
    drain two buffered write-backs ahead of another core's waiting
    request.

    Completions can arrive out of RROF order (a core served from deeper
    in the sequence because everyone ahead was stalled); the rotation
    applies to whichever core actually completed.
    """

    def __init__(self, num_cores: int) -> None:
        super().__init__(num_cores)
        self._order = deque(range(num_cores))

    @property
    def order(self) -> List[int]:
        return list(self._order)

    def decide(self, cycle, jobs, busy_cores):
        """Grant the first core in RROF order with a grantable job."""
        by_core = _jobs_by_core(jobs)
        for core_id in self._order:
            if core_id in by_core:
                return ArbitrationDecision(job=_best_job(by_core[core_id]))
        return ArbitrationDecision()

    def on_request_completed(self, core_id: int) -> None:
        """The served core rotates to the back of the sequence."""
        self._order.remove(core_id)
        self._order.append(core_id)

    def on_writeback_completed(self, core_id: int) -> None:
        """A bus write-back slot consumes the core's turn, like a request.

        Without this, a core with several buffered write-backs could hold
        the front of the sequence and drain them back-to-back ahead of
        every other core's waiting request — violating the one-slot-per-
        core budget of :func:`repro.analysis.wcl.wcl_miss_shared_wb`.
        """
        self._order.remove(core_id)
        self._order.append(core_id)


class RoundRobinArbiter(Arbiter):
    """Plain round-robin: the sequence rotates past every granted core."""

    def __init__(self, num_cores: int) -> None:
        super().__init__(num_cores)
        self._order = deque(range(num_cores))

    def decide(self, cycle, jobs, busy_cores):
        """Grant the first core in order with a job; rotate past it."""
        by_core = _jobs_by_core(jobs)
        for core_id in list(self._order):
            if core_id in by_core:
                self._order.remove(core_id)
                self._order.append(core_id)
                return ArbitrationDecision(job=_best_job(by_core[core_id]))
        return ArbitrationDecision()


class FCFSArbiter(Arbiter):
    """COTS first-come first-serve over all grantable jobs."""

    def decide(self, cycle, jobs, busy_cores):
        """Grant the oldest grantable job, regardless of core."""
        if not jobs:
            return ArbitrationDecision()
        return ArbitrationDecision(job=min(jobs, key=lambda j: (j.seq,)))


class TDMArbiter(Arbiter):
    """PENDULUM's arbitration: TDM over critical cores, slack for the rest.

    Grants happen only at slot boundaries (every ``slot_width`` cycles).
    The slot owner runs its best job; if the owner has nothing grantable,
    the slot is *idle* unless no critical core has any outstanding request,
    in which case a non-critical core is served (round-robin among them).
    """

    def __init__(
        self,
        num_cores: int,
        critical_cores: Sequence[int],
        slot_width: int,
    ) -> None:
        super().__init__(num_cores)
        if not critical_cores:
            raise ValueError("TDM arbitration needs at least one critical core")
        if slot_width < 1:
            raise ValueError("slot width must be positive")
        self.critical_cores = list(critical_cores)
        self.slot_width = slot_width
        self._ncr_order = deque(
            c for c in range(num_cores) if c not in set(critical_cores)
        )

    def slot_owner(self, cycle: int) -> int:
        """The critical core owning the slot containing ``cycle``."""
        slot = cycle // self.slot_width
        return self.critical_cores[slot % len(self.critical_cores)]

    def next_boundary(self, cycle: int) -> int:
        """First slot boundary strictly after ``cycle``."""
        return (cycle // self.slot_width + 1) * self.slot_width

    def decide(self, cycle, jobs, busy_cores):
        """Grant at slot boundaries only; see the class docstring."""
        if not jobs:
            return ArbitrationDecision()
        if cycle % self.slot_width != 0:
            return ArbitrationDecision(wake_at=self.next_boundary(cycle))
        by_core = _jobs_by_core(jobs)
        owner = self.slot_owner(cycle)
        if owner in by_core:
            return ArbitrationDecision(job=_best_job(by_core[owner]))
        cr_busy = any(c in busy_cores for c in self.critical_cores)
        for core_id in list(self._ncr_order):
            if core_id not in by_core:
                continue
            candidates = by_core[core_id]
            if cr_busy:
                # Non-critical *requests* are gated while any critical core
                # has an outstanding request, but in-flight transactions
                # (data responses, write-backs) must complete in idle slots
                # — otherwise a critical core waiting on a handover to a
                # non-critical requester would deadlock the bus.
                candidates = [
                    j for j in candidates if j.kind != JobKind.BROADCAST
                ]
            if candidates:
                self._ncr_order.remove(core_id)
                self._ncr_order.append(core_id)
                return ArbitrationDecision(job=_best_job(candidates))
        return ArbitrationDecision(wake_at=self.next_boundary(cycle))


def build_arbiter(config: SimConfig) -> Arbiter:
    """Instantiate the arbiter selected by ``config.arbiter``."""
    kind = config.arbiter
    if kind == ArbiterKind.RROF:
        return RROFArbiter(config.num_cores)
    if kind == ArbiterKind.ROUND_ROBIN:
        return RoundRobinArbiter(config.num_cores)
    if kind == ArbiterKind.FCFS:
        return FCFSArbiter(config.num_cores)
    if kind == ArbiterKind.TDM:
        critical = [
            i for i in range(config.num_cores) if config.core_config(i).critical
        ]
        if not critical:
            critical = list(range(config.num_cores))
        return TDMArbiter(
            config.num_cores, critical, config.latencies.slot_width
        )
    raise ValueError(f"unknown arbiter kind: {kind}")
