"""The unified simulator event bus (the observability layer).

Every protocol-level occurrence — misses, bus grants, timer expiries,
fills, write-backs, DRAM traffic, back-invalidations, mode switches —
is published as one structured event on a per-:class:`~repro.sim.
system.System` :class:`EventBus`.  Statistics (:class:`repro.sim.stats.
StatsCollector`), the debug tracer (:class:`repro.sim.debug.
ProtocolTracer`) and the per-layer event counters are all ordinary
subscribers of this stream; the engine layers never talk to any of them
directly.

Listeners are callables with the signature ``listener(cycle, kind,
payload)`` where ``payload`` is a plain dict.  A listener may subscribe
to *all* kinds (a tracer) or to an explicit set of kinds (the stats
collector); by-kind listeners are notified before subscribe-all
listeners, mirroring the pre-bus ordering of stats updates relative to
trace capture.

Hot-path contract: per-access ``hit`` events vastly outnumber
everything else (hits are typically ~99% of accesses), so they are only
*materialised* when a subscriber asked for them — either a
subscribe-all listener or an explicit by-kind subscription to
``"hit"``.  The core layer checks the precomputed :attr:`EventBus.hot`
flag before building a hit payload; all other kinds are always
published.  Per-hit statistics therefore stay inline in
:meth:`repro.sim.system.System.try_access` and the stats collector
subscribes to the (rare) protocol kinds only.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.kernel import EventKernel

Listener = Callable[[int, str, Dict[str, Any]], None]

#: Every event kind the stock engine layers emit, by layer.
CORE_EVENTS: Tuple[str, ...] = ("hit", "miss")
BUS_EVENTS: Tuple[str, ...] = ("grant",)
PROTOCOL_EVENTS: Tuple[str, ...] = ("timer_expiry", "fill")
BACKEND_EVENTS: Tuple[str, ...] = (
    "writeback",
    "wb_done",
    "dram_fetch",
    "back_invalidate",
)
SYSTEM_EVENTS: Tuple[str, ...] = ("mode_switch",)
#: Emitted only by :mod:`repro.fi` when a fault plan is armed; never
#: published on a fault-free run.
FAULT_EVENTS: Tuple[str, ...] = ("fault", "fault_response")

EVENT_KINDS: Tuple[str, ...] = (
    CORE_EVENTS + BUS_EVENTS + PROTOCOL_EVENTS + BACKEND_EVENTS
    + SYSTEM_EVENTS + FAULT_EVENTS
)

#: Event kind → the layer that emits it (see ``docs/protocol.md``).
LAYER_OF: Dict[str, str] = {
    **{k: "core" for k in CORE_EVENTS},
    **{k: "bus" for k in BUS_EVENTS},
    **{k: "protocol" for k in PROTOCOL_EVENTS},
    **{k: "backend" for k in BACKEND_EVENTS},
    **{k: "system" for k in SYSTEM_EVENTS},
    **{k: "fault" for k in FAULT_EVENTS},
}

class _ListenerList(List[Listener]):
    """The subscribe-all list, refreshing the owning bus's hot flag.

    Exists so the legacy ``system.listeners.append(tracer)`` idiom keeps
    materialising per-hit events exactly like :meth:`EventBus.subscribe`.
    """

    __slots__ = ("_bus",)

    def __init__(self, bus: "EventBus") -> None:
        super().__init__()
        self._bus = bus

    def append(self, listener: Listener) -> None:
        super().append(listener)
        self._bus._refresh_hot()

    def remove(self, listener: Listener) -> None:
        super().remove(listener)
        self._bus._refresh_hot()

    def clear(self) -> None:
        super().clear()
        self._bus._refresh_hot()


class EventBus:
    """One structured event stream shared by every simulator layer.

    The bus also maintains :attr:`counts`, a per-kind tally of every
    event *published* — the cheap per-layer counters the engine exposes
    without any subscriber (``hit`` events are counted only while a
    subscriber keeps them materialised; see the module docstring).
    """

    __slots__ = ("_kernel", "_all", "_by_kind", "counts", "hot")

    def __init__(self, kernel: EventKernel) -> None:
        self._kernel = kernel
        #: Subscribe-all listeners (tracers).  Notified for every kind.
        self._all: List[Listener] = _ListenerList(self)
        #: kind → listeners registered for exactly that kind.
        self._by_kind: Dict[str, List[Listener]] = {}
        #: kind → number of events published so far.
        self.counts: Dict[str, int] = {}
        #: True when ``hit`` events must be materialised (precomputed so
        #: the per-access path pays one attribute read, not a scan).
        self.hot = False

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self, listener: Listener, kinds: Optional[Iterable[str]] = None
    ) -> Listener:
        """Register a listener for ``kinds`` (or every kind when None).

        Returns the listener so ``tracer = bus.subscribe(Tracer())``
        reads naturally.
        """
        if kinds is None:
            self._all.append(listener)
        else:
            for kind in kinds:
                self._by_kind.setdefault(kind, []).append(listener)
        self._refresh_hot()
        return listener

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a listener from every subscription it holds."""
        while listener in self._all:
            self._all.remove(listener)
        for kind in list(self._by_kind):
            listeners = self._by_kind[kind]
            while listener in listeners:
                listeners.remove(listener)
            if not listeners:
                del self._by_kind[kind]
        self._refresh_hot()

    def _refresh_hot(self) -> None:
        self.hot = bool(self._all) or "hit" in self._by_kind

    @property
    def listeners(self) -> List[Listener]:
        """The subscribe-all listeners (the legacy ``System.listeners``)."""
        return self._all

    # -- publishing --------------------------------------------------------

    def emit(self, kind: str, **payload: Any) -> None:
        """Publish one event at the current kernel cycle.

        The listener lists are snapshotted before dispatch: a subscriber
        may unsubscribe itself (or attach further listeners) from inside
        its callback without corrupting this event's iteration.  Newly
        attached listeners see the *next* event, not the current one.
        """
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        by_kind = self._by_kind.get(kind)
        if not by_kind and not self._all:
            return
        cycle = self._kernel.now
        if by_kind:
            for listener in tuple(by_kind):
                listener(cycle, kind, payload)
        if self._all:
            for listener in tuple(self._all):
                listener(cycle, kind, payload)

    # -- introspection -----------------------------------------------------

    def layer_counts(self) -> Dict[str, int]:
        """Event totals aggregated per engine layer."""
        out: Dict[str, int] = {}
        for kind, count in self.counts.items():
            layer = LAYER_OF.get(kind, "other")
            out[layer] = out.get(layer, 0) + count
        return out
