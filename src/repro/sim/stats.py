"""Per-core and system-wide measurement collection.

The quantities the paper's evaluation reports are all derived from these
counters: experimental WCML (total memory latency of a task), per-request
worst-case latency, hit/miss counts, and overall execution time.

Protocol-level counters (grants, fills, timer expiries, write-backs,
DRAM fetches, back-invalidations, mode switches) are fed by
:class:`StatsCollector`, an ordinary subscriber of the system's
:class:`~repro.sim.events.EventBus` — the engine layers never update
them directly.  Only the per-*hit* counters stay inline in the access
fast path (hits are ~99% of accesses; see the event-bus module
docstring for the hot-path contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventBus

#: Version of the serialised stats schema (see ``repro.runner.
#: stats_to_dict``).  Bump whenever the dict grows, loses or renames a
#: field: the sweep-cache digest folds this number in, so on-disk cache
#: entries recorded under an older schema are invalidated instead of
#: being replayed with missing fields.
STATS_SCHEMA_VERSION = 2


@dataclass
class CoreStats:
    """Counters for one core's task."""

    core_id: int
    hits: int = 0
    misses: int = 0
    upgrades: int = 0
    runahead_hits: int = 0
    #: Sum of per-access latencies: hits contribute L_hit, misses their
    #: measured request latency.  This is the *experimental WCML* of the
    #: task (solid bars of Figure 5).
    total_memory_latency: int = 0
    #: Largest observed per-request miss latency (compare to Equation 1).
    max_request_latency: int = 0
    #: Cycle at which the core retired its last access (execution time).
    finish_cycle: Optional[int] = None
    #: Optional per-request latency log (enabled by the test-suite).
    request_latencies: Optional[List[int]] = None

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_count_with_upgrades(self) -> int:
        return self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def record_hit(self, hit_latency: int, runahead: bool = False) -> None:
        """Account one private-cache hit."""
        self.hits += 1
        if runahead:
            self.runahead_hits += 1
        self.total_memory_latency += hit_latency

    def record_miss(self, latency: int, upgrade: bool = False) -> None:
        """Account one completed coherence request."""
        self.misses += 1
        if upgrade:
            self.upgrades += 1
        self.total_memory_latency += latency
        if latency > self.max_request_latency:
            self.max_request_latency = latency
        if self.request_latencies is not None:
            self.request_latencies.append(latency)


@dataclass
class SystemStats:
    """Whole-system counters."""

    cores: List[CoreStats] = field(default_factory=list)
    bus_busy_cycles: int = 0
    bus_grants: Dict[str, int] = field(default_factory=dict)
    timer_expiries: int = 0
    replenishes_skipped: int = 0
    writebacks: int = 0
    dram_fetches: int = 0
    back_invalidations: int = 0
    mode_switches: int = 0
    final_cycle: int = 0
    #: The event bus feeding the protocol-level counters (set when a
    #: :class:`StatsCollector` attaches); source of :meth:`layer_counts`.
    _event_bus: Optional[Any] = field(default=None, repr=False, compare=False)

    def record_grant(self, kind: str, duration: int) -> None:
        """Account one bus grant and its occupancy."""
        self.bus_grants[kind] = self.bus_grants.get(kind, 0) + 1
        self.bus_busy_cycles += duration

    @property
    def execution_time(self) -> int:
        """System execution time: the cycle the last core finished."""
        finishes = [c.finish_cycle for c in self.cores if c.finish_cycle is not None]
        return max(finishes) if finishes else 0

    def bus_utilization(self) -> float:
        """Fraction of simulated cycles the bus was occupied."""
        if self.final_cycle == 0:
            return 0.0
        return self.bus_busy_cycles / self.final_cycle

    def core(self, core_id: int) -> CoreStats:
        """The per-core counters for ``core_id``."""
        return self.cores[core_id]

    def layer_counts(self) -> Dict[str, int]:
        """Per-layer event totals of the run (core/bus/protocol/backend).

        Read from the event bus's per-kind tally once a
        :class:`StatsCollector` is attached; empty before that."""
        if self._event_bus is None:
            return {}
        return self._event_bus.layer_counts()

    def summary(self) -> str:
        """Compact multi-line textual summary of the run."""
        lines = [
            f"cycles={self.final_cycle} bus_util={self.bus_utilization():.3f} "
            f"writebacks={self.writebacks} timer_expiries={self.timer_expiries}"
        ]
        for c in self.cores:
            lines.append(
                f"  c{c.core_id}: hits={c.hits} misses={c.misses} "
                f"(upg={c.upgrades}) WCML_exp={c.total_memory_latency} "
                f"maxlat={c.max_request_latency} finish={c.finish_cycle}"
            )
        return "\n".join(lines)


class StatsCollector:
    """Feeds a :class:`SystemStats` from the simulator event bus.

    One instance subscribes, by kind, to exactly the (rare) protocol
    events the legacy counters need; per-hit statistics remain inline in
    the access fast path and are *not* routed through the bus.
    """

    #: Event kinds this collector consumes.
    KINDS = (
        "grant",
        "fill",
        "timer_expiry",
        "writeback",
        "dram_fetch",
        "back_invalidate",
        "mode_switch",
    )

    def __init__(self, stats: SystemStats) -> None:
        self.stats = stats
        self._handlers = {
            "grant": self._on_grant,
            "fill": self._on_fill,
            "timer_expiry": self._on_timer_expiry,
            "writeback": self._on_writeback,
            "dram_fetch": self._on_dram_fetch,
            "back_invalidate": self._on_back_invalidate,
            "mode_switch": self._on_mode_switch,
        }

    def attach(self, bus: "EventBus") -> "StatsCollector":
        """Subscribe to the bus and bind it to the stats object."""
        bus.subscribe(self, kinds=self.KINDS)
        self.stats._event_bus = bus
        return self

    def __call__(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        self._handlers[kind](payload)

    # -- per-kind handlers -------------------------------------------------

    def _on_grant(self, payload: Dict[str, Any]) -> None:
        self.stats.record_grant(payload["job"], payload["duration"])

    def _on_fill(self, payload: Dict[str, Any]) -> None:
        self.stats.cores[payload["core"]].record_miss(
            latency=payload["latency"], upgrade=payload["upgrade"]
        )

    def _on_timer_expiry(self, payload: Dict[str, Any]) -> None:
        self.stats.timer_expiries += 1

    def _on_writeback(self, payload: Dict[str, Any]) -> None:
        self.stats.writebacks += 1

    def _on_dram_fetch(self, payload: Dict[str, Any]) -> None:
        self.stats.dram_fetches += 1

    def _on_back_invalidate(self, payload: Dict[str, Any]) -> None:
        self.stats.back_invalidations += 1

    def _on_mode_switch(self, payload: Dict[str, Any]) -> None:
        self.stats.mode_switches += 1
