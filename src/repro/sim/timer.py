"""The coherence timer hardware of CoHoRT (Figure 3 and the Mode-Switch LUT).

Two models of the same semantics live here:

* :class:`CountdownCounter` — a literal cycle-by-cycle model of the circuit
  in Figure 3 of the paper (Load / Enable / PendingInv signals, comparator
  against the special value, demultiplexer choosing invalidate vs.
  replenish).  It is used by the unit tests and as executable
  documentation.

* :func:`invalidation_cycle` — the closed-form ("lazy") equivalent used by
  the event-driven simulator: given the fill cycle, the timer threshold and
  the cycle at which a remote request set ``PendingInv``, it returns the
  cycle at which the counter reaches zero with the invalidation pending.
  A property-based test cross-validates the two models.

The :class:`ModeSwitchLUT` is the per-cache-controller look-up table of
Section VI: one 16-bit timer threshold per operating mode.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional

from repro.params import MSI_THETA

#: Width of the timer threshold registers and countdown counters (paper: 16).
TIMER_BITS = 16
#: Largest representable timer threshold.
MAX_THETA = (1 << TIMER_BITS) - 1


class TimerAction(enum.Enum):
    """What the demultiplexer of Figure 3 decides on a counter tick."""

    NONE = "none"            #: counter still running (or disabled).
    INVALIDATE = "invalidate"  #: count hit zero with ``PendingInv`` high.
    REPLENISH = "replenish"    #: count hit zero with no pending request.


class CountdownCounter:
    """Literal model of the per-cache-line countdown counter of Figure 3.

    The counter is driven one cycle at a time through :meth:`tick`.  The
    ``Load`` signal (:meth:`load`) is raised when the core receives the
    cache line or replenishes the counter; it (re)loads the timer threshold
    register.  ``Enable`` is derived from the comparator: it is low exactly
    when the threshold register holds the special value ``-1``, in which
    case the counter never decrements and the line behaves as under MSI.
    """

    __slots__ = ("_theta", "_count", "_loaded")

    def __init__(self, theta: int) -> None:
        validate_theta(theta)
        self._theta = theta
        self._count = 0
        self._loaded = False

    @property
    def theta(self) -> int:
        """The timer threshold register value."""
        return self._theta

    @property
    def count(self) -> int:
        """The current counter output (``Count`` in Figure 3)."""
        return self._count

    @property
    def enabled(self) -> bool:
        """The ``Enable`` signal: high unless the register holds ``-1``."""
        return self._theta != MSI_THETA

    def set_theta(self, theta: int) -> None:
        """Reprogram the threshold register (used on a mode switch)."""
        validate_theta(theta)
        self._theta = theta

    def load(self) -> None:
        """Raise ``Load``: latch the threshold into the counter."""
        if self.enabled:
            self._count = self._theta
        self._loaded = True

    def tick(self, pending_inv: bool) -> TimerAction:
        """Advance one cycle and return the demultiplexer's decision.

        With ``Enable`` low (MSI mode) the counter is frozen and the line
        must be invalidated exactly when ``PendingInv`` is high.
        """
        if not self._loaded:
            raise RuntimeError("counter ticked before the line was filled")
        if not self.enabled:
            return TimerAction.INVALIDATE if pending_inv else TimerAction.NONE
        if self._count > 0:
            self._count -= 1
        if self._count > 0:
            return TimerAction.NONE
        if pending_inv:
            return TimerAction.INVALIDATE
        self.load()
        return TimerAction.REPLENISH


def validate_theta(theta: int) -> None:
    """Check that ``theta`` fits the 16-bit register or is the MSI value."""
    if theta == MSI_THETA:
        return
    if not isinstance(theta, (int,)) or isinstance(theta, bool):
        raise TypeError(f"theta must be an int, got {type(theta).__name__}")
    if theta < 1:
        raise ValueError(f"theta must be >= 1 or MSI_THETA, got {theta}")
    if theta > MAX_THETA:
        raise ValueError(
            f"theta={theta} does not fit the {TIMER_BITS}-bit register"
        )


def invalidation_cycle(fill_cycle: int, theta: int, pending_since: int) -> int:
    """Cycle at which a timed line invalidates, in closed form.

    The counter loads ``theta`` at ``fill_cycle`` and reaches zero at
    ``fill_cycle + k * theta`` for ``k = 1, 2, ...`` (replenishing whenever
    no invalidation is pending).  Given that a remote request raised
    ``PendingInv`` at ``pending_since`` (at or after the fill), the line is
    invalidated at the first zero-crossing at or after ``pending_since``.

    For ``theta == MSI_THETA`` the invalidation is immediate:
    ``max(fill_cycle, pending_since)``.
    """
    if pending_since < fill_cycle:
        pending_since = fill_cycle
    if theta == MSI_THETA:
        return pending_since
    validate_theta(theta)
    elapsed = pending_since - fill_cycle
    periods = -(-elapsed // theta)  # ceil division
    if periods < 1:
        periods = 1
    return fill_cycle + periods * theta


class ModeSwitchLUT:
    """The Mode-Switch look-up table of one cache controller (Section VI).

    One 16-bit timer-threshold field per operating mode, indexed by the
    mode number (modes are ``1..L`` as in the paper).  For five criticality
    levels this is the "negligible 80 bits" the paper quotes
    (:meth:`storage_bits`).
    """

    def __init__(self, entries: Optional[Mapping[int, int]] = None) -> None:
        self._entries: Dict[int, int] = {}
        if entries:
            for mode, theta in entries.items():
                self.program(mode, theta)

    def program(self, mode: int, theta: int) -> None:
        """Write the timer threshold for ``mode``."""
        if mode < 1:
            raise ValueError("modes are numbered from 1")
        validate_theta(theta)
        self._entries[mode] = theta

    def lookup(self, mode: int) -> int:
        """Read the timer threshold for ``mode``."""
        try:
            return self._entries[mode]
        except KeyError:
            raise KeyError(f"mode {mode} is not programmed in the LUT") from None

    def __contains__(self, mode: int) -> bool:
        return mode in self._entries

    @property
    def modes(self) -> Iterable[int]:
        return sorted(self._entries)

    @property
    def num_modes(self) -> int:
        return len(self._entries)

    def storage_bits(self) -> int:
        """Hardware cost of the LUT: 16 bits per programmed mode."""
        return TIMER_BITS * len(self._entries)

    def __repr__(self) -> str:
        entries = ", ".join(f"m{m}={self._entries[m]}" for m in self.modes)
        return f"ModeSwitchLUT({entries})"


def per_line_counter_overhead(line_bytes: int = 64) -> float:
    """Relative storage overhead of one 16-bit counter per cache line.

    The paper quotes "around 3% overhead for a 64B cache line".
    """
    return TIMER_BITS / (line_bytes * 8)
